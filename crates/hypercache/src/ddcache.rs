//! The DoubleDecker hypervisor cache front-end.
//!
//! Wires the indexing module, the two backing stores and the policy module
//! into a [`SecondChanceCache`] backend, with dynamic reconfiguration of
//! every knob and the Global/Strict comparator modes.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};

use ddc_cleancache::{
    CachePolicy, GetOutcome, PageVersion, PoolId, PoolStats, PutOutcome, SecondChanceCache,
    StoreKind, VmId,
};
use ddc_metrics::CounterSnapshot;
use ddc_sim::{BreakerConfig, CircuitBreaker, FaultSchedule, FxHashMap, SimDuration, SimTime};
use ddc_storage::{
    BlockAddr, ChunkStore, FileId, Journal, JournalRecord, RemoteBinding, RemoteCounters,
    RemoteError, RemoteFetchConfig, RemoteId, RemoteLookup, RemoteRegistry, WearCounters,
};

use crate::admission::AdmissionConfig;
use crate::index::{Placement, Pool, SlotId};
use crate::policy::{entitlements, select_victim, select_victim_strict, EntityUsage};
use crate::store::BackingStore;
use crate::{CacheConfig, PartitionMode, EVICTION_BATCH_PAGES};

/// Aggregate usage of one VM across both stores, in pages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmUsage {
    /// Pages held in the memory store by all pools of the VM.
    pub mem_pages: u64,
    /// Pages held in the SSD store by all pools of the VM.
    pub ssd_pages: u64,
}

/// Cache-wide occupancy and counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Memory store pages in use.
    pub mem_used_pages: u64,
    /// Memory store capacity.
    pub mem_capacity_pages: u64,
    /// SSD store pages in use.
    pub ssd_used_pages: u64,
    /// SSD store capacity.
    pub ssd_capacity_pages: u64,
    /// Objects evicted since construction (all pools).
    pub evictions: u64,
    /// Objects trickled down from the memory to the SSD store (hybrid
    /// pools only).
    pub trickle_downs: u64,
    /// Times the SSD tier was quarantined after a store fault.
    pub ssd_quarantines: u64,
    /// Times a quarantined SSD tier recovered (a probe write succeeded).
    pub ssd_recoveries: u64,
    /// Pages invalidated wholesale when the SSD tier was quarantined.
    pub quarantine_invalidated_pages: u64,
    /// Lookups that failed on a store fault (all pools).
    pub failed_gets: u64,
    /// Stores that failed on a store fault (all pools).
    pub failed_puts: u64,
}

/// Where `<SSD, W>` containers' puts go while the SSD tier is
/// quarantined.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackMode {
    /// Re-point SSD placements at the memory store (subject to normal
    /// entitlement-driven eviction there).
    #[default]
    ToMem,
    /// Reject the puts: the pages go uncached and reads fall through to
    /// the virtual disk (straight-to-disk degradation).
    Reject,
}

/// Outcome of a warm restart ([`DoubleDeckerCache::recover`]): how much
/// of the journal replayed, how it terminated, and what the recovered
/// cache looks like. Clean-cache semantics make every loss here safe —
/// the report exists so harnesses can assert recovery *only* loses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid journal records consumed.
    pub records_replayed: u64,
    /// Replay stopped at a torn final record (crash mid-append).
    pub torn_tail: bool,
    /// Replay stopped at a corrupt record (checksum/framing failure).
    pub corrupt: bool,
    /// Entries resident after recovery (post epoch discard).
    pub recovered_entries: u64,
    /// Entries discarded because their generation predates the owning
    /// guest's flush epoch while the replayed journal is missing acked
    /// flushes (the lose-don't-resurrect rule).
    pub discarded_stale: u64,
    /// Replayed puts dropped for lack of store room (can only happen on
    /// images corrupted into an impossible history; losing them is safe).
    pub dropped_no_room: u64,
    /// Fresh per-VM flush epochs minted by the post-recovery checkpoint;
    /// the hypervisor distributes them to the guests' hypercall channels.
    pub new_epochs: Vec<(VmId, u64)>,
}

#[derive(Clone, Debug)]
pub(crate) struct VmEntry {
    pub(crate) mem_weight: u64,
    pub(crate) ssd_weight: u64,
    /// Dense registry of the VM's pool ids, kept sorted. Replaces the
    /// O(total pools) `pools.keys().filter(...)` scans on the eviction
    /// and stats paths, and doubles as the pre-sorted view that
    /// [`DoubleDeckerCache::pool_ids`] used to rebuild (and re-sort) per
    /// call.
    pub(crate) pool_ids: Vec<PoolId>,
}

impl VmEntry {
    fn new(mem_weight: u64, ssd_weight: u64) -> VmEntry {
        VmEntry {
            mem_weight,
            ssd_weight,
            pool_ids: Vec::new(),
        }
    }

    fn weight_for(&self, placement: Placement) -> u64 {
        match placement {
            Placement::Mem => self.mem_weight,
            Placement::Ssd => self.ssd_weight,
        }
    }
}

/// Cached two-level entitlement shares for one store: the pure
/// weight-derived part of the policy snapshot (usage is always read
/// fresh). Rebuilt lazily after any control-plane change or
/// participation transition (a pool's usage in the store crossing zero).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct ShareTable {
    /// `(vm, entitlement, weight)` per participating VM, in `VmId` order.
    pub(crate) vm_rows: Vec<(VmId, u64, u64)>,
    /// Parallel to `vm_rows`: `(pool, entitlement, weight)` per
    /// participating pool of that VM, in `PoolId` order.
    pub(crate) pool_rows: Vec<Vec<(PoolId, u64, u64)>>,
}

impl ShareTable {
    fn vm_row(&self, vm: VmId) -> Option<usize> {
        self.vm_rows.binary_search_by_key(&vm, |r| r.0).ok()
    }
}

/// The DoubleDecker hypervisor cache store.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Debug)]
pub struct DoubleDeckerCache {
    mode: PartitionMode,
    pub(crate) mem: BackingStore,
    pub(crate) ssd: BackingStore,
    pub(crate) vms: BTreeMap<VmId, VmEntry>,
    pub(crate) pools: FxHashMap<(VmId, PoolId), Pool>,
    next_pool: u32,
    pub(crate) next_seq: u64,
    // Global-mode FIFO queues with lazy deletion (seq-stamped). Entries
    // carry arena `SlotId`s, so liveness probes and compaction index
    // straight into the pools' contiguous slabs instead of re-walking
    // per-file trees.
    pub(crate) global_fifo_mem: VecDeque<(VmId, PoolId, SlotId, u64)>,
    pub(crate) global_fifo_ssd: VecDeque<(VmId, PoolId, SlotId, u64)>,
    // Tombstone counters: how many entries of each global FIFO are known
    // dead (their object was removed or re-stamped without the entry
    // being popped). Compaction triggers when tombstones dominate, so
    // the scrub is amortized O(1) per removal instead of rescanning on a
    // size heuristic.
    pub(crate) global_stale_mem: u64,
    pub(crate) global_stale_ssd: u64,
    // Lazily rebuilt entitlement shares per store ([mem, ssd]); see
    // [`ShareTable`]. Interior mutability because readers
    // (`pool_stats`) fill it behind `&self`.
    share_tables: RefCell<[Option<ShareTable>; 2]>,
    evictions: u64,
    trickle_downs: u64,
    /// SSD-tier health as a threshold-1 [`CircuitBreaker`]: a single
    /// store fault quarantines (opens) the tier, `allows` gates the
    /// recovery-probe put, and failed probes double the backoff. Shares
    /// the state machine with the hypercall put breaker and the remote
    /// client.
    ssd_breaker: CircuitBreaker,
    fallback: FallbackMode,
    ssd_quarantines: u64,
    ssd_recoveries: u64,
    quarantine_invalidated: u64,
    failed_gets: u64,
    failed_puts: u64,
    /// How many times live compaction rewrote the journal as a
    /// checkpoint (see [`DoubleDeckerCache::maybe_compact_journal`]).
    journal_compactions: u64,
    /// Write-ahead journal of every state transition; `None` until
    /// [`DoubleDeckerCache::enable_journal`]. Flush records are synced
    /// before the hypercall returns (see `ddc_storage::Journal`).
    journal: Option<Journal>,
    /// Remote chunk stores registered with this host.
    remote_registry: RemoteRegistry,
    /// Per-pool remote bindings: the third tier consulted on the miss
    /// path, each carrying its own fault-tolerance stack.
    pub(crate) remote_bindings: FxHashMap<(VmId, PoolId), RemoteBinding>,
    /// Flush localization waiting for a binding: populated by recovery
    /// replay (bindings are not journaled) and by runtime flushes that
    /// arrive while remotes are registered but the pool is unbound;
    /// consumed by [`DoubleDeckerCache::bind_remote`]. Guarantees a
    /// rebound pool never serves a block the guest invalidated before
    /// the crash.
    remote_stash: FxHashMap<(VmId, PoolId), (Vec<BlockAddr>, Vec<FileId>)>,
    /// SSD admission plane (ghost filter window + TTL), from the config.
    admission: AdmissionConfig,
    /// Wear of pools that no longer exist, folded in when a pool is
    /// destroyed (or its VM removed) so device totals never decrease.
    /// Keyed independently of `vms`: a removed VM's wear persists.
    retired_wear: BTreeMap<VmId, WearCounters>,
}

impl DoubleDeckerCache {
    /// Creates a cache from a configuration.
    pub fn new(config: CacheConfig) -> DoubleDeckerCache {
        DoubleDeckerCache {
            mode: config.mode,
            mem: BackingStore::mem(config.mem_capacity_pages),
            ssd: BackingStore::ssd(config.ssd_capacity_pages),
            vms: BTreeMap::new(),
            pools: FxHashMap::default(),
            next_pool: 1,
            next_seq: 1,
            global_fifo_mem: VecDeque::new(),
            global_fifo_ssd: VecDeque::new(),
            global_stale_mem: 0,
            global_stale_ssd: 0,
            share_tables: RefCell::new([None, None]),
            evictions: 0,
            trickle_downs: 0,
            ssd_breaker: CircuitBreaker::new(BreakerConfig {
                threshold: 1,
                initial_backoff: Self::SSD_PROBE_INITIAL_BACKOFF,
                max_backoff: Self::SSD_PROBE_MAX_BACKOFF,
            }),
            fallback: FallbackMode::default(),
            ssd_quarantines: 0,
            ssd_recoveries: 0,
            quarantine_invalidated: 0,
            failed_gets: 0,
            failed_puts: 0,
            journal_compactions: 0,
            journal: None,
            remote_registry: RemoteRegistry::new(),
            remote_bindings: FxHashMap::default(),
            remote_stash: FxHashMap::default(),
            admission: config.admission,
            retired_wear: BTreeMap::new(),
        }
    }

    /// First recovery-probe delay after the SSD tier is quarantined.
    pub const SSD_PROBE_INITIAL_BACKOFF: SimDuration = SimDuration::from_millis(100);

    /// Backoff ceiling for repeated failed recovery probes.
    pub const SSD_PROBE_MAX_BACKOFF: SimDuration = SimDuration::from_secs(10);

    /// The partitioning mode.
    pub fn mode(&self) -> PartitionMode {
        self.mode
    }

    /// The construction-time configuration the cache currently reflects
    /// (capacities follow runtime resizes).
    pub fn current_config(&self) -> CacheConfig {
        CacheConfig {
            mem_capacity_pages: self.mem.capacity_pages(),
            ssd_capacity_pages: self.ssd.capacity_pages(),
            mode: self.mode,
            admission: self.admission,
        }
    }

    // ------------------------------------------------------------------
    // Write-ahead journal (crash-and-recovery plane).
    // ------------------------------------------------------------------

    /// Turns on journaling: from here on every state transition appends a
    /// [`JournalRecord`], and `flush`/`flush_file` return their synced
    /// generation (the flush epoch). Enabling on a non-empty cache is
    /// allowed but only transitions after this call are recorded, so
    /// callers normally enable right after construction.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Journal::new());
        }
    }

    /// Whether journaling is on.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// The raw journal image (including unsynced bytes), if journaling is
    /// on. Crash harnesses snapshot this and hand a (possibly truncated
    /// or corrupted) copy to [`DoubleDeckerCache::recover`].
    pub fn journal_bytes(&self) -> Option<&[u8]> {
        self.journal.as_ref().map(|j| j.bytes())
    }

    /// Bytes of the journal guaranteed durable (at or below the last
    /// sync), if journaling is on. A clean or torn crash never loses
    /// bytes below this watermark.
    pub fn journal_durable_len(&self) -> Option<usize> {
        self.journal.as_ref().map(|j| j.durable_len())
    }

    /// Appends a record lazily (not yet durable). Returns the record's
    /// generation, or 0 when journaling is off.
    fn log(&mut self, rec: JournalRecord) -> u64 {
        match self.journal.as_mut() {
            Some(j) => j.append(&rec),
            None => 0,
        }
    }

    /// Appends a record and syncs the journal (flush hypercalls are
    /// acknowledged only once durable). Returns the generation, or 0
    /// when journaling is off.
    fn log_synced(&mut self, rec: JournalRecord) -> u64 {
        match self.journal.as_mut() {
            Some(j) => {
                let gen = j.append(&rec);
                j.sync();
                gen
            }
            None => 0,
        }
    }

    /// Records appended to the journal since it was (re)started, if
    /// journaling is on. Drops back after a live compaction.
    pub fn journal_records(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.records())
    }

    /// How many times live compaction rewrote the journal.
    pub fn journal_compactions(&self) -> u64 {
        self.journal_compactions
    }

    /// Journal records per live entry before live compaction kicks in.
    const JOURNAL_COMPACT_FACTOR: u64 = 8;

    /// Journals shorter than this are never compacted — replaying them
    /// is already cheap, and the floor keeps tiny caches from
    /// re-checkpointing on every handful of ops.
    const JOURNAL_COMPACT_MIN_RECORDS: u64 = 1024;

    /// Live journal compaction: when the journal has accumulated far
    /// more records than there are live entries (`records > max(1024,
    /// 8 × live)`), rewrite it as a checkpoint of the current state so
    /// replay time after a crash stays proportional to cache size, not
    /// history length.
    ///
    /// Safety: the checkpoint continues generations from the old
    /// journal's `next_gen`, so its `Epoch` records carry generations
    /// strictly above every flush epoch acknowledged so far. Recovery's
    /// `replayed >= guest_epoch` check therefore still holds for every
    /// guest without redistributing epochs — distributing the fresh
    /// epochs is an optimization, never a correctness requirement.
    fn maybe_compact_journal(&mut self) {
        let Some(j) = self.journal.as_ref() else {
            return;
        };
        let live = self.mem.used_pages() + self.ssd.used_pages();
        let threshold =
            (live * Self::JOURNAL_COMPACT_FACTOR).max(Self::JOURNAL_COMPACT_MIN_RECORDS);
        if j.records() <= threshold {
            return;
        }
        let start_gen = j.next_gen();
        self.write_checkpoint(start_gen);
        self.journal_compactions += 1;
    }

    /// `StoreKind` wire discriminant for journal records.
    fn store_kind_code(kind: StoreKind) -> u8 {
        match kind {
            StoreKind::Mem => 0,
            StoreKind::Ssd => 1,
            StoreKind::Hybrid => 2,
        }
    }

    fn store_kind_from_code(code: u8) -> Option<StoreKind> {
        match code {
            0 => Some(StoreKind::Mem),
            1 => Some(StoreKind::Ssd),
            2 => Some(StoreKind::Hybrid),
            _ => None,
        }
    }

    /// `PartitionMode` wire discriminant for journal records.
    fn mode_code(mode: PartitionMode) -> u8 {
        match mode {
            PartitionMode::DoubleDecker => 0,
            PartitionMode::Global => 1,
            PartitionMode::Strict => 2,
        }
    }

    fn mode_from_code(code: u8) -> Option<PartitionMode> {
        match code {
            0 => Some(PartitionMode::DoubleDecker),
            1 => Some(PartitionMode::Global),
            2 => Some(PartitionMode::Strict),
            _ => None,
        }
    }

    /// `Placement` wire discriminant for journal records.
    fn placement_code(placement: Placement) -> u8 {
        match placement {
            Placement::Mem => 0,
            Placement::Ssd => 1,
        }
    }

    fn placement_from_code(code: u8) -> Option<Placement> {
        match code {
            0 => Some(Placement::Mem),
            1 => Some(Placement::Ssd),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Host-administrator control plane (the hypervisor-level policy
    // controller of §3).
    // ------------------------------------------------------------------

    /// Registers a VM with a cache weight applied to both stores (the
    /// paper's base design). Re-registering updates the weights.
    pub fn add_vm(&mut self, vm: VmId, weight: u64) {
        self.add_vm_with_store_weights(vm, weight, weight);
    }

    /// Registers a VM with *different* weights for the memory and SSD
    /// stores — the generalized setup the paper's footnote 1 describes as
    /// "a straightforward extension".
    pub fn add_vm_with_store_weights(&mut self, vm: VmId, mem_weight: u64, ssd_weight: u64) {
        // Re-registration must keep the pool registry: only weights change.
        self.vms
            .entry(vm)
            .and_modify(|e| {
                e.mem_weight = mem_weight;
                e.ssd_weight = ssd_weight;
            })
            .or_insert_with(|| VmEntry::new(mem_weight, ssd_weight));
        self.invalidate_all_entitlements();
        self.log(JournalRecord::AddVm {
            vm: vm.0,
            mem_weight,
            ssd_weight,
        });
    }

    /// Updates a VM's weight in both stores (dynamic provisioning,
    /// Fig. 13). Unknown VMs are ignored: the control plane takes
    /// caller-supplied ids and must not bring the host down over a stale
    /// one (the VM may have been shut down concurrently).
    pub fn set_vm_weight(&mut self, vm: VmId, weight: u64) {
        self.set_vm_store_weights(vm, weight, weight);
    }

    /// Updates a VM's per-store weights independently (footnote 1
    /// extension). Unknown VMs are ignored, as in
    /// [`set_vm_weight`](DoubleDeckerCache::set_vm_weight).
    pub fn set_vm_store_weights(&mut self, vm: VmId, mem_weight: u64, ssd_weight: u64) {
        if let Some(entry) = self.vms.get_mut(&vm) {
            entry.mem_weight = mem_weight;
            entry.ssd_weight = ssd_weight;
            self.invalidate_all_entitlements();
            self.log(JournalRecord::SetVmWeights {
                vm: vm.0,
                mem_weight,
                ssd_weight,
            });
        }
    }

    /// Removes a VM, dropping every object of all its pools.
    pub fn remove_vm(&mut self, vm: VmId) {
        let Some(entry) = self.vms.remove(&vm) else {
            return;
        };
        self.remote_bindings.retain(|&(v, _), _| v != vm);
        self.remote_stash.retain(|&(v, _), _| v != vm);
        for pid in entry.pool_ids {
            if let Some(mut pool) = self.pools.remove(&(vm, pid)) {
                let (mem, ssd) = pool.drain();
                let worn = pool.wear.retire();
                self.retired_wear.entry(vm).or_default().absorb(&worn);
                self.mem.free(mem);
                self.ssd.free(ssd);
                // Any global-FIFO entries of the drained objects are now
                // tombstones.
                self.global_stale_mem += mem;
                self.global_stale_ssd += ssd;
            }
        }
        self.invalidate_all_entitlements();
        self.log(JournalRecord::RemoveVm { vm: vm.0 });
    }

    /// Registered VM ids.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().copied().collect()
    }

    /// Resizes the memory store, evicting the excess if shrinking
    /// (capacity growth — paper Fig. 13 — takes effect immediately).
    pub fn set_mem_capacity(&mut self, now: SimTime, pages: u64) {
        self.mem.set_capacity_pages(pages);
        self.invalidate_entitlements(Placement::Mem);
        // Log the resize before the shrink so replay sees the evictions
        // it caused in causal order.
        self.log(JournalRecord::SetMemCapacity { pages });
        self.shrink_to_capacity(now, Placement::Mem);
    }

    /// Resizes the SSD store, evicting the excess if shrinking.
    pub fn set_ssd_capacity(&mut self, now: SimTime, pages: u64) {
        self.ssd.set_capacity_pages(pages);
        self.invalidate_entitlements(Placement::Ssd);
        self.log(JournalRecord::SetSsdCapacity { pages });
        self.shrink_to_capacity(now, Placement::Ssd);
    }

    /// Switches partitioning mode at runtime (used by ablation benches).
    pub fn set_mode(&mut self, mode: PartitionMode) {
        self.mode = mode;
        self.log(JournalRecord::SetMode {
            mode: Self::mode_code(mode),
        });
    }

    // ------------------------------------------------------------------
    // Fault plane: SSD tier health.
    // ------------------------------------------------------------------

    /// Attaches (or clears) a fault schedule on the SSD store's device.
    pub fn set_ssd_fault_schedule(&mut self, faults: Option<FaultSchedule>) {
        self.ssd.set_fault_schedule(faults);
    }

    /// Selects where `<SSD, W>` puts go while the tier is quarantined.
    pub fn set_ssd_fallback_mode(&mut self, fallback: FallbackMode) {
        self.fallback = fallback;
    }

    /// The configured quarantine fallback mode.
    pub fn ssd_fallback_mode(&self) -> FallbackMode {
        self.fallback
    }

    // ------------------------------------------------------------------
    // Remote chunk-store tier.
    // ------------------------------------------------------------------

    /// Registers a remote chunk store with this host. Duplicate ids are
    /// rejected with a typed error rather than a panic.
    ///
    /// Registrations and bindings are *not* journaled — a recovered host
    /// must re-register and re-bind its remotes before serving traffic
    /// (flush localization replayed from the journal is preserved and
    /// handed to the new bindings).
    pub fn register_remote(&mut self, store: ChunkStore) -> Result<RemoteId, RemoteError> {
        let id = store.id();
        self.remote_registry.register(store)?;
        Ok(id)
    }

    /// Binds `pool` of `vm` to a registered remote: misses in the pool
    /// fall through to the remote's fault-tolerance stack. Unknown ids
    /// and double bindings return typed errors.
    pub fn bind_remote(
        &mut self,
        vm: VmId,
        pool: PoolId,
        remote: RemoteId,
        fetch: RemoteFetchConfig,
    ) -> Result<(), RemoteError> {
        let store = self.remote_registry.get(remote)?;
        if !self.vms.contains_key(&vm) {
            return Err(RemoteError::UnknownVm(vm.0));
        }
        if !self.pools.contains_key(&(vm, pool)) {
            return Err(RemoteError::UnknownPool {
                vm: vm.0,
                pool: pool.0,
            });
        }
        if self.remote_bindings.contains_key(&(vm, pool)) {
            return Err(RemoteError::AlreadyBound {
                vm: vm.0,
                pool: pool.0,
            });
        }
        let mut binding = RemoteBinding::new(store, fetch);
        if let Some((addrs, files)) = self.remote_stash.remove(&(vm, pool)) {
            // Flushes the guest issued before the binding existed (or
            // before a crash): the remote must never serve those blocks.
            binding.preload_localized(addrs, files);
        }
        self.remote_bindings.insert((vm, pool), binding);
        Ok(())
    }

    /// The remote binding of `pool`, if any (for audits and reports).
    pub fn remote_binding(&self, vm: VmId, pool: PoolId) -> Option<&RemoteBinding> {
        self.remote_bindings.get(&(vm, pool))
    }

    /// Aggregate remote-tier counters across all bindings.
    pub fn remote_totals(&self) -> RemoteCounters {
        let mut totals = RemoteCounters::default();
        for binding in self.remote_bindings.values() {
            totals.absorb(&binding.counters());
        }
        totals
    }

    /// The miss path's remote consultation: serves the image's initial
    /// contents through the binding's fault-tolerance stack, failing
    /// open to a plain miss. Remote serves do not touch the pool's
    /// hit/miss counters — tier stats stay pure; the remote's own
    /// counters carry the tier's story.
    fn remote_get(&mut self, now: SimTime, vm: VmId, pool: PoolId, addr: BlockAddr) -> GetOutcome {
        let Some(binding) = self.remote_bindings.get_mut(&(vm, pool)) else {
            return GetOutcome::Miss;
        };
        match binding.lookup(now, addr) {
            RemoteLookup::Served { finish } => GetOutcome::Hit {
                finish,
                version: PageVersion::INITIAL,
            },
            RemoteLookup::Miss => GetOutcome::Miss,
        }
    }

    /// Records a flush against the remote tier: the block is guest-owned
    /// from now on. Bound pools localize directly; unbound pools stash
    /// the flush for a future binding while remotes are registered.
    fn remote_note_flush(&mut self, vm: VmId, pool: PoolId, addr: BlockAddr) {
        if let Some(binding) = self.remote_bindings.get_mut(&(vm, pool)) {
            binding.localize(addr);
        } else if !self.remote_registry.is_empty() {
            self.remote_stash
                .entry((vm, pool))
                .or_default()
                .0
                .push(addr);
        }
    }

    /// File-granularity variant of [`Self::remote_note_flush`].
    fn remote_note_flush_file(&mut self, vm: VmId, pool: PoolId, file: FileId) {
        if let Some(binding) = self.remote_bindings.get_mut(&(vm, pool)) {
            binding.localize_file(file);
        } else if !self.remote_registry.is_empty() {
            self.remote_stash
                .entry((vm, pool))
                .or_default()
                .1
                .push(file);
        }
    }

    /// Whether the SSD tier is currently quarantined.
    pub fn ssd_quarantined(&self) -> bool {
        self.ssd_breaker.is_open()
    }

    /// Quarantines the SSD tier after a store fault at `now`: every
    /// SSD-resident page of every pool is invalidated (a failed store
    /// must never serve a potentially-corrupt hit), and placements are
    /// redirected until a recovery probe succeeds. A fault while already
    /// quarantined (a failed recovery probe) only doubles the breaker's
    /// backoff — the tier is already empty.
    fn quarantine_ssd(&mut self, now: SimTime) {
        if !self.ssd_breaker.note_failure(now) {
            return;
        }
        let mut invalidated = 0;
        for pool in self.pools.values_mut() {
            invalidated += pool.drain_placement(Placement::Ssd);
        }
        self.ssd.free(self.ssd.used_pages());
        self.global_fifo_ssd.clear();
        self.global_stale_ssd = 0;
        self.invalidate_entitlements(Placement::Ssd);
        self.quarantine_invalidated += invalidated;
        self.ssd_quarantines += 1;
        self.log(JournalRecord::SsdDrain);
    }

    /// Marks the SSD tier healthy again after a successful probe write.
    fn recover_ssd(&mut self) {
        if self.ssd_breaker.note_success() {
            self.ssd_recoveries += 1;
        }
    }

    /// Enables zcache-style compression in the memory store: objects
    /// occupy `object_millipages`/1000 of a page and each store/load pays
    /// `codec_cost` (paper §1: hypervisors "can improve memory efficiency
    /// by ... in-band compression").
    ///
    /// # Panics
    ///
    /// Panics if `object_millipages` is zero or above 1000.
    pub fn set_mem_compression(
        &mut self,
        object_millipages: u64,
        codec_cost: ddc_sim::SimDuration,
    ) {
        self.mem.set_compression(object_millipages, codec_cost);
        // Compression changes the memory store's capacity in objects.
        self.invalidate_entitlements(Placement::Mem);
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// Aggregate pages used by all pools of `vm`.
    pub fn vm_usage(&self, vm: VmId) -> VmUsage {
        let mut usage = VmUsage::default();
        if let Some(entry) = self.vms.get(&vm) {
            for &pid in &entry.pool_ids {
                let pool = &self.pools[&(vm, pid)];
                usage.mem_pages += pool.used(Placement::Mem);
                usage.ssd_pages += pool.used(Placement::Ssd);
            }
        }
        usage
    }

    /// Cache-wide totals.
    pub fn totals(&self) -> CacheTotals {
        CacheTotals {
            mem_used_pages: self.mem.used_pages(),
            mem_capacity_pages: self.mem.capacity_pages(),
            ssd_used_pages: self.ssd.used_pages(),
            ssd_capacity_pages: self.ssd.capacity_pages(),
            evictions: self.evictions,
            trickle_downs: self.trickle_downs,
            ssd_quarantines: self.ssd_quarantines,
            ssd_recoveries: self.ssd_recoveries,
            quarantine_invalidated_pages: self.quarantine_invalidated,
            failed_gets: self.failed_gets,
            failed_puts: self.failed_puts,
        }
    }

    /// The pool ids currently registered for `vm`, in `PoolId` order.
    pub fn pool_ids(&self, vm: VmId) -> Vec<PoolId> {
        self.vms
            .get(&vm)
            .map(|e| e.pool_ids.clone())
            .unwrap_or_default()
    }

    /// The entitlement of one pool in its primary store, in pages
    /// (recomputed on demand; exposed for GET_STATS and tests).
    pub fn pool_entitlement(&self, vm: VmId, pool: PoolId) -> u64 {
        let Some(p) = self.pools.get(&(vm, pool)) else {
            return 0;
        };
        let placement = match p.policy().store {
            StoreKind::Mem | StoreKind::Hybrid => Placement::Mem,
            StoreKind::Ssd => Placement::Ssd,
        };
        self.pool_entitlement_in(vm, pool, placement)
    }

    fn store(&mut self, placement: Placement) -> &mut BackingStore {
        match placement {
            Placement::Mem => &mut self.mem,
            Placement::Ssd => &mut self.ssd,
        }
    }

    fn store_ref(&self, placement: Placement) -> &BackingStore {
        match placement {
            Placement::Mem => &self.mem,
            Placement::Ssd => &self.ssd,
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    // ------------------------------------------------------------------
    // Entitlement computation (policy module, §4.2: "On any configuration
    // change, the policy module recalculates cache store entitlements at
    // two levels — per-VM level and container (pool) level").
    //
    // Entitlements are pure functions of weights, capacities and the
    // participant sets, none of which change on the data path's steady
    // state — so the share split is cached per store and dropped only on
    // control-plane changes and participation transitions (a pool's usage
    // in a store crossing zero). Usage itself is always read fresh.
    // ------------------------------------------------------------------

    /// Whether the pool's policy assigns it to the store.
    fn pool_by_policy(pool: &Pool, placement: Placement) -> bool {
        match placement {
            Placement::Mem => pool.policy().store.uses_mem(),
            Placement::Ssd => pool.policy().store.uses_ssd(),
        }
    }

    /// Whether the pool participates in the store: it is assigned there by
    /// policy, or still holds legacy objects there.
    fn pool_participates(pool: &Pool, placement: Placement) -> bool {
        Self::pool_by_policy(pool, placement) || pool.used(placement) > 0
    }

    /// The pool's weight within the store (zero if only legacy objects).
    fn pool_weight(pool: &Pool, placement: Placement) -> u64 {
        if Self::pool_by_policy(pool, placement) {
            pool.policy().weight as u64
        } else {
            0
        }
    }

    fn table_idx(placement: Placement) -> usize {
        match placement {
            Placement::Mem => 0,
            Placement::Ssd => 1,
        }
    }

    /// Drops the cached share table for one store.
    fn invalidate_entitlements(&mut self, placement: Placement) {
        self.share_tables.get_mut()[Self::table_idx(placement)] = None;
    }

    /// Drops both cached share tables (control-plane changes that touch
    /// VM-level weights or registration affect both stores).
    fn invalidate_all_entitlements(&mut self) {
        *self.share_tables.get_mut() = [None, None];
    }

    /// Records an object removal from `pool` in `placement`: if the pool
    /// just left the store (usage hit zero and policy does not keep it
    /// there) the participant set changed, so the share table is stale.
    /// A missing pool (destroyed mid-flight) invalidates conservatively.
    fn note_removal(&mut self, vm: VmId, pool: PoolId, placement: Placement) {
        let exits = match self.pools.get(&(vm, pool)) {
            Some(p) => p.used(placement) == 0 && !Self::pool_by_policy(p, placement),
            None => true,
        };
        if exits {
            self.invalidate_entitlements(placement);
        }
    }

    /// Records an object insertion into `pool` in `placement`: a pool not
    /// assigned there by policy joins the participant set when its usage
    /// rises from zero.
    fn note_insertion(&mut self, vm: VmId, pool: PoolId, placement: Placement) {
        let joined = self
            .pools
            .get(&(vm, pool))
            .is_some_and(|p| p.used(placement) == 1 && !Self::pool_by_policy(p, placement));
        if joined {
            self.invalidate_entitlements(placement);
        }
    }

    /// Counts `count` global-FIFO entries of `placement` as tombstones
    /// (their objects were removed without consuming the entries).
    fn note_stale(&mut self, placement: Placement, count: u64) {
        match placement {
            Placement::Mem => self.global_stale_mem += count,
            Placement::Ssd => self.global_stale_ssd += count,
        }
    }

    /// Builds the two-level share table for one store from scratch.
    pub(crate) fn build_share_table(&self, placement: Placement) -> ShareTable {
        let mut vm_ids = Vec::new();
        let mut vm_weights = Vec::new();
        let mut pool_meta: Vec<Vec<(PoolId, u64)>> = Vec::new();
        for (&vm, entry) in &self.vms {
            let mut pools_here = Vec::new();
            for &pid in &entry.pool_ids {
                let pool = &self.pools[&(vm, pid)];
                if Self::pool_participates(pool, placement) {
                    pools_here.push((pid, Self::pool_weight(pool, placement)));
                }
            }
            if !pools_here.is_empty() {
                vm_ids.push(vm);
                vm_weights.push(entry.weight_for(placement));
                pool_meta.push(pools_here);
            }
        }
        let capacity = self.store_ref(placement).capacity_objects();
        let vm_shares = entitlements(capacity, &vm_weights);
        let mut vm_rows = Vec::with_capacity(vm_ids.len());
        let mut pool_rows = Vec::with_capacity(vm_ids.len());
        for (i, &vm) in vm_ids.iter().enumerate() {
            vm_rows.push((vm, vm_shares[i], vm_weights[i]));
            let weights: Vec<u64> = pool_meta[i].iter().map(|&(_, w)| w).collect();
            let shares = entitlements(vm_shares[i], &weights);
            pool_rows.push(
                pool_meta[i]
                    .iter()
                    .zip(shares)
                    .map(|(&(p, w), s)| (p, s, w))
                    .collect(),
            );
        }
        ShareTable { vm_rows, pool_rows }
    }

    /// Runs `f` against the (lazily rebuilt) share table for one store.
    ///
    /// Debug builds re-derive the table from scratch and assert it
    /// matches the cache, so any missed invalidation site fails loudly in
    /// `cargo test` instead of silently skewing entitlements.
    fn with_share_table<R>(&self, placement: Placement, f: impl FnOnce(&ShareTable) -> R) -> R {
        let idx = Self::table_idx(placement);
        let mut tables = self.share_tables.borrow_mut();
        if tables[idx].is_none() {
            tables[idx] = Some(self.build_share_table(placement));
        }
        #[cfg(debug_assertions)]
        {
            let fresh = self.build_share_table(placement);
            assert_eq!(
                tables[idx].as_ref().unwrap(),
                &fresh,
                "stale cached share table for {placement:?}: an invalidation site was missed"
            );
        }
        f(tables[idx].as_ref().expect("table filled above"))
    }

    /// Per-VM usage snapshot for one store: `(vm ids, entities)`.
    /// Entitlements come from the cached share table; usage is fresh.
    fn vm_entities(&self, placement: Placement) -> (Vec<VmId>, Vec<EntityUsage>) {
        self.with_share_table(placement, |table| {
            let mut ids = Vec::with_capacity(table.vm_rows.len());
            let mut entities = Vec::with_capacity(table.vm_rows.len());
            for &(vm, share, weight) in &table.vm_rows {
                let entry = &self.vms[&vm];
                let used: u64 = entry
                    .pool_ids
                    .iter()
                    .map(|&p| self.pools[&(vm, p)].used(placement))
                    .sum();
                ids.push(vm);
                entities.push(EntityUsage::new(share, used, weight));
            }
            (ids, entities)
        })
    }

    /// Per-pool usage snapshot within one VM for one store.
    fn pool_entities(&self, vm: VmId, placement: Placement) -> (Vec<PoolId>, Vec<EntityUsage>) {
        self.with_share_table(placement, |table| {
            let Some(vi) = table.vm_row(vm) else {
                return (Vec::new(), Vec::new());
            };
            let rows = &table.pool_rows[vi];
            let mut ids = Vec::with_capacity(rows.len());
            let mut entities = Vec::with_capacity(rows.len());
            for &(pid, share, weight) in rows {
                ids.push(pid);
                entities.push(EntityUsage::new(
                    share,
                    self.pools[&(vm, pid)].used(placement),
                    weight,
                ));
            }
            (ids, entities)
        })
    }

    /// The current entitlement of one pool in one store (two binary
    /// searches into the cached table).
    fn pool_entitlement_in(&self, vm: VmId, pool: PoolId, placement: Placement) -> u64 {
        self.with_share_table(placement, |table| {
            let Some(vi) = table.vm_row(vm) else {
                return 0;
            };
            let rows = &table.pool_rows[vi];
            rows.binary_search_by_key(&pool, |r| r.0)
                .map(|pi| rows[pi].1)
                .unwrap_or(0)
        })
    }

    // ------------------------------------------------------------------
    // Eviction (policy module + Algorithm 1).
    // ------------------------------------------------------------------

    /// Frees up to one eviction batch in the given store. Returns pages
    /// freed.
    fn evict_batch(&mut self, now: SimTime, placement: Placement) -> u64 {
        match self.mode {
            PartitionMode::Global => self.evict_batch_global(placement),
            PartitionMode::DoubleDecker | PartitionMode::Strict => {
                self.evict_batch_weighted(now, placement)
            }
        }
    }

    /// Global-mode eviction: oldest objects store-wide, container- and
    /// VM-agnostic (the paper's "FIFO-based global eviction policy").
    fn evict_batch_global(&mut self, placement: Placement) -> u64 {
        let mut freed = 0;
        while freed < EVICTION_BATCH_PAGES {
            let entry = match placement {
                Placement::Mem => self.global_fifo_mem.pop_front(),
                Placement::Ssd => self.global_fifo_ssd.pop_front(),
            };
            let Some((vm, pool_id, sid, seq)) = entry else {
                break;
            };
            let live = self
                .pools
                .get(&(vm, pool_id))
                .and_then(|p| p.fifo_probe(sid, seq, placement))
                .is_some();
            if !live {
                // A tombstone got consumed the cheap way (popped off the
                // front): it no longer needs a compaction pass.
                match placement {
                    Placement::Mem => {
                        self.global_stale_mem = self.global_stale_mem.saturating_sub(1)
                    }
                    Placement::Ssd => {
                        self.global_stale_ssd = self.global_stale_ssd.saturating_sub(1)
                    }
                }
                continue;
            }
            let pool = self
                .pools
                .get_mut(&(vm, pool_id))
                .expect("liveness checked above");
            let (addr, _) = pool.remove_by_id(sid).expect("probed live above");
            pool.counters.evictions += 1;
            self.store(placement).free(1);
            self.evictions += 1;
            self.note_removal(vm, pool_id, placement);
            self.log(JournalRecord::Evict {
                vm: vm.0,
                pool: pool_id.0,
                addr,
            });
            freed += 1;
        }
        freed
    }

    /// Two-level weighted eviction: Algorithm 1 picks the victim VM, then
    /// the victim container within it; one batch is evicted FIFO from that
    /// container's pool. Hybrid pools trickle evicted memory objects down
    /// to their SSD share.
    fn evict_batch_weighted(&mut self, now: SimTime, placement: Placement) -> u64 {
        let strict = self.mode == PartitionMode::Strict;
        let select = if strict {
            select_victim_strict
        } else {
            select_victim
        };

        let (vm_ids, vm_entities) = self.vm_entities(placement);
        let Some(vm_idx) = select(&vm_entities, EVICTION_BATCH_PAGES) else {
            // Nobody over their effective limit: fall back to the largest
            // user so that a full store can always make progress.
            return self.evict_from_largest(placement);
        };
        let victim_vm = vm_ids[vm_idx];
        let (pool_ids, pool_entities) = self.pool_entities(victim_vm, placement);
        let pool_idx = select(&pool_entities, EVICTION_BATCH_PAGES).or_else(|| {
            // Within the victim VM fall back to its largest pool.
            pool_entities
                .iter()
                .enumerate()
                .filter(|(_, e)| e.used > 0)
                .max_by_key(|(_, e)| e.used)
                .map(|(i, _)| i)
        });
        let Some(pool_idx) = pool_idx else {
            return 0;
        };
        let victim_pool = pool_ids[pool_idx];
        self.evict_pages_from_pool(now, victim_vm, victim_pool, placement, EVICTION_BATCH_PAGES)
    }

    /// Fallback when no entity is nominally over its entitlement (rounding
    /// slack): evict from the VM/pool with the largest usage.
    fn evict_from_largest(&mut self, placement: Placement) -> u64 {
        // Walk the registry in (VmId, PoolId) order so ties break
        // deterministically (the old HashMap scan picked an arbitrary
        // co-largest pool, which varied between runs).
        let mut victim: Option<(VmId, PoolId)> = None;
        let mut best = 0;
        for (&vm, entry) in &self.vms {
            for &pid in &entry.pool_ids {
                let used = self.pools[&(vm, pid)].used(placement);
                if used > best {
                    best = used;
                    victim = Some((vm, pid));
                }
            }
        }
        let Some((vm, pool)) = victim else {
            return 0;
        };
        self.evict_pages_from_pool(SimTime::ZERO, vm, pool, placement, EVICTION_BATCH_PAGES)
    }

    /// Evicts up to `max_pages` oldest objects of one pool from one store.
    fn evict_pages_from_pool(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool_id: PoolId,
        placement: Placement,
        max_pages: u64,
    ) -> u64 {
        let mut freed = 0;
        let mut trickle: Vec<(BlockAddr, PageVersion)> = Vec::new();
        let mut evicted: Vec<BlockAddr> = Vec::new();
        {
            let Some(pool) = self.pools.get_mut(&(vm, pool_id)) else {
                return 0;
            };
            let hybrid = pool.policy().store == StoreKind::Hybrid;
            while freed < max_pages {
                let Some((addr, slot)) = pool.pop_oldest(placement) else {
                    break;
                };
                pool.counters.evictions += 1;
                freed += 1;
                evicted.push(addr);
                if hybrid && placement == Placement::Mem {
                    trickle.push((addr, slot.version));
                }
            }
        }
        self.store(placement).free(freed);
        self.evictions += freed;
        // The evicted objects' global-FIFO entries (if any) are stale now.
        self.note_stale(placement, freed);
        self.note_removal(vm, pool_id, placement);
        for addr in evicted {
            self.log(JournalRecord::Evict {
                vm: vm.0,
                pool: pool_id.0,
                addr,
            });
        }

        // Trickle-down: hybrid pools keep evicted memory objects alive in
        // their SSD share while room remains (paper §3.3's hybrid mode).
        // A quarantined tier takes no trickle: the objects are clean, so
        // dropping them is always safe.
        for (addr, version) in trickle {
            if self.ssd_quarantined() {
                break;
            }
            // Ghost admission on the trickle path: an evicted memory
            // object must earn its SSD write like any other spill. A
            // rejected object is simply dropped — its Evict is already
            // journaled, so replay needs nothing extra.
            if self.admission.filters_spills() {
                let window = self.admission.ghost_window;
                if let Some(pool) = self.pools.get_mut(&(vm, pool_id)) {
                    pool.wear.spill_attempts += 1;
                    if pool.ghost.admit(addr, window) {
                        pool.wear.spill_admits += 1;
                    } else {
                        pool.wear.spill_rejects += 1;
                        continue;
                    }
                }
            }
            if !self.ssd.has_room() || !self.ssd.try_alloc() {
                break;
            }
            let seq = self.alloc_seq();
            if self.ssd.try_write(now, addr).is_err() {
                self.ssd.free(1);
                self.failed_puts += 1;
                self.quarantine_ssd(now);
                break;
            }
            if let Some(pool) = self.pools.get_mut(&(vm, pool_id)) {
                // Trickled objects get no global-FIFO entry (unchanged
                // behavior): the per-pool SSD FIFO alone ages them out.
                let (_, displaced) = pool.insert(addr, Placement::Ssd, version, seq);
                if let Some(displaced) = displaced {
                    self.store(displaced).free(1);
                    self.note_stale(displaced, 1);
                }
                self.trickle_downs += 1;
                self.note_insertion(vm, pool_id, Placement::Ssd);
                self.log(JournalRecord::Put {
                    vm: vm.0,
                    pool: pool_id.0,
                    addr,
                    version: version.0,
                    placement: Self::placement_code(Placement::Ssd),
                });
            }
        }
        freed
    }

    /// After a capacity shrink, evicts batches until usage fits again.
    fn shrink_to_capacity(&mut self, now: SimTime, placement: Placement) {
        let mut guard = 0u32;
        while self.store_ref(placement).used_pages() > self.store_ref(placement).capacity_objects()
        {
            let freed = self.evict_batch(now, placement);
            if freed == 0 {
                break;
            }
            guard += 1;
            if guard > 10_000_000 {
                break;
            }
        }
    }

    /// Decides the physical placement for a put into `pool`.
    fn placement_for_put(&self, vm: VmId, pool_id: PoolId) -> Option<Placement> {
        let pool = self.pools.get(&(vm, pool_id))?;
        let policy = pool.policy();
        if !policy.is_enabled() {
            return None;
        }
        let placement = match policy.store {
            StoreKind::Mem => Placement::Mem,
            StoreKind::Ssd => Placement::Ssd,
            StoreKind::Hybrid => {
                // Memory share first; spill to SSD when the pool's memory
                // entitlement is exhausted.
                let mem_entitlement = self.pool_entitlement_in(vm, pool_id, Placement::Mem);
                if pool.used(Placement::Mem) < mem_entitlement {
                    Placement::Mem
                } else {
                    Placement::Ssd
                }
            }
        };
        if self.store_ref(placement).is_disabled() {
            return None;
        }
        Some(placement)
    }

    /// The placement a put actually uses at `now`, applying the SSD
    /// quarantine redirection on top of
    /// [`placement_for_put`](Self::placement_for_put). Because placement
    /// is re-evaluated per put, the original `<SSD, W>` placement is
    /// restored automatically the moment the tier recovers — policies
    /// are never mutated.
    ///
    /// While quarantined, the put scheduled at or after the probe time
    /// is let through to the SSD as the recovery probe.
    fn effective_placement(&self, now: SimTime, vm: VmId, pool_id: PoolId) -> Option<Placement> {
        let placement = self.placement_for_put(vm, pool_id)?;
        if placement != Placement::Ssd {
            return Some(placement);
        }
        if self.ssd_breaker.allows(now) {
            // Healthy, or quarantined with the probe due: this put goes
            // through to the SSD (as the recovery probe in the latter
            // case).
            return Some(Placement::Ssd);
        }
        match self.fallback {
            FallbackMode::ToMem if !self.mem.is_disabled() => Some(Placement::Mem),
            _ => None,
        }
    }

    /// Re-homes or drops objects whose placement a policy change
    /// disallowed (e.g. a container switched from `Mem` to `SSD`,
    /// Fig. 12's third phase).
    fn rehome_pool_objects(&mut self, vm: VmId, pool_id: PoolId) {
        let Some(pool) = self.pools.get(&(vm, pool_id)) else {
            return;
        };
        let policy = pool.policy();
        let mut displaced: Vec<(BlockAddr, PageVersion, Placement)> = Vec::new();
        for (addr, slot) in pool.iter() {
            let allowed = match slot.placement {
                Placement::Mem => policy.store.uses_mem(),
                Placement::Ssd => policy.store.uses_ssd(),
            };
            if !allowed && policy.is_enabled() {
                displaced.push((addr, slot.version, slot.placement));
            }
        }
        // `Pool::iter` walks the slab in arena order, which depends on the
        // allocation history; sort by address so the re-homing sequence
        // (and the fresh seqs it mints) is a pure function of the visible
        // cache state.
        displaced.sort_unstable_by_key(|&(addr, _, _)| addr);
        for (addr, version, old_placement) in displaced {
            if let Some(pool) = self.pools.get_mut(&(vm, pool_id)) {
                pool.remove(addr);
            }
            self.store(old_placement).free(1);
            self.note_stale(old_placement, 1);
            self.log(JournalRecord::Evict {
                vm: vm.0,
                pool: pool_id.0,
                addr,
            });
            let new_placement = match old_placement {
                Placement::Mem => Placement::Ssd,
                Placement::Ssd => Placement::Mem,
            };
            // Move to the newly-allowed store if it has room; drop
            // otherwise (the object is clean, dropping is always safe).
            // A quarantined SSD tier accepts no re-homed objects.
            if new_placement == Placement::Ssd && self.ssd_quarantined() {
                continue;
            }
            if self.store_ref(new_placement).has_room() && self.store(new_placement).try_alloc() {
                let seq = self.alloc_seq();
                if self
                    .store(new_placement)
                    .try_write(SimTime::ZERO, addr)
                    .is_err()
                {
                    self.store(new_placement).free(1);
                    self.failed_puts += 1;
                    if new_placement == Placement::Ssd {
                        self.quarantine_ssd(SimTime::ZERO);
                    }
                    continue;
                }
                if let Some(pool) = self.pools.get_mut(&(vm, pool_id)) {
                    let (sid, d) = pool.insert(addr, new_placement, version, seq);
                    if let Some(d) = d {
                        self.store(d).free(1);
                        self.note_stale(d, 1);
                    }
                    self.push_global_fifo(vm, pool_id, sid, seq, new_placement);
                    self.log(JournalRecord::Put {
                        vm: vm.0,
                        pool: pool_id.0,
                        addr,
                        version: version.0,
                        placement: Self::placement_code(new_placement),
                    });
                }
            }
        }
    }

    fn push_global_fifo(
        &mut self,
        vm: VmId,
        pool: PoolId,
        sid: SlotId,
        seq: u64,
        placement: Placement,
    ) {
        let (queue, stale, store_used) = match placement {
            Placement::Mem => (
                &mut self.global_fifo_mem,
                &mut self.global_stale_mem,
                self.mem.used_pages(),
            ),
            Placement::Ssd => (
                &mut self.global_fifo_ssd,
                &mut self.global_stale_ssd,
                self.ssd.used_pages(),
            ),
        };
        queue.push_back((vm, pool, sid, seq));
        // Compact when tombstones dominate the queue: every removal funds
        // at most ~two retained-entry visits here, so the scrub is
        // amortized O(1) per removal (the old heuristic rescanned the
        // whole queue whenever it outgrew a multiple of store usage,
        // which is O(n) per put under churn). The size fallback bounds
        // the queue even if a removal path ever fails to tombstone.
        let len = queue.len() as u64;
        let dominated = *stale * 2 > len && len >= 1024;
        let oversized = len > store_used.saturating_mul(8).max(1024);
        if dominated || oversized {
            let pools = &self.pools;
            queue.retain(|&(v, p, id, s)| {
                pools
                    .get(&(v, p))
                    .and_then(|pool| pool.fifo_probe(id, s, placement))
                    .is_some()
            });
            *stale = 0;
        }
    }

    // ------------------------------------------------------------------
    // Crash recovery (warm restart from a journal image).
    // ------------------------------------------------------------------

    /// Every resident entry as `(vm, pool, addr, version)`, sorted.
    /// Chaos harnesses sweep this against the guests' authoritative disk
    /// versions as the stale-read oracle.
    pub fn entries(&self) -> Vec<(VmId, PoolId, BlockAddr, PageVersion)> {
        let mut out = Vec::new();
        for (&vm, entry) in &self.vms {
            for &pid in &entry.pool_ids {
                for (addr, slot) in self.pools[&(vm, pid)].iter() {
                    out.push((vm, pid, addr, slot.version));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Corrupts the stored checksum of one resident entry (chaos testing:
    /// models bit rot in the backing store that verify-on-read must
    /// catch). Returns `false` if the entry is not resident.
    pub fn corrupt_entry(&mut self, vm: VmId, pool: PoolId, addr: BlockAddr) -> bool {
        self.pools
            .get_mut(&(vm, pool))
            .is_some_and(|p| p.corrupt(addr))
    }

    /// Warm-restarts a cache from a (possibly truncated or corrupted)
    /// journal image.
    ///
    /// Replays the longest valid prefix of `journal_image` on a fresh
    /// cache built from `config`, then applies the **lose-don't-resurrect
    /// rule**: `guest_epochs` carries each surviving guest's flush epoch
    /// (the largest generation any acked flush hypercall returned). Flush
    /// records are synced before their hypercall returns, so a replay
    /// whose last flush generation for a VM is *below* that epoch proves
    /// the image lost acked flushes (bit rot below the watermark); every
    /// entry of that VM whose put generation predates the epoch is then
    /// discarded as potentially stale. Entries with later generations are
    /// provably clean: any write superseding them would have issued a
    /// flush with a still-later generation, raising the epoch.
    ///
    /// The recovered cache starts a fresh journal seeded with a
    /// checkpoint of the surviving state (control plane, then one `Put`
    /// per entry in FIFO order), so a second crash recovers from a short
    /// journal instead of the whole history. The checkpoint mints new
    /// per-VM epochs (returned in the report) which the hypervisor
    /// distributes to the guests' hypercall channels.
    ///
    /// In-band memory compression is *not* journaled: a recovered cache
    /// starts uncompressed, which can only shrink effective capacity
    /// (replayed puts that no longer fit are dropped — a safe loss).
    pub fn recover(
        config: CacheConfig,
        journal_image: &[u8],
        guest_epochs: &[(VmId, u64)],
    ) -> (DoubleDeckerCache, RecoveryReport) {
        let (records, stats) = Journal::replay(journal_image);
        let mut report = RecoveryReport {
            records_replayed: stats.records,
            torn_tail: stats.torn_tail,
            corrupt: stats.corrupt,
            ..RecoveryReport::default()
        };
        let mut cache = DoubleDeckerCache::new(config);
        // Last flush generation replayed per VM; compared against the
        // guests' epochs to detect lost acked flushes.
        let mut replayed_epochs: BTreeMap<u32, u64> = BTreeMap::new();
        let mut last_gen = 0;
        for (gen, rec) in records {
            last_gen = last_gen.max(gen);
            match rec {
                JournalRecord::Flush { vm, .. }
                | JournalRecord::FlushFile { vm, .. }
                | JournalRecord::Epoch { vm } => {
                    let e = replayed_epochs.entry(vm).or_insert(0);
                    *e = (*e).max(gen);
                }
                _ => {}
            }
            cache.apply_record(gen, rec, &mut report);
        }

        // Epoch discard: drop suspect entries of VMs whose acked flushes
        // the image lost. Recovery may lose entries, never resurrect one.
        for &(vm, guest_epoch) in guest_epochs {
            let replayed = replayed_epochs.get(&vm.0).copied().unwrap_or(0);
            if replayed >= guest_epoch {
                continue;
            }
            for pid in cache.pool_ids(vm) {
                let mut suspects: Vec<BlockAddr> = cache
                    .pools
                    .get(&(vm, pid))
                    .map(|p| {
                        p.iter()
                            .filter(|(_, s)| s.seq < guest_epoch)
                            .map(|(a, _)| a)
                            .collect()
                    })
                    .unwrap_or_default();
                suspects.sort_unstable();
                for addr in suspects {
                    if let Some(slot) = cache.pools.get_mut(&(vm, pid)).and_then(|p| p.remove(addr))
                    {
                        cache.store(slot.placement).free(1);
                        cache.note_stale(slot.placement, 1);
                        report.discarded_stale += 1;
                    }
                }
            }
        }

        cache.next_seq = last_gen + 1;
        cache.invalidate_all_entitlements();
        cache.shrink_to_capacity(SimTime::ZERO, Placement::Mem);
        cache.shrink_to_capacity(SimTime::ZERO, Placement::Ssd);
        report.recovered_entries = cache.pools.values().map(|p| p.total_used()).sum();
        report.new_epochs = cache.write_checkpoint(last_gen + 1);
        (cache, report)
    }

    /// Applies one replayed record to raw state: no journaling, and no
    /// side effects (re-homing, shrinking, trickle-down) — those were
    /// themselves journaled by the live cache and replay in order.
    fn apply_record(&mut self, gen: u64, rec: JournalRecord, report: &mut RecoveryReport) {
        match rec {
            JournalRecord::AddVm {
                vm,
                mem_weight,
                ssd_weight,
            }
            | JournalRecord::SetVmWeights {
                vm,
                mem_weight,
                ssd_weight,
            } => {
                self.vms
                    .entry(VmId(vm))
                    .and_modify(|e| {
                        e.mem_weight = mem_weight;
                        e.ssd_weight = ssd_weight;
                    })
                    .or_insert_with(|| VmEntry::new(mem_weight, ssd_weight));
            }
            JournalRecord::RemoveVm { vm } => {
                let vm = VmId(vm);
                if let Some(entry) = self.vms.remove(&vm) {
                    for pid in entry.pool_ids {
                        if let Some(mut pool) = self.pools.remove(&(vm, pid)) {
                            let (mem, ssd) = pool.drain();
                            let worn = pool.wear.retire();
                            self.retired_wear.entry(vm).or_default().absorb(&worn);
                            self.mem.free(mem);
                            self.ssd.free(ssd);
                            self.global_stale_mem += mem;
                            self.global_stale_ssd += ssd;
                        }
                    }
                }
            }
            JournalRecord::CreatePool {
                vm,
                pool,
                store,
                weight,
            } => {
                let (vm, pool) = (VmId(vm), PoolId(pool));
                let Some(store) = Self::store_kind_from_code(store) else {
                    return;
                };
                let entry = self.vms.entry(vm).or_insert_with(|| VmEntry::new(100, 100));
                if let Err(i) = entry.pool_ids.binary_search(&pool) {
                    entry.pool_ids.insert(i, pool);
                }
                self.pools
                    .insert((vm, pool), Pool::new(vm, CachePolicy { store, weight }));
                self.next_pool = self.next_pool.max(pool.0 + 1);
            }
            JournalRecord::DestroyPool { vm, pool } => {
                let (vm, pool) = (VmId(vm), PoolId(pool));
                if let Some(mut p) = self.pools.remove(&(vm, pool)) {
                    let (mem, ssd) = p.drain();
                    let worn = p.wear.retire();
                    self.retired_wear.entry(vm).or_default().absorb(&worn);
                    self.mem.free(mem);
                    self.ssd.free(ssd);
                    self.global_stale_mem += mem;
                    self.global_stale_ssd += ssd;
                    if let Some(entry) = self.vms.get_mut(&vm) {
                        if let Ok(i) = entry.pool_ids.binary_search(&pool) {
                            entry.pool_ids.remove(i);
                        }
                    }
                }
            }
            JournalRecord::SetPolicy {
                vm,
                pool,
                store,
                weight,
            } => {
                let Some(store) = Self::store_kind_from_code(store) else {
                    return;
                };
                if let Some(p) = self.pools.get_mut(&(VmId(vm), PoolId(pool))) {
                    p.set_policy(CachePolicy { store, weight });
                }
            }
            JournalRecord::Put {
                vm,
                pool,
                addr,
                version,
                placement,
            } => {
                let (vm, pool) = (VmId(vm), PoolId(pool));
                let Some(placement) = Self::placement_from_code(placement) else {
                    return;
                };
                if !self.pools.contains_key(&(vm, pool)) || !self.store(placement).try_alloc() {
                    report.dropped_no_room += 1;
                    // A dropped replay Put still accrues its wear into the
                    // retired ledger: the flash write physically happened
                    // before the crash, so losing the *entry* must not
                    // lose the *wear*.
                    let worn = self.retired_wear.entry(vm).or_default();
                    worn.pages_admitted += 1;
                    if placement == Placement::Ssd {
                        worn.ssd_pages_written += 1;
                    }
                    return;
                }
                let p = self.pools.get_mut(&(vm, pool)).expect("checked above");
                // The record's generation becomes the FIFO sequence:
                // generations are monotone, so replay preserves order.
                let (sid, displaced) = p.insert(addr, placement, PageVersion(version), gen);
                if let Some(displaced) = displaced {
                    self.store(displaced).free(1);
                    self.note_stale(displaced, 1);
                }
                self.push_global_fifo(vm, pool, sid, gen, placement);
            }
            JournalRecord::Take { vm, pool, addr } | JournalRecord::Evict { vm, pool, addr } => {
                if let Some(slot) = self
                    .pools
                    .get_mut(&(VmId(vm), PoolId(pool)))
                    .and_then(|p| p.remove(addr))
                {
                    self.store(slot.placement).free(1);
                    self.note_stale(slot.placement, 1);
                }
            }
            JournalRecord::Flush { vm, pool, addr } => {
                if let Some(slot) = self
                    .pools
                    .get_mut(&(VmId(vm), PoolId(pool)))
                    .and_then(|p| p.remove(addr))
                {
                    self.store(slot.placement).free(1);
                    self.note_stale(slot.placement, 1);
                }
                // Remote bindings are not journaled, but flush
                // localization must survive the crash: stash it for the
                // post-recovery re-bind so the remote never serves a
                // block the lost instance acked a flush for.
                self.remote_stash
                    .entry((VmId(vm), PoolId(pool)))
                    .or_default()
                    .0
                    .push(addr);
            }
            JournalRecord::FlushFile { vm, pool, file } => {
                if let Some(p) = self.pools.get_mut(&(VmId(vm), PoolId(pool))) {
                    let (mem, ssd) = p.remove_file(file);
                    self.mem.free(mem);
                    self.ssd.free(ssd);
                    self.global_stale_mem += mem;
                    self.global_stale_ssd += ssd;
                }
                self.remote_stash
                    .entry((VmId(vm), PoolId(pool)))
                    .or_default()
                    .1
                    .push(file);
            }
            JournalRecord::Epoch { .. } => {}
            JournalRecord::SetMemCapacity { pages } => self.mem.set_capacity_pages(pages),
            JournalRecord::SetSsdCapacity { pages } => self.ssd.set_capacity_pages(pages),
            JournalRecord::SetMode { mode } => {
                if let Some(mode) = Self::mode_from_code(mode) {
                    self.mode = mode;
                }
            }
            JournalRecord::SsdDrain => {
                for pool in self.pools.values_mut() {
                    pool.drain_placement(Placement::Ssd);
                }
                self.ssd.free(self.ssd.used_pages());
                self.global_fifo_ssd.clear();
                self.global_stale_ssd = 0;
            }
            JournalRecord::WearTotals {
                vm,
                ssd_pages_written,
                pages_admitted,
            } => {
                // Checkpoint wear carry-over: the checkpoint's Put records
                // re-accrue only the *live* entries' wear; this record
                // holds the VM's true cumulative totals at checkpoint
                // time. Apply as a max-correction into the retired
                // accumulator — monotone and idempotent, so a replayed
                // prefix never exceeds and never loses wear.
                let vm = VmId(vm);
                let current = self.vm_wear(vm);
                let r = self.retired_wear.entry(vm).or_default();
                if ssd_pages_written > current.ssd_pages_written {
                    r.ssd_pages_written += ssd_pages_written - current.ssd_pages_written;
                }
                if pages_admitted > current.pages_admitted {
                    r.pages_admitted += pages_admitted - current.pages_admitted;
                }
            }
        }
    }

    /// Seeds a fresh journal with a checkpoint of the current state so a
    /// later crash replays the checkpoint instead of the whole history.
    /// Generations continue from `start_gen` to stay monotone across the
    /// restart. Returns the freshly minted per-VM epochs.
    ///
    /// Record order matters: each VM's `Epoch` precedes every `Put`, so a
    /// corrupted checkpoint prefix can never make the epoch-discard pass
    /// drop into resurrecting state — puts carry generations above every
    /// distributed epoch. Puts are written in FIFO (sequence) order so
    /// replay reproduces eviction order.
    fn write_checkpoint(&mut self, start_gen: u64) -> Vec<(VmId, u64)> {
        let mut journal = Journal::with_start_gen(start_gen);
        journal.append(&JournalRecord::SetMode {
            mode: Self::mode_code(self.mode),
        });
        journal.append(&JournalRecord::SetMemCapacity {
            pages: self.mem.capacity_pages(),
        });
        journal.append(&JournalRecord::SetSsdCapacity {
            pages: self.ssd.capacity_pages(),
        });
        let mut new_epochs = Vec::with_capacity(self.vms.len());
        for (&vm, entry) in &self.vms {
            journal.append(&JournalRecord::AddVm {
                vm: vm.0,
                mem_weight: entry.mem_weight,
                ssd_weight: entry.ssd_weight,
            });
            let epoch = journal.append(&JournalRecord::Epoch { vm: vm.0 });
            new_epochs.push((vm, epoch));
        }
        let mut puts: Vec<(u64, VmId, PoolId, BlockAddr, u64, u8)> = Vec::new();
        for (&vm, entry) in &self.vms {
            for &pid in &entry.pool_ids {
                let pool = &self.pools[&(vm, pid)];
                let policy = pool.policy();
                journal.append(&JournalRecord::CreatePool {
                    vm: vm.0,
                    pool: pid.0,
                    store: Self::store_kind_code(policy.store),
                    weight: policy.weight,
                });
                for (addr, slot) in pool.iter() {
                    puts.push((
                        slot.seq,
                        vm,
                        pid,
                        addr,
                        slot.version.0,
                        Self::placement_code(slot.placement),
                    ));
                }
            }
        }
        puts.sort_unstable();
        let put_records: Vec<JournalRecord> = puts
            .into_iter()
            .map(
                |(_, vm, pid, addr, version, placement)| JournalRecord::Put {
                    vm: vm.0,
                    pool: pid.0,
                    addr,
                    version,
                    placement,
                },
            )
            .collect();
        journal.append_all(&put_records);
        // Wear carry-over, AFTER the puts: replaying the checkpoint
        // re-accrues the live entries' wear through the puts, then each
        // VM's record tops the totals up to the true cumulative value
        // (see the `WearTotals` arm of `apply_record`).
        for vm in self.wear_vm_ids() {
            let w = self.vm_wear(vm);
            journal.append(&JournalRecord::WearTotals {
                vm: vm.0,
                ssd_pages_written: w.ssd_pages_written,
                pages_admitted: w.pages_admitted,
            });
        }
        journal.sync();
        self.journal = Some(journal);
        new_epochs
    }

    // ------------------------------------------------------------------
    // Endurance plane: wear accounting and TTL demotion.
    // ------------------------------------------------------------------

    /// Every VM with wear on the books: live VMs plus VMs that were
    /// removed but whose retired wear persists. Sorted.
    pub fn wear_vm_ids(&self) -> Vec<VmId> {
        let mut ids: Vec<VmId> = self.vms.keys().copied().collect();
        for &vm in self.retired_wear.keys() {
            if let Err(i) = ids.binary_search(&vm) {
                ids.insert(i, vm);
            }
        }
        ids
    }

    /// Cumulative wear charged to one VM: its live pools plus everything
    /// retired when pools were destroyed. Never decreases.
    pub fn vm_wear(&self, vm: VmId) -> WearCounters {
        let mut t = self.retired_wear.get(&vm).copied().unwrap_or_default();
        if let Some(entry) = self.vms.get(&vm) {
            for &pid in &entry.pool_ids {
                t.absorb(&self.pools[&(vm, pid)].wear.totals());
            }
        }
        t
    }

    /// Device-level wear totals across every VM ever seen.
    pub fn wear_totals(&self) -> WearCounters {
        let mut t = WearCounters::default();
        for vm in self.wear_vm_ids() {
            t.absorb(&self.vm_wear(vm));
        }
        t
    }

    /// The admission plane this cache runs under.
    pub fn admission_config(&self) -> AdmissionConfig {
        self.admission
    }

    /// TTL staleness sweep: demotes (drops) SSD-resident entries older
    /// than the configured `ssd_ttl`, measured in per-pool insert
    /// distance. Demotions are journaled as evictions, so replay and the
    /// sharded engine agree byte for byte. Returns pages demoted. A
    /// no-op when `ssd_ttl` is 0.
    ///
    /// Deliberately *not* called from any internal path: the driver
    /// invokes it at deterministic points (tick boundaries), which keeps
    /// the sweep out of the threaded fast path.
    pub fn ttl_sweep(&mut self) -> u64 {
        let ttl = self.admission.ssd_ttl;
        if ttl == 0 {
            return 0;
        }
        let mut demoted = 0;
        let targets: Vec<(VmId, Vec<PoolId>)> = self
            .vms
            .iter()
            .map(|(&vm, e)| (vm, e.pool_ids.clone()))
            .collect();
        for (vm, pids) in targets {
            for pid in pids {
                let stale = self
                    .pools
                    .get(&(vm, pid))
                    .map(|p| p.stale_ssd_entries(ttl))
                    .unwrap_or_default();
                for addr in stale {
                    let Some(p) = self.pools.get_mut(&(vm, pid)) else {
                        break;
                    };
                    if p.remove(addr).is_none() {
                        continue;
                    }
                    p.counters.evictions += 1;
                    p.wear.ttl_demotions += 1;
                    self.ssd.free(1);
                    self.evictions += 1;
                    demoted += 1;
                    self.note_stale(Placement::Ssd, 1);
                    self.note_removal(vm, pid, Placement::Ssd);
                    self.log(JournalRecord::Evict {
                        vm: vm.0,
                        pool: pid.0,
                        addr,
                    });
                }
            }
        }
        demoted
    }
}

impl SecondChanceCache for DoubleDeckerCache {
    fn create_pool(&mut self, vm: VmId, policy: CachePolicy) -> PoolId {
        // Auto-register unknown VMs with a default weight so single-VM
        // setups need no explicit add_vm call.
        let entry = self.vms.entry(vm).or_insert_with(|| VmEntry::new(100, 100));
        let id = PoolId(self.next_pool);
        self.next_pool += 1;
        // `next_pool` is monotonic, so pushing keeps the registry sorted.
        entry.pool_ids.push(id);
        self.pools.insert((vm, id), Pool::new(vm, policy));
        self.invalidate_all_entitlements();
        self.log(JournalRecord::CreatePool {
            vm: vm.0,
            pool: id.0,
            store: Self::store_kind_code(policy.store),
            weight: policy.weight,
        });
        id
    }

    fn destroy_pool(&mut self, vm: VmId, pool: PoolId) {
        self.remote_bindings.remove(&(vm, pool));
        self.remote_stash.remove(&(vm, pool));
        if let Some(mut p) = self.pools.remove(&(vm, pool)) {
            let (mem, ssd) = p.drain();
            let worn = p.wear.retire();
            self.retired_wear.entry(vm).or_default().absorb(&worn);
            self.mem.free(mem);
            self.ssd.free(ssd);
            self.global_stale_mem += mem;
            self.global_stale_ssd += ssd;
            if let Some(entry) = self.vms.get_mut(&vm) {
                if let Ok(i) = entry.pool_ids.binary_search(&pool) {
                    entry.pool_ids.remove(i);
                }
            }
            self.invalidate_all_entitlements();
            self.log(JournalRecord::DestroyPool {
                vm: vm.0,
                pool: pool.0,
            });
        }
    }

    fn set_policy(&mut self, vm: VmId, pool: PoolId, policy: CachePolicy) {
        if let Some(p) = self.pools.get_mut(&(vm, pool)) {
            p.set_policy(policy);
            self.invalidate_all_entitlements();
            // Journal the policy change before re-homing: replay applies
            // the policy raw and then re-applies the re-homing's logged
            // evictions and puts in order.
            self.log(JournalRecord::SetPolicy {
                vm: vm.0,
                pool: pool.0,
                store: Self::store_kind_code(policy.store),
                weight: policy.weight,
            });
            self.rehome_pool_objects(vm, pool);
            // Re-homing moves usage between stores, which can change the
            // participant sets again.
            self.invalidate_all_entitlements();
        }
    }

    fn migrate_object(&mut self, vm: VmId, from: PoolId, to: PoolId, addr: BlockAddr) {
        let Some(slot) = self.pools.get_mut(&(vm, from)).and_then(|p| p.remove(addr)) else {
            return;
        };
        // The entry the source pool pushed for this object is stale now.
        self.note_stale(slot.placement, 1);
        self.note_removal(vm, from, slot.placement);
        self.log(JournalRecord::Take {
            vm: vm.0,
            pool: from.0,
            addr,
        });
        match self.pools.get_mut(&(vm, to)) {
            Some(target) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                let (sid, displaced) = target.insert(addr, slot.placement, slot.version, seq);
                if let Some(displaced) = displaced {
                    self.store(displaced).free(1);
                    self.note_stale(displaced, 1);
                }
                self.push_global_fifo(vm, to, sid, seq, slot.placement);
                self.note_insertion(vm, to, slot.placement);
                self.log(JournalRecord::Put {
                    vm: vm.0,
                    pool: to.0,
                    addr,
                    version: slot.version.0,
                    placement: Self::placement_code(slot.placement),
                });
            }
            None => {
                // Unknown target: the object has no owner; drop it.
                self.store(slot.placement).free(1);
            }
        }
    }

    fn pool_stats(&self, vm: VmId, pool: PoolId) -> Option<PoolStats> {
        let p = self.pools.get(&(vm, pool))?;
        Some(PoolStats {
            mem_pages: p.used(Placement::Mem),
            ssd_pages: p.used(Placement::Ssd),
            entitlement_pages: self.pool_entitlement(vm, pool),
            gets: p.counters.gets,
            hits: p.counters.hits,
            puts: p.counters.puts,
            evictions: p.counters.evictions,
            failed_gets: p.counters.failed_gets,
            failed_puts: p.counters.failed_puts,
            ssd_writes: p.wear.pages_written,
        })
    }

    fn get(&mut self, now: SimTime, vm: VmId, pool: PoolId, addr: BlockAddr) -> GetOutcome {
        let Some(p) = self.pools.get_mut(&(vm, pool)) else {
            return GetOutcome::Miss;
        };
        p.counters.gets += 1;
        let Some(slot) = p.remove(addr) else {
            // Miss in both local tiers: fall through to the pool's remote
            // binding (if any), which fails open back to a miss.
            return self.remote_get(now, vm, pool, addr);
        };
        self.store(slot.placement).free(1);
        // Exclusive semantics remove the object on a hit; its FIFO entry
        // outlives it as a tombstone.
        self.note_stale(slot.placement, 1);
        self.note_removal(vm, pool, slot.placement);
        self.log(JournalRecord::Take {
            vm: vm.0,
            pool: pool.0,
            addr,
        });
        // Verify-on-read: a slot whose checksum no longer matches its key
        // rotted in the backing store (e.g. SSD corruption surviving a
        // crash). It was already removed above, so it can never be served
        // later; fail the lookup and quarantine a rotten SSD tier so the
        // existing ToMem/Reject fallback takes over.
        if !slot.verifies(addr) {
            self.failed_gets += 1;
            if let Some(p) = self.pools.get_mut(&(vm, pool)) {
                p.counters.failed_gets += 1;
            }
            if slot.placement == Placement::Ssd {
                self.quarantine_ssd(now);
            }
            return GetOutcome::Failed { finish: now };
        }
        let finish = match slot.placement {
            Placement::Mem => self.mem.read(now, addr),
            Placement::Ssd => match self.ssd.try_read(now, addr) {
                Ok(finish) => finish,
                Err(err) => {
                    // The object was already removed above, so the failed
                    // read can never be served stale later; the whole
                    // tier is quarantined to keep it that way.
                    self.failed_gets += 1;
                    if let Some(p) = self.pools.get_mut(&(vm, pool)) {
                        p.counters.failed_gets += 1;
                    }
                    self.quarantine_ssd(now);
                    return GetOutcome::Failed { finish: err.finish };
                }
            },
        };
        if let Some(p) = self.pools.get_mut(&(vm, pool)) {
            p.counters.hits += 1;
            // A hit on an SSD-resident block is proven reuse: re-arm its
            // ghost entry so the block's next spill readmits without a
            // second probation pass.
            if self.admission.filters_spills()
                && slot.placement == Placement::Ssd
                && p.policy().store == StoreKind::Hybrid
            {
                p.ghost.note(addr);
            }
        }
        self.maybe_compact_journal();
        GetOutcome::Hit {
            finish,
            version: slot.version,
        }
    }

    fn put(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
    ) -> PutOutcome {
        let Some(placement) = self.effective_placement(now, vm, pool) else {
            return PutOutcome::Rejected;
        };

        // Ghost admission: a hybrid pool spilling into its SSD share must
        // earn the flash write — first sighting is remembered and dropped
        // (fail-open, same as a full tier), the second within the window
        // admits. Checked before any mutation so serial and sharded
        // engines decide identically, and rejecting is oracle-safe: a
        // version change always travels through a flush first, so the
        // overwrite-displacement below never had to happen for a
        // rejected put.
        if self.admission.filters_spills()
            && placement == Placement::Ssd
            && self
                .pools
                .get(&(vm, pool))
                .is_some_and(|p| p.policy().store == StoreKind::Hybrid)
        {
            let window = self.admission.ghost_window;
            let p = self.pools.get_mut(&(vm, pool)).expect("checked above");
            p.wear.spill_attempts += 1;
            if p.ghost.admit(addr, window) {
                p.wear.spill_admits += 1;
            } else {
                p.wear.spill_rejects += 1;
                return PutOutcome::Rejected;
            }
        }

        // Exclusive overwrite: displace any stale copy first so the freed
        // page is available to this put.
        if let Some(old) = self.pools.get_mut(&(vm, pool)).and_then(|p| p.remove(addr)) {
            self.store(old.placement).free(1);
            self.note_stale(old.placement, 1);
            self.note_removal(vm, pool, old.placement);
        }

        // Strict mode pre-check: a pool at its hard partition evicts from
        // itself before the store-level check.
        if self.mode == PartitionMode::Strict {
            let entitlement = self.pool_entitlement_in(vm, pool, placement);
            let used = self
                .pools
                .get(&(vm, pool))
                .map(|p| p.used(placement))
                .unwrap_or(0);
            if used + 1 > entitlement {
                let freed =
                    self.evict_pages_from_pool(now, vm, pool, placement, EVICTION_BATCH_PAGES);
                if freed == 0 {
                    return PutOutcome::Rejected;
                }
            }
        }

        // Resource-conservative enforcement: evict only when the store
        // itself is full (§4.3).
        if !self.store_ref(placement).has_room() {
            let freed = self.evict_batch(now, placement);
            if freed == 0 {
                return PutOutcome::Rejected;
            }
        }
        if !self.store(placement).try_alloc() {
            return PutOutcome::Rejected;
        }

        let seq = self.alloc_seq();
        let finish = match self.store(placement).try_write(now, addr) {
            Ok(finish) => {
                if placement == Placement::Ssd {
                    // A successful SSD write while quarantined is the
                    // recovery probe succeeding.
                    self.recover_ssd();
                }
                finish
            }
            Err(err) => {
                self.store(placement).free(1);
                self.failed_puts += 1;
                if let Some(p) = self.pools.get_mut(&(vm, pool)) {
                    p.counters.failed_puts += 1;
                }
                if placement == Placement::Ssd {
                    self.quarantine_ssd(now);
                }
                return PutOutcome::Failed { finish: err.finish };
            }
        };
        let pool_entry = self
            .pools
            .get_mut(&(vm, pool))
            .expect("pool verified by effective_placement");
        pool_entry.counters.puts += 1;
        let (sid, displaced) = pool_entry.insert(addr, placement, version, seq);
        if let Some(displaced) = displaced {
            // Unreachable in practice (old copy removed above), but keep
            // accounting exact if insert displaces.
            self.store(displaced).free(1);
            self.note_stale(displaced, 1);
        }
        self.push_global_fifo(vm, pool, sid, seq, placement);
        self.note_insertion(vm, pool, placement);
        self.log(JournalRecord::Put {
            vm: vm.0,
            pool: pool.0,
            addr,
            version: version.0,
            placement: Self::placement_code(placement),
        });
        self.maybe_compact_journal();
        PutOutcome::Stored { finish }
    }

    fn flush(&mut self, vm: VmId, pool: PoolId, addr: BlockAddr) -> u64 {
        if let Some(slot) = self.pools.get_mut(&(vm, pool)).and_then(|p| p.remove(addr)) {
            self.store(slot.placement).free(1);
            self.note_stale(slot.placement, 1);
            self.note_removal(vm, pool, slot.placement);
        }
        // A flush means the guest is writing the backing block: the
        // remote's copy of it is stale forever after.
        self.remote_note_flush(vm, pool, addr);
        // Logged (and synced) even when the block was absent: the returned
        // epoch must cover this flush regardless, since a crash may lose
        // the unsynced put that would have made the block present. Live
        // compaction is NOT checked here: flushes compact at batch
        // boundaries (`flush_many`), not per op — the sharded engine
        // hoists identically, which keeps the checkpoint rewrite firing
        // at the same operation on both planes.
        self.log_synced(JournalRecord::Flush {
            vm: vm.0,
            pool: pool.0,
            addr,
        })
    }

    fn flush_file(&mut self, vm: VmId, pool: PoolId, file: FileId) -> u64 {
        if let Some(p) = self.pools.get_mut(&(vm, pool)) {
            let (mem, ssd) = p.remove_file(file);
            self.mem.free(mem);
            self.ssd.free(ssd);
            self.global_stale_mem += mem;
            self.global_stale_ssd += ssd;
            if mem > 0 {
                self.note_removal(vm, pool, Placement::Mem);
            }
            if ssd > 0 {
                self.note_removal(vm, pool, Placement::Ssd);
            }
        }
        self.remote_note_flush_file(vm, pool, file);
        // Compaction hoisted to batch boundaries, like `flush`.
        self.log_synced(JournalRecord::FlushFile {
            vm: vm.0,
            pool: pool.0,
            file,
        })
    }

    // The batched entry points: the serial engine has no locks to
    // amortize, so each override is the exact per-op loop with one
    // up-front allocation (the trait defaults collect through iterator
    // adapters). `flush_many` additionally owns the batch-boundary
    // compaction check that the per-op `flush` no longer runs — the
    // sharded engine's batch plane does the same, which is what keeps
    // journal generations byte-identical across engines.

    fn get_many(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addrs: &[BlockAddr],
    ) -> Vec<GetOutcome> {
        let mut out = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            out.push(self.get(now, vm, pool, addr));
        }
        out
    }

    fn put_many(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        pages: &[(BlockAddr, PageVersion)],
    ) -> Vec<PutOutcome> {
        let mut out = Vec::with_capacity(pages.len());
        for &(addr, version) in pages {
            out.push(self.put(now, vm, pool, addr, version));
        }
        out
    }

    fn flush_many(&mut self, vm: VmId, pool: PoolId, addrs: &[BlockAddr]) -> u64 {
        if addrs.is_empty() {
            return 0;
        }
        let mut epoch = 0;
        for &addr in addrs {
            epoch = epoch.max(self.flush(vm, pool, addr));
        }
        self.maybe_compact_journal();
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VM: VmId = VmId(0);

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    fn small_cache(mode: PartitionMode) -> DoubleDeckerCache {
        // Capacity of exactly two eviction batches so limits are easy to hit.
        let config = CacheConfig {
            mem_capacity_pages: 2 * EVICTION_BATCH_PAGES,
            ssd_capacity_pages: 0,
            mode,
            admission: AdmissionConfig::off(),
        };
        DoubleDeckerCache::new(config)
    }

    fn fill(cache: &mut DoubleDeckerCache, pool: PoolId, file: u64, pages: u64) {
        for b in 0..pages {
            let out = cache.put(SimTime::ZERO, VM, pool, addr(file, b), PageVersion(1));
            assert!(out.is_stored(), "page {b} of file {file} rejected");
        }
    }

    #[test]
    fn put_get_exclusive_roundtrip() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        let a = addr(1, 0);
        assert!(cache
            .put(SimTime::ZERO, VM, pool, a, PageVersion(5))
            .is_stored());
        match cache.get(SimTime::ZERO, VM, pool, a) {
            GetOutcome::Hit { version, .. } => assert_eq!(version, PageVersion(5)),
            _ => panic!("expected hit"),
        }
        assert!(!cache.get(SimTime::ZERO, VM, pool, a).is_hit(), "exclusive");
        assert_eq!(cache.totals().mem_used_pages, 0);
    }

    #[test]
    fn put_overwrites_stale_copy() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        let a = addr(1, 0);
        cache.put(SimTime::ZERO, VM, pool, a, PageVersion(1));
        cache.put(SimTime::ZERO, VM, pool, a, PageVersion(2));
        assert_eq!(cache.totals().mem_used_pages, 1);
        match cache.get(SimTime::ZERO, VM, pool, a) {
            GetOutcome::Hit { version, .. } => assert_eq!(version, PageVersion(2)),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn flush_invalidates() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        cache.put(SimTime::ZERO, VM, pool, addr(1, 0), PageVersion(1));
        cache.flush(VM, pool, addr(1, 0));
        assert!(!cache.get(SimTime::ZERO, VM, pool, addr(1, 0)).is_hit());
        assert_eq!(cache.totals().mem_used_pages, 0);
        // Flushing a missing block is a no-op.
        cache.flush(VM, pool, addr(9, 9));
    }

    #[test]
    fn flush_file_drops_whole_file() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        fill(&mut cache, pool, 1, 10);
        fill(&mut cache, pool, 2, 5);
        cache.flush_file(VM, pool, FileId(1));
        assert_eq!(cache.totals().mem_used_pages, 5);
        assert!(!cache.get(SimTime::ZERO, VM, pool, addr(1, 3)).is_hit());
        assert!(cache.get(SimTime::ZERO, VM, pool, addr(2, 3)).is_hit());
    }

    #[test]
    fn unknown_pool_rejects() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        assert_eq!(
            cache.put(SimTime::ZERO, VM, PoolId(99), addr(1, 0), PageVersion(0)),
            PutOutcome::Rejected
        );
        assert_eq!(
            cache.get(SimTime::ZERO, VM, PoolId(99), addr(1, 0)),
            GetOutcome::Miss
        );
        assert_eq!(cache.pool_stats(VM, PoolId(99)), None);
    }

    #[test]
    fn disabled_policy_rejects() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::disabled());
        assert_eq!(
            cache.put(SimTime::ZERO, VM, pool, addr(1, 0), PageVersion(0)),
            PutOutcome::Rejected
        );
    }

    #[test]
    fn ssd_policy_uses_ssd_store() {
        let config = CacheConfig::mem_and_ssd(EVICTION_BATCH_PAGES, EVICTION_BATCH_PAGES);
        let mut cache = DoubleDeckerCache::new(config);
        let pool = cache.create_pool(VM, CachePolicy::ssd(100));
        cache.put(SimTime::ZERO, VM, pool, addr(1, 0), PageVersion(0));
        let t = cache.totals();
        assert_eq!(t.mem_used_pages, 0);
        assert_eq!(t.ssd_used_pages, 1);
    }

    #[test]
    fn ssd_only_policy_with_no_ssd_rejects() {
        let mut cache = small_cache(PartitionMode::DoubleDecker); // no SSD
        let pool = cache.create_pool(VM, CachePolicy::ssd(100));
        assert_eq!(
            cache.put(SimTime::ZERO, VM, pool, addr(1, 0), PageVersion(0)),
            PutOutcome::Rejected
        );
    }

    #[test]
    fn eviction_on_full_store_dd_mode() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let p1 = cache.create_pool(VM, CachePolicy::mem(50));
        let p2 = cache.create_pool(VM, CachePolicy::mem(50));
        let cap = 2 * EVICTION_BATCH_PAGES;
        // p1 greedily fills the whole cache.
        fill(&mut cache, p1, 1, cap);
        assert_eq!(cache.totals().mem_used_pages, cap);
        // p2 now stores: p1 (the over-entitlement entity) must be victimized.
        assert!(cache
            .put(SimTime::ZERO, VM, p2, addr(2, 0), PageVersion(0))
            .is_stored());
        let s1 = cache.pool_stats(VM, p1).unwrap();
        let s2 = cache.pool_stats(VM, p2).unwrap();
        assert!(s1.evictions >= EVICTION_BATCH_PAGES);
        assert_eq!(s2.evictions, 0);
        assert_eq!(s2.mem_pages, 1);
        assert!(cache.totals().evictions >= EVICTION_BATCH_PAGES);
    }

    #[test]
    fn global_mode_evicts_oldest_regardless_of_owner() {
        let mut cache = small_cache(PartitionMode::Global);
        let p1 = cache.create_pool(VM, CachePolicy::mem(50));
        let p2 = cache.create_pool(VM, CachePolicy::mem(50));
        let cap = 2 * EVICTION_BATCH_PAGES;
        // Interleave: p1's objects are older overall.
        fill(&mut cache, p1, 1, cap / 2);
        fill(&mut cache, p2, 2, cap / 2);
        // One more put evicts a batch of the *oldest* objects — p1's.
        cache.put(SimTime::ZERO, VM, p2, addr(3, 0), PageVersion(0));
        let s1 = cache.pool_stats(VM, p1).unwrap();
        let s2 = cache.pool_stats(VM, p2).unwrap();
        assert_eq!(s1.evictions, EVICTION_BATCH_PAGES);
        assert_eq!(s2.evictions, 0);
    }

    #[test]
    fn weighted_eviction_respects_weights() {
        // Two pools with weights 75/25; both over-filled; the one further
        // over its entitlement (the light one) gets evicted.
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let heavy = cache.create_pool(VM, CachePolicy::mem(75));
        let light = cache.create_pool(VM, CachePolicy::mem(25));
        let cap = 2 * EVICTION_BATCH_PAGES;
        fill(&mut cache, heavy, 1, cap / 2);
        fill(&mut cache, light, 2, cap / 2);
        // Store is full; heavy pool stores one more page.
        cache.put(SimTime::ZERO, VM, heavy, addr(3, 0), PageVersion(0));
        let s_light = cache.pool_stats(VM, light).unwrap();
        let s_heavy = cache.pool_stats(VM, heavy).unwrap();
        assert!(
            s_light.evictions > 0,
            "light pool (over its 25% share) must be the victim"
        );
        assert_eq!(s_heavy.evictions, 0);
    }

    #[test]
    fn two_level_eviction_picks_victim_vm_first() {
        let config = CacheConfig {
            mem_capacity_pages: 2 * EVICTION_BATCH_PAGES,
            ssd_capacity_pages: 0,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        let vm1 = VmId(1);
        let vm2 = VmId(2);
        cache.add_vm(vm1, 50);
        cache.add_vm(vm2, 50);
        let p1 = cache.create_pool(vm1, CachePolicy::mem(100));
        let p2 = cache.create_pool(vm2, CachePolicy::mem(100));
        let cap = 2 * EVICTION_BATCH_PAGES;
        // VM1 takes everything; then VM2 starts storing.
        for b in 0..cap {
            cache.put(SimTime::ZERO, vm1, p1, addr(1, b), PageVersion(0));
        }
        cache.put(SimTime::ZERO, vm2, p2, addr(2, 0), PageVersion(0));
        assert!(cache.pool_stats(vm1, p1).unwrap().evictions > 0);
        assert_eq!(cache.pool_stats(vm2, p2).unwrap().evictions, 0);
        let u1 = cache.vm_usage(vm1);
        assert!(u1.mem_pages < cap);
    }

    #[test]
    fn destroy_pool_frees_space() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        let n = EVICTION_BATCH_PAGES; // comfortably under capacity
        fill(&mut cache, pool, 1, n);
        assert_eq!(cache.totals().mem_used_pages, n);
        cache.destroy_pool(VM, pool);
        assert_eq!(cache.totals().mem_used_pages, 0);
        assert_eq!(cache.pool_stats(VM, pool), None);
    }

    #[test]
    fn remove_vm_frees_all_pools() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        cache.add_vm(VmId(1), 100);
        let p1 = cache.create_pool(VmId(1), CachePolicy::mem(50));
        let p2 = cache.create_pool(VmId(1), CachePolicy::mem(50));
        for b in 0..10 {
            cache.put(SimTime::ZERO, VmId(1), p1, addr(1, b), PageVersion(0));
            cache.put(SimTime::ZERO, VmId(1), p2, addr(2, b), PageVersion(0));
        }
        cache.remove_vm(VmId(1));
        assert_eq!(cache.totals().mem_used_pages, 0);
        assert!(cache.pool_ids(VmId(1)).is_empty());
    }

    #[test]
    fn migrate_object_moves_ownership() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let p1 = cache.create_pool(VM, CachePolicy::mem(50));
        let p2 = cache.create_pool(VM, CachePolicy::mem(50));
        cache.put(SimTime::ZERO, VM, p1, addr(1, 0), PageVersion(7));
        cache.migrate_object(VM, p1, p2, addr(1, 0));
        assert!(!cache.get(SimTime::ZERO, VM, p1, addr(1, 0)).is_hit());
        match cache.get(SimTime::ZERO, VM, p2, addr(1, 0)) {
            GetOutcome::Hit { version, .. } => assert_eq!(version, PageVersion(7)),
            _ => panic!("object should have migrated"),
        }
        // Migrating a missing object is a no-op.
        cache.migrate_object(VM, p1, p2, addr(9, 9));
    }

    #[test]
    fn migrate_to_unknown_pool_drops_object() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let p1 = cache.create_pool(VM, CachePolicy::mem(100));
        cache.put(SimTime::ZERO, VM, p1, addr(1, 0), PageVersion(0));
        cache.migrate_object(VM, p1, PoolId(99), addr(1, 0));
        assert_eq!(cache.totals().mem_used_pages, 0);
    }

    #[test]
    fn set_policy_mem_to_ssd_rehomes_objects() {
        let config = CacheConfig::mem_and_ssd(EVICTION_BATCH_PAGES, EVICTION_BATCH_PAGES);
        let mut cache = DoubleDeckerCache::new(config);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        fill(&mut cache, pool, 1, 20);
        cache.set_policy(VM, pool, CachePolicy::ssd(100));
        let t = cache.totals();
        assert_eq!(t.mem_used_pages, 0, "memory share released immediately");
        assert_eq!(t.ssd_used_pages, 20, "objects moved to the SSD store");
        // Objects remain readable.
        assert!(cache.get(SimTime::ZERO, VM, pool, addr(1, 3)).is_hit());
    }

    #[test]
    fn set_policy_to_ssd_without_ssd_drops_objects() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        fill(&mut cache, pool, 1, 20);
        cache.set_policy(VM, pool, CachePolicy::ssd(100));
        assert_eq!(cache.totals().mem_used_pages, 0);
        assert_eq!(cache.totals().ssd_used_pages, 0);
    }

    #[test]
    fn capacity_shrink_evicts_excess() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        let cap = 2 * EVICTION_BATCH_PAGES;
        fill(&mut cache, pool, 1, cap);
        cache.set_mem_capacity(SimTime::ZERO, cap / 2);
        assert!(cache.totals().mem_used_pages <= cap / 2);
        assert_eq!(cache.totals().mem_capacity_pages, cap / 2);
    }

    #[test]
    fn capacity_growth_accepts_more() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        let cap = 2 * EVICTION_BATCH_PAGES;
        fill(&mut cache, pool, 1, cap);
        cache.set_mem_capacity(SimTime::ZERO, 2 * cap);
        assert!(cache
            .put(SimTime::ZERO, VM, pool, addr(2, 0), PageVersion(0))
            .is_stored());
        assert_eq!(cache.totals().mem_used_pages, cap + 1);
        assert_eq!(cache.totals().evictions, 0);
    }

    #[test]
    fn hybrid_pool_spills_to_ssd() {
        // Hybrid pool: memory entitlement of one batch, then spill.
        let config = CacheConfig::mem_and_ssd(EVICTION_BATCH_PAGES, 4 * EVICTION_BATCH_PAGES);
        let mut cache = DoubleDeckerCache::new(config);
        let pool = cache.create_pool(VM, CachePolicy::hybrid(100));
        let total = 2 * EVICTION_BATCH_PAGES;
        fill(&mut cache, pool, 1, total);
        let s = cache.pool_stats(VM, pool).unwrap();
        assert_eq!(s.mem_pages, EVICTION_BATCH_PAGES, "memory share filled");
        assert_eq!(s.ssd_pages, total - EVICTION_BATCH_PAGES, "rest spilled");
        assert_eq!(s.evictions, 0, "spilling is not eviction");
    }

    #[test]
    fn strict_mode_caps_pool_at_entitlement() {
        let mut cache = small_cache(PartitionMode::Strict);
        let p1 = cache.create_pool(VM, CachePolicy::mem(50));
        let _p2 = cache.create_pool(VM, CachePolicy::mem(50));
        let cap = 2 * EVICTION_BATCH_PAGES;
        // p1 tries to take everything but is capped at its 50% partition.
        fill(&mut cache, p1, 1, cap);
        let s1 = cache.pool_stats(VM, p1).unwrap();
        assert!(
            s1.mem_pages <= cap / 2,
            "strict partition must cap p1 at {} (got {})",
            cap / 2,
            s1.mem_pages
        );
        assert!(s1.evictions > 0, "p1 must self-evict at its cap");
    }

    #[test]
    fn dd_mode_lends_slack_unlike_strict() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let p1 = cache.create_pool(VM, CachePolicy::mem(50));
        let _p2 = cache.create_pool(VM, CachePolicy::mem(50));
        let cap = 2 * EVICTION_BATCH_PAGES;
        fill(&mut cache, p1, 1, cap);
        let s1 = cache.pool_stats(VM, p1).unwrap();
        assert_eq!(
            s1.mem_pages, cap,
            "resource-conservative DD lets p1 use idle capacity"
        );
        assert_eq!(s1.evictions, 0);
    }

    #[test]
    fn pool_stats_counters() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        cache.put(SimTime::ZERO, VM, pool, addr(1, 0), PageVersion(0));
        cache.put(SimTime::ZERO, VM, pool, addr(1, 1), PageVersion(0));
        cache.get(SimTime::ZERO, VM, pool, addr(1, 0)); // hit
        cache.get(SimTime::ZERO, VM, pool, addr(1, 9)); // miss
        let s = cache.pool_stats(VM, pool).unwrap();
        assert_eq!(s.puts, 2);
        assert_eq!(s.gets, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.mem_pages, 1);
        assert!(s.entitlement_pages > 0);
        assert!((s.hit_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn entitlements_follow_vm_weights() {
        let config = CacheConfig {
            mem_capacity_pages: 3000,
            ssd_capacity_pages: 0,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        cache.add_vm(VmId(1), 33);
        cache.add_vm(VmId(2), 67);
        let p1 = cache.create_pool(VmId(1), CachePolicy::mem(100));
        let p2 = cache.create_pool(VmId(2), CachePolicy::mem(100));
        let e1 = cache.pool_entitlement(VmId(1), p1);
        let e2 = cache.pool_entitlement(VmId(2), p2);
        assert_eq!(e1 + e2, 3000);
        assert!((e1 as f64 / 3000.0 - 0.33).abs() < 0.01);
        assert!((e2 as f64 / 3000.0 - 0.67).abs() < 0.01);
    }

    #[test]
    fn container_entitlements_within_vm() {
        let config = CacheConfig {
            mem_capacity_pages: 4000,
            ssd_capacity_pages: 4000,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        cache.add_vm(VmId(1), 100);
        // Paper Fig. 4 example (VM2): memory split 25/75 between two
        // containers, third container on SSD.
        let c1 = cache.create_pool(VmId(1), CachePolicy::mem(25));
        let c2 = cache.create_pool(VmId(1), CachePolicy::mem(75));
        let c3 = cache.create_pool(VmId(1), CachePolicy::ssd(100));
        assert_eq!(cache.pool_entitlement(VmId(1), c1), 1000);
        assert_eq!(cache.pool_entitlement(VmId(1), c2), 3000);
        assert_eq!(cache.pool_entitlement(VmId(1), c3), 4000);
    }

    #[test]
    fn ssd_only_vm_does_not_dilute_mem_entitlements() {
        // Fig. 13: VM3 (SSD-only) must not disturb the memory-store split
        // between VM1 and VM2.
        let config = CacheConfig {
            mem_capacity_pages: 1000,
            ssd_capacity_pages: 1000,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        cache.add_vm(VmId(1), 60);
        cache.add_vm(VmId(2), 40);
        cache.add_vm(VmId(3), 100);
        let p1 = cache.create_pool(VmId(1), CachePolicy::mem(100));
        let p2 = cache.create_pool(VmId(2), CachePolicy::mem(100));
        let _p3 = cache.create_pool(VmId(3), CachePolicy::ssd(100));
        assert_eq!(cache.pool_entitlement(VmId(1), p1), 600);
        assert_eq!(cache.pool_entitlement(VmId(2), p2), 400);
    }

    #[test]
    fn get_latency_mem_faster_than_ssd() {
        let config = CacheConfig::mem_and_ssd(1000, 1000);
        let mut cache = DoubleDeckerCache::new(config);
        let pm = cache.create_pool(VM, CachePolicy::mem(50));
        let ps = cache.create_pool(VM, CachePolicy::ssd(50));
        cache.put(SimTime::ZERO, VM, pm, addr(1, 0), PageVersion(0));
        cache.put(SimTime::ZERO, VM, ps, addr(2, 0), PageVersion(0));
        let t0 = SimTime::from_secs(1);
        let m = match cache.get(t0, VM, pm, addr(1, 0)) {
            GetOutcome::Hit { finish, .. } => finish,
            _ => panic!(),
        };
        let s = match cache.get(t0, VM, ps, addr(2, 0)) {
            GetOutcome::Hit { finish, .. } => finish,
            _ => panic!(),
        };
        assert!(m < s, "memory hit must be faster than SSD hit");
    }

    #[test]
    fn accounting_invariant_under_churn() {
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        let p1 = cache.create_pool(VM, CachePolicy::mem(60));
        let p2 = cache.create_pool(VM, CachePolicy::mem(40));
        let mut rng = ddc_sim::SimRng::new(99);
        for i in 0..5000u64 {
            let pool = if rng.chance(0.5) { p1 } else { p2 };
            let a = addr(rng.range_u64(1, 5), rng.range_u64(0, 2000));
            match rng.range_u64(0, 10) {
                0..=5 => {
                    cache.put(SimTime::from_nanos(i), VM, pool, a, PageVersion(i));
                }
                6..=8 => {
                    cache.get(SimTime::from_nanos(i), VM, pool, a);
                }
                _ => {
                    cache.flush(VM, pool, a);
                }
            }
            let t = cache.totals();
            let s1 = cache.pool_stats(VM, p1).unwrap();
            let s2 = cache.pool_stats(VM, p2).unwrap();
            assert_eq!(
                t.mem_used_pages,
                s1.mem_pages + s2.mem_pages,
                "store accounting must equal pool accounting at step {i}"
            );
            assert!(t.mem_used_pages <= t.mem_capacity_pages);
        }
    }

    #[test]
    fn compression_defers_evictions() {
        let mut plain = small_cache(PartitionMode::DoubleDecker);
        let mut zcache = small_cache(PartitionMode::DoubleDecker);
        zcache.set_mem_compression(500, ddc_sim::SimDuration::from_micros(3));
        let p1 = plain.create_pool(VM, CachePolicy::mem(100));
        let p2 = zcache.create_pool(VM, CachePolicy::mem(100));
        let n = 3 * EVICTION_BATCH_PAGES; // over raw capacity, under 2x
        fill(&mut plain, p1, 1, n);
        fill(&mut zcache, p2, 1, n);
        assert!(plain.totals().evictions > 0, "plain cache overflows");
        assert_eq!(zcache.totals().evictions, 0, "2:1 compression absorbs it");
        assert_eq!(zcache.totals().mem_used_pages, n);
    }

    #[test]
    fn mode_accessor_and_switch() {
        let mut cache = small_cache(PartitionMode::Global);
        assert_eq!(cache.mode(), PartitionMode::Global);
        cache.set_mode(PartitionMode::DoubleDecker);
        assert_eq!(cache.mode(), PartitionMode::DoubleDecker);
    }

    #[test]
    fn set_weight_of_unknown_vm_is_a_noop() {
        // The control plane takes caller-supplied ids; a stale id (e.g. a
        // VM shut down concurrently) must not bring the host down.
        let mut cache = small_cache(PartitionMode::DoubleDecker);
        cache.set_vm_weight(VmId(9), 10);
        cache.set_vm_store_weights(VmId(9), 10, 20);
        assert!(cache.vm_ids().is_empty());
    }

    #[test]
    fn per_store_vm_weights_footnote1() {
        let config = CacheConfig {
            mem_capacity_pages: 1000,
            ssd_capacity_pages: 1000,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        // VM1 favours memory (75/25); VM2 the reverse.
        cache.add_vm_with_store_weights(VmId(1), 75, 25);
        cache.add_vm_with_store_weights(VmId(2), 25, 75);
        let m1 = cache.create_pool(VmId(1), CachePolicy::mem(100));
        let s1 = cache.create_pool(VmId(1), CachePolicy::ssd(100));
        let m2 = cache.create_pool(VmId(2), CachePolicy::mem(100));
        let s2 = cache.create_pool(VmId(2), CachePolicy::ssd(100));
        assert_eq!(cache.pool_entitlement(VmId(1), m1), 750);
        assert_eq!(cache.pool_entitlement(VmId(2), m2), 250);
        assert_eq!(cache.pool_entitlement(VmId(1), s1), 250);
        assert_eq!(cache.pool_entitlement(VmId(2), s2), 750);
        // Dynamic update flips the split.
        cache.set_vm_store_weights(VmId(1), 10, 90);
        cache.set_vm_store_weights(VmId(2), 90, 10);
        assert_eq!(cache.pool_entitlement(VmId(1), m1), 100);
        assert_eq!(cache.pool_entitlement(VmId(1), s1), 900);
        // The uniform setter still applies to both stores.
        cache.set_vm_weight(VmId(1), 50);
        cache.set_vm_weight(VmId(2), 50);
        assert_eq!(cache.pool_entitlement(VmId(1), m1), 500);
        assert_eq!(cache.pool_entitlement(VmId(1), s1), 500);
    }

    /// SSD-tier fault handling: quarantine, fallback and recovery.
    mod faults {
        use super::*;
        use ddc_sim::{FaultKind, FaultSchedule};

        fn ssd_cache() -> (DoubleDeckerCache, PoolId) {
            let mut cache = DoubleDeckerCache::new(CacheConfig::mem_and_ssd(64, 64));
            let pool = cache.create_pool(VM, CachePolicy::ssd(100));
            (cache, pool)
        }

        /// A schedule that fails every SSD IO from `from` to `until`.
        fn outage(from: SimTime, until: Option<SimTime>) -> FaultSchedule {
            FaultSchedule::new(0xFA).with_window(
                from,
                until,
                FaultKind::TransientErrors { rate: 1.0 },
            )
        }

        #[test]
        fn read_fault_quarantines_tier_and_never_serves_stale() {
            let (mut cache, pool) = ssd_cache();
            for b in 0..8 {
                assert!(cache
                    .put(SimTime::ZERO, VM, pool, addr(1, b), PageVersion(1))
                    .is_stored());
            }
            cache.set_ssd_fault_schedule(Some(outage(SimTime::from_secs(1), None)));
            let t = SimTime::from_secs(1);
            let out = cache.get(t, VM, pool, addr(1, 0));
            assert!(out.is_failed(), "failed read surfaces as Failed, not Hit");
            let totals = cache.totals();
            assert_eq!(totals.ssd_quarantines, 1);
            assert_eq!(totals.failed_gets, 1);
            assert_eq!(
                totals.quarantine_invalidated_pages, 7,
                "the 7 remaining pages were invalidated wholesale"
            );
            assert_eq!(totals.ssd_used_pages, 0, "the tier was emptied");
            assert!(cache.ssd_quarantined());
            // Every subsequent lookup is a clean miss — nothing stale.
            for b in 0..8 {
                assert_eq!(cache.get(t, VM, pool, addr(1, b)), GetOutcome::Miss);
            }
            let s = cache.pool_stats(VM, pool).unwrap();
            assert_eq!(s.failed_gets, 1);
            assert_eq!(s.ssd_pages, 0);
        }

        #[test]
        fn put_fault_quarantines_and_falls_back_to_mem() {
            let (mut cache, pool) = ssd_cache();
            cache.set_ssd_fault_schedule(Some(outage(SimTime::ZERO, None)));
            let out = cache.put(SimTime::ZERO, VM, pool, addr(1, 0), PageVersion(1));
            assert!(out.is_failed());
            assert!(cache.ssd_quarantined());
            assert_eq!(cache.totals().failed_puts, 1);
            // Before the probe time, <SSD> puts are re-pointed at memory.
            let out = cache.put(SimTime::ZERO, VM, pool, addr(1, 1), PageVersion(1));
            assert!(out.is_stored());
            let s = cache.pool_stats(VM, pool).unwrap();
            assert_eq!(
                s.mem_pages, 1,
                "fallback placement went to the memory store"
            );
            assert_eq!(s.ssd_pages, 0);
            assert_eq!(s.failed_puts, 1);
        }

        #[test]
        fn reject_fallback_sends_puts_straight_to_disk() {
            let (mut cache, pool) = ssd_cache();
            cache.set_ssd_fallback_mode(FallbackMode::Reject);
            assert_eq!(cache.ssd_fallback_mode(), FallbackMode::Reject);
            cache.set_ssd_fault_schedule(Some(outage(SimTime::ZERO, None)));
            assert!(cache
                .put(SimTime::ZERO, VM, pool, addr(1, 0), PageVersion(1))
                .is_failed());
            // While quarantined the pages simply go uncached.
            assert_eq!(
                cache.put(SimTime::ZERO, VM, pool, addr(1, 1), PageVersion(1)),
                PutOutcome::Rejected
            );
            assert_eq!(cache.totals().mem_used_pages, 0);
        }

        #[test]
        fn recovery_probe_restores_ssd_placement() {
            let (mut cache, pool) = ssd_cache();
            // SSD IO fails during [1s, 2s).
            cache.set_ssd_fault_schedule(Some(outage(
                SimTime::from_secs(1),
                Some(SimTime::from_secs(2)),
            )));
            let t_fault = SimTime::from_secs(1);
            assert!(cache
                .put(t_fault, VM, pool, addr(1, 0), PageVersion(1))
                .is_failed());
            assert!(cache.ssd_quarantined());
            // A probe inside the outage window fails and doubles the
            // backoff; the tier stays quarantined.
            let t_probe1 = t_fault + DoubleDeckerCache::SSD_PROBE_INITIAL_BACKOFF;
            assert!(cache
                .put(t_probe1, VM, pool, addr(1, 1), PageVersion(1))
                .is_failed());
            assert!(cache.ssd_quarantined());
            assert_eq!(cache.totals().ssd_quarantines, 1, "one quarantine episode");
            // After the outage clears, the next probe succeeds and the
            // original <SSD> placement resumes automatically.
            let t_ok = SimTime::from_secs(3);
            assert!(cache
                .put(t_ok, VM, pool, addr(1, 2), PageVersion(1))
                .is_stored());
            assert!(!cache.ssd_quarantined());
            assert_eq!(cache.totals().ssd_recoveries, 1);
            let s = cache.pool_stats(VM, pool).unwrap();
            assert_eq!(s.ssd_pages, 1);
            assert_eq!(s.mem_pages, 0);
            // And the stored page reads back fine.
            assert!(cache.get(t_ok, VM, pool, addr(1, 2)).is_hit());
        }

        #[test]
        fn accounting_stays_consistent_through_quarantine() {
            let (mut cache, pool) = ssd_cache();
            let mem_pool = cache.create_pool(VM, CachePolicy::mem(100));
            for b in 0..10 {
                cache.put(SimTime::ZERO, VM, pool, addr(1, b), PageVersion(1));
                cache.put(SimTime::ZERO, VM, mem_pool, addr(2, b), PageVersion(1));
            }
            cache.set_ssd_fault_schedule(Some(outage(SimTime::from_secs(1), None)));
            cache.get(SimTime::from_secs(1), VM, pool, addr(1, 0));
            let totals = cache.totals();
            let s_ssd = cache.pool_stats(VM, pool).unwrap();
            let s_mem = cache.pool_stats(VM, mem_pool).unwrap();
            assert_eq!(totals.ssd_used_pages, s_ssd.ssd_pages + s_mem.ssd_pages);
            assert_eq!(totals.mem_used_pages, s_ssd.mem_pages + s_mem.mem_pages);
            assert_eq!(
                s_mem.mem_pages, 10,
                "the memory tier is untouched by SSD quarantine"
            );
        }
    }

    /// Seeded randomized schedules over the full control + data API
    /// surface (in-tree replacement for proptest, which is unavailable
    /// offline).
    mod randomized {
        use super::*;
        use ddc_sim::SimRng;

        /// Accounting invariants hold across the full control + data API
        /// surface, including VM/pool lifecycle and capacity changes.
        #[test]
        fn full_lifecycle_invariants() {
            let mut rng = SimRng::new(0xDDCACE);
            for case in 0..96 {
                let mut r = rng.fork(case);
                let config = CacheConfig {
                    mem_capacity_pages: 64,
                    ssd_capacity_pages: 64,
                    mode: PartitionMode::DoubleDecker,
                    admission: AdmissionConfig::off(),
                };
                let mut cache = DoubleDeckerCache::new(config);
                // pools[vm] = live pool ids of that VM
                let mut pools: Vec<Vec<PoolId>> = vec![Vec::new(); 3];
                let mut live_vm = [false; 3];
                let a = |f: u64, b: u64| BlockAddr::new(FileId(f), b);
                let pool_of = |pools: &Vec<Vec<PoolId>>, vm: u64, pool: u64| -> Option<PoolId> {
                    pools[vm as usize].get(pool as usize).copied()
                };
                let mut version = 0u64;
                for _ in 0..r.range_u64(1, 250) {
                    let vm = r.range_u64(0, 3);
                    let pool = r.range_u64(0, 4);
                    let file = r.range_u64(0, 3);
                    let block = r.range_u64(0, 24);
                    let weight = r.range_u64(1, 100);
                    let ssd = r.chance(0.5);
                    // Weighted op mix mirroring the original strategy
                    // (puts and gets dominate).
                    match r.range_u64(0, 29) {
                        0..=9 => {
                            if let Some(p) = pool_of(&pools, vm, pool) {
                                version += 1;
                                cache.put(
                                    SimTime::ZERO,
                                    VmId(vm as u32),
                                    p,
                                    a(file, block),
                                    PageVersion(version),
                                );
                            }
                        }
                        10..=15 => {
                            if let Some(p) = pool_of(&pools, vm, pool) {
                                cache.get(SimTime::ZERO, VmId(vm as u32), p, a(file, block));
                            }
                        }
                        16..=17 => {
                            if let Some(p) = pool_of(&pools, vm, pool) {
                                cache.flush(VmId(vm as u32), p, a(file, block));
                            }
                        }
                        18 => {
                            if let Some(p) = pool_of(&pools, vm, pool) {
                                cache.flush_file(VmId(vm as u32), p, FileId(file));
                            }
                        }
                        19..=20 => {
                            let policy = if ssd {
                                CachePolicy::ssd(weight as u32)
                            } else {
                                CachePolicy::mem(weight as u32)
                            };
                            let id = cache.create_pool(VmId(vm as u32), policy);
                            pools[vm as usize].push(id);
                            live_vm[vm as usize] = true;
                        }
                        21 => {
                            if let Some(p) = pool_of(&pools, vm, pool) {
                                cache.destroy_pool(VmId(vm as u32), p);
                                pools[vm as usize].retain(|&x| x != p);
                            }
                        }
                        22..=23 => {
                            if let Some(p) = pool_of(&pools, vm, pool) {
                                let policy = if ssd {
                                    CachePolicy::ssd(weight as u32)
                                } else {
                                    CachePolicy::mem(weight as u32)
                                };
                                cache.set_policy(VmId(vm as u32), p, policy);
                            }
                        }
                        24 => {
                            let to = r.range_u64(0, 4);
                            if let (Some(f), Some(t)) =
                                (pool_of(&pools, vm, pool), pool_of(&pools, vm, to))
                            {
                                cache.migrate_object(VmId(vm as u32), f, t, a(file, block));
                            }
                        }
                        25 => {
                            if live_vm[vm as usize] {
                                cache.set_vm_weight(VmId(vm as u32), weight);
                            }
                        }
                        26 => {
                            if live_vm[vm as usize] {
                                cache.remove_vm(VmId(vm as u32));
                                pools[vm as usize].clear();
                                live_vm[vm as usize] = false;
                            }
                        }
                        27 => {
                            cache.set_mem_capacity(SimTime::ZERO, r.range_u64(8, 128));
                        }
                        _ => {
                            cache.set_ssd_capacity(SimTime::ZERO, r.range_u64(8, 128));
                        }
                    }
                    // Invariants after every operation.
                    let totals = cache.totals();
                    assert!(totals.mem_used_pages <= totals.mem_capacity_pages);
                    assert!(totals.ssd_used_pages <= totals.ssd_capacity_pages);
                    let mut mem_sum = 0;
                    let mut ssd_sum = 0;
                    for (vm, vm_pools) in pools.iter().enumerate() {
                        for &p in vm_pools {
                            let s = cache
                                .pool_stats(VmId(vm as u32), p)
                                .expect("live pool has stats");
                            mem_sum += s.mem_pages;
                            ssd_sum += s.ssd_pages;
                        }
                    }
                    assert_eq!(totals.mem_used_pages, mem_sum);
                    assert_eq!(totals.ssd_used_pages, ssd_sum);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Crash-and-recovery plane.
    // ------------------------------------------------------------------

    /// A journaled cache with two VMs, mixed mem/SSD pools, and a spread
    /// of churn (puts, exclusive gets, flushes, a capacity change), plus
    /// the flush epochs a guest would have accumulated.
    fn journaled_fixture() -> (DoubleDeckerCache, Vec<(VmId, u64)>) {
        let config = CacheConfig {
            mem_capacity_pages: 64,
            ssd_capacity_pages: 64,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        cache.enable_journal();
        cache.add_vm(VmId(1), 100);
        cache.add_vm(VmId(2), 50);
        let p1 = cache.create_pool(VmId(1), CachePolicy::mem(100));
        let p2 = cache.create_pool(VmId(2), CachePolicy::ssd(100));
        let mut epochs = vec![(VmId(1), 0u64), (VmId(2), 0u64)];
        for b in 0..40 {
            cache.put(SimTime::ZERO, VmId(1), p1, addr(1, b), PageVersion(1));
            cache.put(SimTime::ZERO, VmId(2), p2, addr(2, b), PageVersion(1));
        }
        for b in 0..10 {
            cache.get(SimTime::ZERO, VmId(1), p1, addr(1, b));
            epochs[1].1 = epochs[1].1.max(cache.flush(VmId(2), p2, addr(2, b)));
        }
        cache.set_mem_capacity(SimTime::ZERO, 48);
        epochs[0].1 = epochs[0].1.max(cache.flush(VmId(1), p1, addr(1, 39)));
        (cache, epochs)
    }

    #[test]
    fn recovery_from_full_image_is_exact() {
        let (cache, epochs) = journaled_fixture();
        let image = cache.journal_bytes().unwrap().to_vec();
        let (recovered, report) =
            DoubleDeckerCache::recover(cache.current_config(), &image, &epochs);
        assert_eq!(recovered.entries(), cache.entries(), "lossless replay");
        assert_eq!(report.discarded_stale, 0, "full image has no stale tail");
        assert_eq!(report.dropped_no_room, 0);
        assert!(!report.torn_tail && !report.corrupt);
        assert_eq!(report.recovered_entries as usize, recovered.entries().len());
        assert!(
            crate::audit(&recovered).is_empty(),
            "recovered cache audits clean"
        );
        // Recovered entries are usable through the normal data path.
        let (vm, pool, a, v) = recovered.entries()[0];
        let mut recovered = recovered;
        match recovered.get(SimTime::ZERO, vm, pool, a) {
            GetOutcome::Hit { version, .. } => assert_eq!(version, v),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn recovery_tolerates_torn_and_garbage_tails() {
        let (cache, epochs) = journaled_fixture();
        let image = cache.journal_bytes().unwrap().to_vec();
        let baseline = cache.entries();
        // Torn tail: chop the image mid-record.
        let torn = &image[..image.len() - 3];
        let (rec_torn, rep_torn) =
            DoubleDeckerCache::recover(cache.current_config(), torn, &epochs);
        assert!(rep_torn.torn_tail, "partial trailing record detected");
        assert!(crate::audit(&rec_torn).is_empty());
        // Garbage appended past the real records: replay stops there.
        let mut noisy = image.clone();
        noisy.extend_from_slice(&[0xAB; 40]);
        let (rec_noisy, rep_noisy) =
            DoubleDeckerCache::recover(cache.current_config(), &noisy, &epochs);
        assert!(rep_noisy.corrupt || rep_noisy.torn_tail);
        assert_eq!(
            rec_noisy.entries(),
            baseline,
            "garbage tail loses nothing real"
        );
        assert!(crate::audit(&rec_noisy).is_empty());
    }

    #[test]
    fn live_compaction_bounds_replay_after_long_runs() {
        let config = CacheConfig {
            mem_capacity_pages: 64,
            ssd_capacity_pages: 0,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        cache.enable_journal();
        let pool = cache.create_pool(VM, CachePolicy::mem(100));
        // A long steady workload over a tiny working set: history grows
        // without bound while live entries stay under the capacity, so
        // an uncompacted journal would accumulate ~30k records.
        let mut last_epoch = 0;
        for i in 0..20_000u64 {
            let a = addr(1, i % 32);
            cache.put(SimTime::ZERO, VM, pool, a, PageVersion(i));
            if i % 3 == 0 {
                cache.get(SimTime::ZERO, VM, pool, a);
            }
            if i % 7 == 0 {
                let e = cache.flush(VM, pool, a);
                assert!(e >= last_epoch, "flush epochs stay monotone");
                last_epoch = e;
            }
        }
        assert!(
            cache.journal_compactions() > 0,
            "a long run must trigger live compaction"
        );
        // Replay cost is bounded by the compaction threshold (plus one
        // op's worth of eviction records), not by history length.
        let records = cache.journal_records().unwrap();
        assert!(
            records <= 1200,
            "journal stays short after 30k+ appends, got {records}"
        );
        // A crash right now recovers from the short journal, loses
        // nothing, and honours the guest's pre-compaction flush epoch.
        let image = cache.journal_bytes().unwrap().to_vec();
        let (recovered, report) =
            DoubleDeckerCache::recover(cache.current_config(), &image, &[(VM, last_epoch)]);
        assert!(!report.torn_tail && !report.corrupt);
        assert!(report.records_replayed <= 1200);
        assert_eq!(report.discarded_stale, 0, "compaction never loses flushes");
        assert_eq!(
            recovered.entries(),
            cache.entries(),
            "state survives intact"
        );
        assert!(crate::audit(&recovered).is_empty());
    }

    #[test]
    fn epoch_discard_drops_entry_covered_by_lost_flush() {
        let config = CacheConfig {
            mem_capacity_pages: 16,
            ssd_capacity_pages: 0,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        cache.enable_journal();
        cache.add_vm(VmId(1), 100);
        let p = cache.create_pool(VmId(1), CachePolicy::mem(100));
        let a = addr(7, 0);
        cache.put(SimTime::ZERO, VmId(1), p, a, PageVersion(1));
        // Sync the journal so the v1 put is durable (flush of an absent
        // block still logs + syncs).
        cache.flush(VmId(1), p, addr(9, 9));
        let durable = cache.journal_durable_len().unwrap();
        // The guest now overwrites the block: its invalidating flush is
        // acknowledged (epoch advances), but the crash cuts the journal
        // before that flush record — the classic lost-invalidation window.
        let epoch = cache.flush(VmId(1), p, a);
        assert!(epoch > 0);
        let image = cache.journal_bytes().unwrap()[..durable].to_vec();
        let (recovered, report) =
            DoubleDeckerCache::recover(cache.current_config(), &image, &[(VmId(1), epoch)]);
        assert_eq!(report.discarded_stale, 1, "stale v1 copy dropped by epoch");
        assert!(recovered.entries().is_empty());
        assert!(crate::audit(&recovered).is_empty());
        // Without the guest epoch the stale copy WOULD be replayed — the
        // discard is doing real work above.
        let (naive, _) = DoubleDeckerCache::recover(cache.current_config(), &image, &[]);
        assert_eq!(naive.entries().len(), 1);
    }

    #[test]
    fn recovery_checkpoint_supports_second_recovery() {
        let (cache, epochs) = journaled_fixture();
        let image = cache.journal_bytes().unwrap().to_vec();
        let (first, report) = DoubleDeckerCache::recover(cache.current_config(), &image, &epochs);
        // The recovered cache re-journals its state as a checkpoint; a
        // second crash straight after recovers the same contents.
        let checkpoint = first.journal_bytes().unwrap().to_vec();
        assert!(
            checkpoint.len() < image.len(),
            "checkpoint compacts history"
        );
        let (second, rep2) =
            DoubleDeckerCache::recover(first.current_config(), &checkpoint, &report.new_epochs);
        assert_eq!(second.entries(), first.entries());
        assert_eq!(
            rep2.discarded_stale, 0,
            "checkpoint gens outrun every epoch"
        );
        assert!(crate::audit(&second).is_empty());
        // New epochs cover every VM so guests can be re-armed.
        let vms: Vec<VmId> = report.new_epochs.iter().map(|&(vm, _)| vm).collect();
        assert!(vms.contains(&VmId(1)) && vms.contains(&VmId(2)));
    }

    #[test]
    fn recovery_from_every_prefix_never_serves_stale() {
        use ddc_sim::SimRng;
        use std::collections::BTreeMap;
        let config = CacheConfig {
            mem_capacity_pages: 24,
            ssd_capacity_pages: 24,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        };
        let mut cache = DoubleDeckerCache::new(config);
        cache.enable_journal();
        cache.add_vm(VmId(1), 100);
        let pm = cache.create_pool(VmId(1), CachePolicy::mem(100));
        let ps = cache.create_pool(VmId(1), CachePolicy::ssd(100));
        // Ground truth a guest would hold: the authoritative version of
        // every block, and the highest acknowledged flush epoch.
        let mut disk: BTreeMap<BlockAddr, u64> = BTreeMap::new();
        let mut epoch = 0u64;
        let mut rng = SimRng::new(0xC4A5);
        for _ in 0..400 {
            let a = addr(rng.range_u64(1, 4), rng.range_u64(0, 16));
            // One owning pool per block — the guest keeps second-chance
            // copies exclusive, so the op stream must too.
            let p = if a.block.is_multiple_of(2) { pm } else { ps };
            match rng.range_u64(0, 10) {
                // Reclaim: put the current clean version.
                0..=4 => {
                    let v = disk.get(&a).copied().unwrap_or(0);
                    cache.put(SimTime::ZERO, VmId(1), p, a, PageVersion(v));
                }
                5..=6 => {
                    cache.get(SimTime::ZERO, VmId(1), p, a);
                }
                // Overwrite: bump the disk version, invalidate both pools
                // (a guest flushes every pool of the VM on write).
                _ => {
                    *disk.entry(a).or_insert(0) += 1;
                    epoch = epoch.max(cache.flush(VmId(1), pm, a));
                    epoch = epoch.max(cache.flush(VmId(1), ps, a));
                }
            }
        }
        let image = cache.journal_bytes().unwrap().to_vec();
        let cuts = ddc_storage::Journal::record_boundaries(&image);
        assert!(cuts.len() > 400, "one boundary per record");
        // Sample prefixes (every 13th boundary plus the extremes) and a
        // torn variant of each; recovery must never resurrect a version
        // older than the disk's.
        let mut sampled = 0;
        for (i, &cut) in cuts.iter().enumerate() {
            if i % 13 != 0 && i + 1 != cuts.len() {
                continue;
            }
            sampled += 1;
            for torn in [false, true] {
                let end = if torn { cut.saturating_sub(2) } else { cut };
                let (recovered, _) = DoubleDeckerCache::recover(
                    cache.current_config(),
                    &image[..end],
                    &[(VmId(1), epoch)],
                );
                for (_, _, a, v) in recovered.entries() {
                    let truth = disk.get(&a).copied().unwrap_or(0);
                    assert_eq!(v.0, truth, "stale {a} recovered at cut {cut} torn={torn}");
                }
                let findings = crate::audit(&recovered);
                assert!(findings.is_empty(), "cut {cut} torn={torn}: {findings:?}");
            }
        }
        assert!(sampled >= 30, "swept enough crash points ({sampled})");
    }
}
