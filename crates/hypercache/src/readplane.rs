//! The lock-free read plane: a seqlock-guarded membership table over one
//! shard's pools.
//!
//! The concurrent assembly in `ddc-concurrent` is an *exclusive* cache:
//! a `get` that hits must remove the object, so the hit path inherently
//! needs the shard lock. The miss path does not — and in a read-heavy
//! cleancache workload the steady state is mostly misses, because every
//! hit consumes its entry. [`ReadPlane`] makes that miss path lock-free:
//! it mirrors the exact membership (the set of live `(vm, pool, addr)`
//! keys) of every pool homed on one shard into a fixed-capacity
//! open-addressing table of plain atomics, guarded by a per-shard
//! seqlock word. A reader that probes the table under an even, unchanged
//! sequence has seen a consistent snapshot; an absent key is then a
//! definitive miss, served without ever touching the shard mutex.
//!
//! # Why a type-stable atomic table (and not a raw seqlock over the slab)
//!
//! The workspace forbids `unsafe`, and a seqlock over the slab arena's
//! `Vec`/`FxHashMap` memory would race with reallocation. The table here
//! never reallocates and every word is an `AtomicU64`, so torn *words*
//! are impossible by construction and torn *entries* (a key half-written
//! across its three words) are caught by the sequence check. Reclamation
//! is equally structural: buckets are never freed, only overwritten
//! between odd/even sequence bumps, so no reader can ever observe
//! recycled memory — the epoch/generation validation the design calls
//! for degenerates to the seqlock itself.
//!
//! # Protocol
//!
//! *Writers* (always under the owning shard's mutex, hence serialized):
//! bump the sequence word to odd, mutate bucket words, bump back to
//! even. The word is even whenever the shard is at rest — the invariant
//! auditor checks exactly that.
//!
//! *Readers*: load the word (odd → a writer is mid-flight, retry), probe
//! the table, load the word again; any change means the snapshot may be
//! torn and the probe retries. After a bounded number of retries the
//! caller falls back to the locked path, so writer storms can delay but
//! never starve a reader.
//!
//! The sequence word doubles as the shard's membership version: it
//! advances on every membership change, so a cached absent-answer
//! stamped with the word is valid for exactly as long as the word holds
//! still. The per-thread hot-replica caches in `ddc-concurrent` are
//! built on that reading.
//!
//! # Exactness and overflow
//!
//! A lock-free absent answer is only sound if the table holds *exactly*
//! the live key set — a key missing from the table would turn into a
//! spurious miss and break the byte-identical-to-serial contract. The
//! pool funnels (`insert`/`release`/`drain`) keep the table exact. When
//! the table cannot accept another key (capacity pressure), it latches a
//! sticky `overflow` flag instead of dropping one: every subsequent
//! lookup answers [`ReadProbe::Unavailable`] and the shard permanently
//! degrades to locked gets. Correctness never depends on sizing;
//! only throughput does.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};

use ddc_cleancache::{PoolId, VmId};
use ddc_storage::BlockAddr;

/// Bucket key word meaning "never used".
const EMPTY: u64 = u64::MAX;
/// Bucket key word meaning "erased; probes continue past it".
const TOMBSTONE: u64 = u64::MAX - 1;

/// Lock-free probe attempts before a reader gives up on a consistent
/// snapshot and takes the locked path.
const MAX_READ_RETRIES: u32 = 8;

/// One open-addressing bucket: the packed `(vm, pool)` key word (also
/// the empty/tombstone sentinel) plus the block address words.
#[derive(Debug)]
struct Bucket {
    key: AtomicU64,
    file: AtomicU64,
    block: AtomicU64,
}

impl Bucket {
    fn new() -> Bucket {
        Bucket {
            key: AtomicU64::new(EMPTY),
            file: AtomicU64::new(0),
            block: AtomicU64::new(0),
        }
    }
}

/// Result of a lock-free membership probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadProbe {
    /// The key is live on this shard; the caller must take the shard
    /// lock to consume it (exclusive-cache hits mutate).
    Present,
    /// The key is definitively absent, as of the consistent snapshot
    /// identified by `stamp` (the sequence word both loads agreed on).
    Absent {
        /// Sequence word of the validated snapshot; the answer stays
        /// correct for exactly as long as [`ReadPlane::seq`] equals it.
        stamp: u64,
    },
    /// No consistent lock-free answer (table overflowed, retry budget
    /// spent, or the key is outside the packable id range); take the
    /// locked path.
    Unavailable,
}

/// The per-shard lock-free membership table (see the module docs).
pub struct ReadPlane {
    /// The seqlock word: even at rest, odd while a writer mutates.
    seq: AtomicU64,
    /// Sticky capacity-overflow latch; disables the lock-free path.
    overflow: AtomicBool,
    /// Reader snapshot retries (diagnostic; bumped only on retry).
    retries: AtomicU64,
    /// Live keys currently in the table.
    live: AtomicU64,
    /// Buckets ever moved off `EMPTY` (live + tombstones). Monotone;
    /// the overflow guard keeps it below the table's load limit so
    /// absent probes stay short.
    stamped: AtomicU64,
    buckets: Box<[Bucket]>,
    mask: u64,
}

impl std::fmt::Debug for ReadPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadPlane")
            .field("capacity", &self.buckets.len())
            .field("live", &self.live.load(Ordering::Relaxed))
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("overflow", &self.overflow.load(Ordering::Relaxed))
            .finish()
    }
}

/// Packs a `(vm, pool)` pair into one key word. Values at or above
/// [`TOMBSTONE`] collide with the sentinels and are reported as
/// unpackable (such keys simply never use the lock-free path).
fn pack(vm: VmId, pool: PoolId) -> Option<u64> {
    let packed = (u64::from(vm.0) << 32) | u64::from(pool.0);
    (packed < TOMBSTONE).then_some(packed)
}

/// Seed-free multiply-xor mix of the full key, in the same spirit as the
/// crate's other internal hashes (no flooding exposure: ids and block
/// addresses are internal).
fn mix(packed: u64, addr: BlockAddr) -> u64 {
    let mut h = packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= addr
        .file
        .0
        .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        .rotate_left(29);
    h ^= addr
        .block
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .rotate_left(47);
    h.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
}

impl ReadPlane {
    /// Creates a plane sized for roughly `expected_live` resident keys:
    /// the table gets the next power of two above 4× that (64 minimum),
    /// so steady-state load stays low and absent probes short.
    pub fn with_capacity(expected_live: u64) -> ReadPlane {
        let slots = expected_live
            .saturating_mul(4)
            .max(64)
            .next_power_of_two()
            .min(1 << 24) as usize;
        ReadPlane {
            seq: AtomicU64::new(0),
            overflow: AtomicBool::new(false),
            retries: AtomicU64::new(0),
            live: AtomicU64::new(0),
            stamped: AtomicU64::new(0),
            buckets: (0..slots).map(|_| Bucket::new()).collect(),
            mask: (slots - 1) as u64,
        }
    }

    /// The current sequence word (even at rest). Doubles as the shard's
    /// membership version for replica invalidation.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Whether the table latched the overflow flag (lock-free reads
    /// permanently disabled on this shard).
    pub fn overflowed(&self) -> bool {
        self.overflow.load(Ordering::Acquire)
    }

    /// Reader snapshot retries so far (diagnostic).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Live keys currently published.
    pub fn live_len(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Table slots (diagnostic).
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    fn begin_write(&self) {
        // Writers are serialized by the shard mutex; the bump just has
        // to be visible-before the bucket stores.
        self.seq.fetch_add(1, Ordering::AcqRel);
    }

    fn end_write(&self) {
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Publishes a key. Must be called under the owning shard's lock.
    /// Idempotent for keys already present. Latches overflow instead of
    /// dropping the key when the table is too full.
    pub fn publish(&self, vm: VmId, pool: PoolId, addr: BlockAddr) {
        if self.overflowed() {
            return;
        }
        let Some(packed) = pack(vm, pool) else {
            // Unpackable keys would make absent answers unsound for the
            // whole shard if silently skipped — disable the fast path.
            self.overflow.store(true, Ordering::Release);
            return;
        };
        let mut idx = mix(packed, addr) & self.mask;
        let mut reuse: Option<u64> = None;
        for _ in 0..self.buckets.len() {
            let b = &self.buckets[idx as usize];
            match b.key.load(Ordering::Relaxed) {
                EMPTY => {
                    let target = match reuse {
                        Some(t) => t,
                        None => {
                            // Converting an EMPTY: respect the load
                            // limit so probe chains stay bounded.
                            let limit = (self.buckets.len() as u64 / 8) * 7;
                            if self.stamped.fetch_add(1, Ordering::Relaxed) >= limit {
                                self.overflow.store(true, Ordering::Release);
                                return;
                            }
                            idx
                        }
                    };
                    let t = &self.buckets[target as usize];
                    self.begin_write();
                    t.file.store(addr.file.0, Ordering::Release);
                    t.block.store(addr.block, Ordering::Release);
                    t.key.store(packed, Ordering::Release);
                    self.end_write();
                    self.live.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                TOMBSTONE if reuse.is_none() => reuse = Some(idx),
                k if k == packed => {
                    let b_file = b.file.load(Ordering::Relaxed);
                    let b_block = b.block.load(Ordering::Relaxed);
                    if b_file == addr.file.0 && b_block == addr.block {
                        return; // already published
                    }
                }
                _ => {}
            }
            idx = (idx + 1) & self.mask;
        }
        // Probed the whole table without an empty slot.
        match reuse {
            Some(target) => {
                let t = &self.buckets[target as usize];
                self.begin_write();
                t.file.store(addr.file.0, Ordering::Release);
                t.block.store(addr.block, Ordering::Release);
                t.key.store(packed, Ordering::Release);
                self.end_write();
                self.live.fetch_add(1, Ordering::Relaxed);
            }
            None => self.overflow.store(true, Ordering::Release),
        }
    }

    /// Erases a key (leaves a tombstone so probe chains stay intact).
    /// Must be called under the owning shard's lock.
    pub fn erase(&self, vm: VmId, pool: PoolId, addr: BlockAddr) {
        if self.overflowed() {
            return;
        }
        let Some(packed) = pack(vm, pool) else {
            return;
        };
        let mut idx = mix(packed, addr) & self.mask;
        for _ in 0..self.buckets.len() {
            let b = &self.buckets[idx as usize];
            match b.key.load(Ordering::Relaxed) {
                EMPTY => return,
                k if k == packed => {
                    let b_file = b.file.load(Ordering::Relaxed);
                    let b_block = b.block.load(Ordering::Relaxed);
                    if b_file == addr.file.0 && b_block == addr.block {
                        self.begin_write();
                        b.key.store(TOMBSTONE, Ordering::Release);
                        self.end_write();
                        self.live.fetch_sub(1, Ordering::Relaxed);
                        return;
                    }
                }
                _ => {}
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Erases every key of one pool (pool drain / destroy). One
    /// odd/even window covers the whole sweep. Must be called under the
    /// owning shard's lock.
    pub fn erase_pool(&self, vm: VmId, pool: PoolId) {
        if self.overflowed() {
            return;
        }
        let Some(packed) = pack(vm, pool) else {
            return;
        };
        self.begin_write();
        let mut erased = 0;
        for b in self.buckets.iter() {
            if b.key.load(Ordering::Relaxed) == packed {
                b.key.store(TOMBSTONE, Ordering::Release);
                erased += 1;
            }
        }
        self.end_write();
        self.live.fetch_sub(erased, Ordering::Relaxed);
    }

    /// Lock-free membership probe. `mid_read` runs between the first
    /// sequence load and the table walk on every attempt — production
    /// callers pass a no-op; tests inject writers there to force torn
    /// snapshots.
    pub fn lookup(
        &self,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        mid_read: impl Fn(),
    ) -> ReadProbe {
        if self.overflowed() {
            return ReadProbe::Unavailable;
        }
        let Some(packed) = pack(vm, pool) else {
            return ReadProbe::Unavailable;
        };
        let start = mix(packed, addr) & self.mask;
        for attempt in 0..MAX_READ_RETRIES {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            mid_read();
            let mut idx = start;
            let mut found = false;
            let mut walked_all = true;
            for _ in 0..self.buckets.len() {
                let b = &self.buckets[idx as usize];
                match b.key.load(Ordering::Acquire) {
                    EMPTY => {
                        walked_all = false;
                        break;
                    }
                    k if k == packed => {
                        let b_file = b.file.load(Ordering::Acquire);
                        let b_block = b.block.load(Ordering::Acquire);
                        if b_file == addr.file.0 && b_block == addr.block {
                            found = true;
                            walked_all = false;
                            break;
                        }
                    }
                    _ => {}
                }
                idx = (idx + 1) & self.mask;
            }
            // Pin the bucket loads before the validating sequence load.
            fence(Ordering::Acquire);
            let s2 = self.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // torn snapshot; retry
            }
            if walked_all {
                // No EMPTY terminator found — the load limit should
                // prevent this, but never trust an unbounded walk.
                return ReadProbe::Unavailable;
            }
            return if found {
                ReadProbe::Present
            } else {
                ReadProbe::Absent { stamp: s1 }
            };
        }
        ReadProbe::Unavailable
    }

    /// Every live key in the table (auditor use; caller must hold the
    /// owning shard's lock so the snapshot is exact).
    pub fn entries(&self) -> Vec<(VmId, PoolId, BlockAddr)> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let key = b.key.load(Ordering::Relaxed);
            if key == EMPTY || key == TOMBSTONE {
                continue;
            }
            out.push((
                VmId((key >> 32) as u32),
                PoolId(key as u32),
                BlockAddr::new(
                    ddc_storage::FileId(b.file.load(Ordering::Relaxed)),
                    b.block.load(Ordering::Relaxed),
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_storage::FileId;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    fn probe(p: &ReadPlane, vm: u32, pool: u32, a: BlockAddr) -> ReadProbe {
        p.lookup(VmId(vm), PoolId(pool), a, || {})
    }

    #[test]
    fn publish_erase_roundtrip() {
        let p = ReadPlane::with_capacity(16);
        assert!(matches!(
            probe(&p, 1, 2, addr(3, 4)),
            ReadProbe::Absent { .. }
        ));
        p.publish(VmId(1), PoolId(2), addr(3, 4));
        assert_eq!(probe(&p, 1, 2, addr(3, 4)), ReadProbe::Present);
        assert!(matches!(
            probe(&p, 1, 2, addr(3, 5)),
            ReadProbe::Absent { .. }
        ));
        assert!(matches!(
            probe(&p, 1, 3, addr(3, 4)),
            ReadProbe::Absent { .. }
        ));
        p.erase(VmId(1), PoolId(2), addr(3, 4));
        assert!(matches!(
            probe(&p, 1, 2, addr(3, 4)),
            ReadProbe::Absent { .. }
        ));
        assert_eq!(p.live_len(), 0);
    }

    #[test]
    fn seq_is_even_at_rest_and_advances_per_mutation() {
        let p = ReadPlane::with_capacity(16);
        let s0 = p.seq();
        assert_eq!(s0 & 1, 0);
        p.publish(VmId(1), PoolId(1), addr(0, 0));
        let s1 = p.seq();
        assert_eq!(s1 & 1, 0);
        assert!(s1 > s0);
        // Idempotent republish: membership unchanged, word unchanged.
        p.publish(VmId(1), PoolId(1), addr(0, 0));
        assert_eq!(p.seq(), s1);
        p.erase(VmId(1), PoolId(1), addr(0, 0));
        assert!(p.seq() > s1);
        assert_eq!(p.seq() & 1, 0);
    }

    #[test]
    fn absent_stamp_validates_membership_version() {
        let p = ReadPlane::with_capacity(16);
        let ReadProbe::Absent { stamp } = probe(&p, 1, 1, addr(9, 9)) else {
            panic!("expected absent");
        };
        assert_eq!(p.seq(), stamp);
        p.publish(VmId(1), PoolId(1), addr(9, 9));
        assert_ne!(p.seq(), stamp, "publish must invalidate the stamp");
    }

    #[test]
    fn erase_pool_sweeps_only_that_pool() {
        let p = ReadPlane::with_capacity(16);
        for b in 0..8 {
            p.publish(VmId(1), PoolId(1), addr(0, b));
            p.publish(VmId(1), PoolId(2), addr(0, b));
        }
        assert_eq!(p.live_len(), 16);
        p.erase_pool(VmId(1), PoolId(1));
        assert_eq!(p.live_len(), 8);
        assert!(matches!(
            probe(&p, 1, 1, addr(0, 3)),
            ReadProbe::Absent { .. }
        ));
        assert_eq!(probe(&p, 1, 2, addr(0, 3)), ReadProbe::Present);
    }

    #[test]
    fn tombstones_are_reused_and_probe_chains_survive() {
        let p = ReadPlane::with_capacity(16);
        // Hammer one key through publish/erase cycles: tombstone reuse
        // must keep the table from monotonically filling.
        for i in 0..10_000u64 {
            p.publish(VmId(1), PoolId(1), addr(1, i % 8));
            p.erase(VmId(1), PoolId(1), addr(1, i % 8));
        }
        assert!(!p.overflowed(), "tombstone reuse failed: table filled");
        assert_eq!(p.live_len(), 0);
        p.publish(VmId(1), PoolId(1), addr(1, 1));
        assert_eq!(probe(&p, 1, 1, addr(1, 1)), ReadProbe::Present);
    }

    #[test]
    fn overflow_latches_and_degrades_to_unavailable() {
        let p = ReadPlane::with_capacity(0); // 64 slots, limit 56
        let mut i = 0;
        while !p.overflowed() {
            p.publish(VmId(1), PoolId(1), addr(2, i));
            i += 1;
            assert!(i < 1_000, "overflow never latched");
        }
        assert_eq!(probe(&p, 1, 1, addr(2, 0)), ReadProbe::Unavailable);
        assert_eq!(probe(&p, 1, 1, addr(99, 99)), ReadProbe::Unavailable);
    }

    #[test]
    fn torn_snapshot_is_retried_not_served() {
        let p = ReadPlane::with_capacity(16);
        p.publish(VmId(1), PoolId(1), addr(5, 5));
        // Simulate a writer racing the read: the mid-read hook mutates
        // membership, so the first attempt's snapshot is torn and must
        // be retried (the final answer reflects some consistent state).
        let fired = std::sync::atomic::AtomicBool::new(false);
        let out = p.lookup(VmId(1), PoolId(1), addr(6, 6), || {
            if !fired.swap(true, Ordering::Relaxed) {
                p.publish(VmId(1), PoolId(1), addr(6, 6));
            }
        });
        assert_eq!(out, ReadProbe::Present);
        assert!(p.retries() > 0, "mid-read mutation must force a retry");
    }

    #[test]
    fn entries_lists_live_set() {
        let p = ReadPlane::with_capacity(16);
        p.publish(VmId(1), PoolId(1), addr(1, 2));
        p.publish(VmId(2), PoolId(7), addr(3, 4));
        p.erase(VmId(1), PoolId(1), addr(1, 2));
        let mut got = p.entries();
        got.sort_unstable();
        assert_eq!(got, vec![(VmId(2), PoolId(7), addr(3, 4))]);
    }
}
