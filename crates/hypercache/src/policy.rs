//! The policy module: entitlements and Algorithm 1 victim selection.
//!
//! Entitlements are derived by applying relative weights at each level
//! (paper §3): a VM's entitlement is its weight share of the store
//! capacity; a container's entitlement is its weight share of its VM's
//! entitlement, computed among the containers of that VM assigned to the
//! same store.
//!
//! Victim selection follows the paper's Algorithm 1 exactly: among the
//! entities that would be over their entitlement after the pending store,
//! pick the one with the largest *exceed* value after redistributing the
//! unused entitlement of underused entities proportionally to the weights
//! of the overused ones.

/// The usage snapshot of one cache-consuming entity (a VM at the top
/// level, a container within a VM) fed to [`select_victim`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EntityUsage {
    /// Pages the entity is entitled to (weight share of capacity).
    pub entitlement: u64,
    /// Pages the entity currently occupies in the store.
    pub used: u64,
    /// The entity's configured weight.
    pub weight: u64,
}

impl EntityUsage {
    /// Creates a usage snapshot.
    pub fn new(entitlement: u64, used: u64, weight: u64) -> EntityUsage {
        EntityUsage {
            entitlement,
            used,
            weight,
        }
    }
}

/// The paper's `exceed` function (equation 1):
///
/// `exceed(E, b, cw) = E.used + EvictionSize − (E.entitlement + b × E.weight / cw)`
///
/// where `b` is the total underused buffer and `cw` the cumulative weight
/// of the overused entities. Returned as `f64` because the redistribution
/// term is fractional; negative values mean the entity would still be
/// within its effective entitlement.
pub fn exceed(
    entity: EntityUsage,
    eviction_size: u64,
    underused_buf: u64,
    cuml_weight: u64,
) -> f64 {
    let redistributed = if cuml_weight == 0 {
        0.0
    } else {
        underused_buf as f64 * entity.weight as f64 / cuml_weight as f64
    };
    (entity.used as f64 + eviction_size as f64) - (entity.entitlement as f64 + redistributed)
}

/// Algorithm 1: selects the victim entity for an eviction of
/// `eviction_size` pages. Returns the index into `entities` of the victim,
/// or `None` when no entity is over its effective limit (no eviction is
/// required) or the list is empty.
///
/// Deviations from the pseudocode: none in logic; ties on the maximal
/// exceed value resolve to the first (lowest-index) entity, matching the
/// pseudocode's strict `<` comparison.
pub fn select_victim(entities: &[EntityUsage], eviction_size: u64) -> Option<usize> {
    select_victim_inner(entities, eviction_size, true)
}

/// Variant of [`select_victim`] with slack redistribution disabled: the
/// underused buffer is treated as zero, so an entity's effective
/// entitlement is exactly its configured share. Models strictly
/// partitioned (Morai-style) caches used as a comparator in the paper's
/// §5.2.
pub fn select_victim_strict(entities: &[EntityUsage], eviction_size: u64) -> Option<usize> {
    select_victim_inner(entities, eviction_size, false)
}

fn select_victim_inner(
    entities: &[EntityUsage],
    eviction_size: u64,
    redistribute: bool,
) -> Option<usize> {
    let mut overused: Vec<usize> = Vec::new();
    let mut cuml_weight: u64 = 0;
    let mut underused_buf: u64 = 0;

    for (i, e) in entities.iter().enumerate() {
        if e.entitlement < e.used + eviction_size {
            overused.push(i);
            cuml_weight += e.weight;
        }
        if redistribute && e.entitlement.saturating_sub(e.used) > 2 * eviction_size {
            underused_buf += e.entitlement - e.used;
        }
    }

    let mut best = *overused.first()?;
    let mut best_exceed = exceed(entities[best], eviction_size, underused_buf, cuml_weight);
    for &i in overused.iter().skip(1) {
        let v = exceed(entities[i], eviction_size, underused_buf, cuml_weight);
        if v > best_exceed {
            best = i;
            best_exceed = v;
        }
    }
    Some(best)
}

/// Splits `capacity` into entitlements proportional to `weights`.
/// Zero-weight entities get zero; rounding remainders go to the
/// largest-weight entities first so the shares always sum to `capacity`
/// when any weight is positive.
pub fn entitlements(capacity: u64, weights: &[u64]) -> Vec<u64> {
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return vec![0; weights.len()];
    }
    let mut shares: Vec<u64> = weights
        .iter()
        .map(|&w| (capacity as u128 * w as u128 / total as u128) as u64)
        .collect();
    let assigned: u64 = shares.iter().sum();
    let mut remainder = capacity - assigned;
    // Distribute the remainder by descending weight, stable by index.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut k = 0;
    while remainder > 0 && !order.is_empty() {
        let i = order[k % order.len()];
        if weights[i] > 0 {
            shares[i] += 1;
            remainder -= 1;
        }
        k += 1;
        if k > weights.len() * 2 && remainder > 0 {
            // All weights zero was handled above; this is unreachable, but
            // guard against infinite loops on adversarial inputs.
            shares[order[0]] += remainder;
            break;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(entitlement: u64, used: u64, weight: u64) -> EntityUsage {
        EntityUsage::new(entitlement, used, weight)
    }

    #[test]
    fn empty_entity_list() {
        assert_eq!(select_victim(&[], 512), None);
    }

    #[test]
    fn no_overuse_no_victim() {
        let entities = [e(1000, 100, 50), e(1000, 200, 50)];
        assert_eq!(select_victim(&entities, 512), None);
    }

    #[test]
    fn single_overused_entity_is_victim() {
        let entities = [e(1000, 995, 50), e(1000, 100, 50)];
        assert_eq!(select_victim(&entities, 512), Some(0));
    }

    #[test]
    fn most_exceeding_entity_wins() {
        // Both over; the second exceeds by more.
        let entities = [e(1000, 1100, 50), e(1000, 1500, 50)];
        assert_eq!(select_victim(&entities, 512), Some(1));
    }

    #[test]
    fn redistribution_protects_heavier_weights() {
        // Two entities over their entitlement by the same amount, one
        // underused entity donating slack. The heavier-weight entity
        // receives more redistributed slack, so the lighter one has the
        // higher exceed value and is selected.
        let entities = [
            e(1000, 1400, 10), // light, over by 400
            e(1000, 1400, 90), // heavy, over by 400
            e(5000, 0, 50),    // underused donor (slack 5000 > 2*512)
        ];
        assert_eq!(select_victim(&entities, 512), Some(0));
    }

    #[test]
    fn small_slack_is_not_donated() {
        // Underused by less than 2 * eviction_size: not counted as slack.
        let eviction = 512;
        let entities = [
            e(1000, 1400, 50),
            e(1000, 900, 50), // under, but slack 100 < 1024
        ];
        // Only entity 0 is overused; victim regardless, but verify the
        // exceed math excludes the small slack.
        let v = exceed(entities[0], eviction, 0, 50);
        assert_eq!(v, 1400.0 + 512.0 - 1000.0);
        assert_eq!(select_victim(&entities, eviction), Some(0));
    }

    #[test]
    fn near_full_entity_counts_as_overused() {
        // entitlement >= used but entitlement < used + eviction_size:
        // the pending batch would push it over, so it is eviction-eligible.
        let entities = [e(1000, 900, 50), e(4000, 100, 50)];
        assert_eq!(select_victim(&entities, 512), Some(0));
    }

    #[test]
    fn tie_breaks_to_first() {
        let entities = [e(1000, 1200, 50), e(1000, 1200, 50)];
        assert_eq!(select_victim(&entities, 512), Some(0));
    }

    #[test]
    fn zero_weight_overused_entity() {
        // A zero-weight entity gets no redistribution and should be the
        // preferred victim over an equally-overused weighted entity.
        let entities = [
            e(0, 600, 0), // zero entitlement, zero weight
            e(1000, 1600, 100),
            e(5000, 0, 100), // donor
        ];
        // Overused = {0, 1}; cw = 0 + 100; b = 5000. The zero-weight
        // entity receives no redistributed slack, so it exceeds the most.
        let v = select_victim(&entities, 512);
        assert_eq!(v, Some(0));
        let cw = 100;
        let b = 5000;
        assert!(exceed(entities[0], 512, b, cw) > exceed(entities[1], 512, b, cw));
    }

    #[test]
    fn zero_weight_entity_actually_selected() {
        let entities = [e(0, 600, 0), e(1000, 1600, 100), e(5000, 0, 100)];
        // Recompute by hand: overused = {0, 1}, cw = 100, b = 5000.
        // exceed(0) = 600 + 512 - 0 - 0      = 1112
        // exceed(1) = 1600 + 512 - 1000 - 5000 = -3888
        assert_eq!(select_victim(&entities, 512), Some(0));
    }

    #[test]
    fn exceed_with_zero_cuml_weight_has_no_redistribution() {
        let v = exceed(e(100, 200, 10), 50, 1000, 0);
        assert_eq!(v, 200.0 + 50.0 - 100.0);
    }

    #[test]
    fn entitlements_sum_to_capacity() {
        for (cap, weights) in [
            (1000u64, vec![1u64, 1, 1]),
            (1024, vec![33, 67]),
            (999, vec![25, 75, 100]),
            (262_144, vec![40, 30, 30]),
            (7, vec![3, 3, 3]),
        ] {
            let shares = entitlements(cap, &weights);
            assert_eq!(shares.iter().sum::<u64>(), cap, "weights {weights:?}");
        }
    }

    #[test]
    fn entitlements_proportional() {
        let shares = entitlements(300, &[100, 200]);
        assert_eq!(shares, vec![100, 200]);
        let shares = entitlements(1000, &[60, 40]);
        assert_eq!(shares, vec![600, 400]);
    }

    #[test]
    fn entitlements_zero_weights() {
        assert_eq!(entitlements(1000, &[0, 0]), vec![0, 0]);
        assert_eq!(entitlements(1000, &[]), Vec::<u64>::new());
        let shares = entitlements(1000, &[0, 100]);
        assert_eq!(shares, vec![0, 1000]);
    }

    #[test]
    fn entitlements_remainder_goes_to_heaviest() {
        // 10 pages over weights 1,1,1: 3 each, remainder 1 to one of them.
        let shares = entitlements(10, &[1, 1, 1]);
        assert_eq!(shares.iter().sum::<u64>(), 10);
        assert!(shares.iter().all(|&s| s == 3 || s == 4));
    }

    /// Seeded randomized cases (in-tree replacement for proptest, which
    /// is unavailable offline): deterministic, broad coverage.
    mod randomized {
        use super::*;
        use ddc_sim::SimRng;

        fn gen_entities(rng: &mut SimRng, lo: usize, hi: usize) -> Vec<EntityUsage> {
            (0..rng.range_usize(lo, hi))
                .map(|_| {
                    EntityUsage::new(
                        rng.range_u64(0, 10_000),
                        rng.range_u64(0, 10_000),
                        rng.range_u64(0, 100),
                    )
                })
                .collect()
        }

        #[test]
        fn entitlements_always_sum_to_capacity() {
            let mut rng = SimRng::new(0xB120);
            for case in 0..500 {
                let mut r = rng.fork(case);
                let cap = r.range_u64(0, 1_000_000);
                let weights: Vec<u64> = (0..r.range_usize(0, 8))
                    .map(|_| r.range_u64(0, 1000))
                    .collect();
                let shares = entitlements(cap, &weights);
                assert_eq!(shares.len(), weights.len());
                if weights.iter().sum::<u64>() == 0 {
                    assert!(shares.iter().all(|&s| s == 0));
                } else {
                    assert_eq!(shares.iter().sum::<u64>(), cap);
                }
            }
        }

        #[test]
        fn zero_weight_gets_zero_share() {
            let mut rng = SimRng::new(0xB121);
            for case in 0..500 {
                let mut r = rng.fork(case);
                let cap = r.range_u64(1, 1_000_000);
                let w = r.range_u64(1, 1000);
                let shares = entitlements(cap, &[0, w, 0]);
                assert_eq!(shares[0], 0);
                assert_eq!(shares[2], 0);
                assert_eq!(shares[1], cap);
            }
        }

        #[test]
        fn victim_is_always_overused() {
            let mut rng = SimRng::new(0xB122);
            for case in 0..500 {
                let mut r = rng.fork(case);
                let entities = gen_entities(&mut r, 0, 10);
                let eviction = r.range_u64(1, 2048);
                if let Some(idx) = select_victim(&entities, eviction) {
                    let v = entities[idx];
                    assert!(
                        v.entitlement < v.used + eviction,
                        "victim must be in the overused list"
                    );
                } else {
                    // No victim => nobody is over the limit.
                    for e in &entities {
                        assert!(e.entitlement >= e.used + eviction);
                    }
                }
            }
        }

        #[test]
        fn victim_maximizes_exceed() {
            let mut rng = SimRng::new(0xB123);
            for case in 0..500 {
                let mut r = rng.fork(case);
                let entities = gen_entities(&mut r, 1, 10);
                let eviction = r.range_u64(1, 2048);
                if let Some(idx) = select_victim(&entities, eviction) {
                    // Recompute b and cw independently.
                    let mut cw = 0u64;
                    let mut b = 0u64;
                    for e in &entities {
                        if e.entitlement < e.used + eviction {
                            cw += e.weight;
                        }
                        if e.entitlement.saturating_sub(e.used) > 2 * eviction {
                            b += e.entitlement - e.used;
                        }
                    }
                    let chosen = exceed(entities[idx], eviction, b, cw);
                    for e in entities.iter() {
                        if e.entitlement < e.used + eviction {
                            assert!(exceed(*e, eviction, b, cw) <= chosen + 1e-9);
                        }
                    }
                }
            }
        }
    }
}
