//! Selective SSD admission: the ghost filter and TTL demotion config.
//!
//! An exclusive second-chance cache spills *every* page evicted from the
//! memory tier to the SSD tier, which burns flash endurance on pages
//! that are touched once and never again (scan pollution). Following
//! the admission-control line of work around the paper (ECI-Cache,
//! ETICA — see PAPERS.md), the spill path is gated by a **ghost
//! filter**: a spilled page is admitted to the SSD tier only on its
//! *second* spill attempt within a sliding window of recent attempts.
//! The first attempt records the address in a ghost table (no data is
//! written) and the page falls through fail-open — dropped from the
//! cache, exactly as if the SSD tier were full. Pages with reuse come
//! back, hit the ghost entry, and are admitted; one-touch scan traffic
//! never earns SSD writes.
//!
//! # Determinism
//!
//! The filter is deliberately *per pool* and counts **spill attempts**,
//! not wall time: a pool homes on exactly one shard of the sharded
//! engine and sees the same attempt sequence the serial engine sees, so
//! admission decisions are byte-identical across engines and worker
//! counts, with no cross-shard state. There is no randomness — the
//! "seeded" part of the plane is the workload, not the filter.

use std::collections::VecDeque;

use ddc_sim::FxHashMap;
use ddc_storage::BlockAddr;

/// Admission-plane knobs, carried by
/// [`CacheConfig`](crate::CacheConfig). The default (`off()`) disables
/// both mechanisms, preserving the admit-everything behaviour byte for
/// byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Ghost-filter window, in spill attempts per pool. `0` disables
    /// the filter (every spill is admitted).
    pub ghost_window: u32,
    /// TTL for SSD residency, in per-pool insert distance. An
    /// SSD-resident entry older than this many subsequent inserts into
    /// its pool is demoted (dropped) by the explicit TTL sweep. `0`
    /// disables demotion.
    pub ssd_ttl: u64,
}

impl AdmissionConfig {
    /// Everything off: spills admit unconditionally, nothing is demoted.
    pub const fn off() -> AdmissionConfig {
        AdmissionConfig {
            ghost_window: 0,
            ssd_ttl: 0,
        }
    }

    /// Ghost filter on with the given attempt window, TTL off.
    pub const fn ghost(window: u32) -> AdmissionConfig {
        AdmissionConfig {
            ghost_window: window,
            ssd_ttl: 0,
        }
    }

    /// Whether the ghost filter gates the spill path.
    pub fn filters_spills(&self) -> bool {
        self.ghost_window > 0
    }
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig::off()
    }
}

/// Per-pool ghost table: remembers recently rejected spill attempts so
/// the second attempt within the window is admitted. Holds addresses
/// only — no page data — so its footprint is a few words per remembered
/// attempt, bounded by the window.
#[derive(Clone, Debug, Default)]
pub struct GhostFilter {
    /// Monotone count of spill attempts evaluated by this filter.
    attempts: u64,
    /// Address → attempt index of its remembered (rejected) spill.
    table: FxHashMap<BlockAddr, u64>,
    /// Remembered attempts in arrival order, for window pruning.
    order: VecDeque<(u64, BlockAddr)>,
}

impl GhostFilter {
    /// Evaluates one spill attempt for `addr` under a window of
    /// `window` attempts. Returns `true` to admit (a remembered attempt
    /// for the same address lies within the window — the entry is
    /// consumed), `false` to reject (first sighting; remembered).
    pub fn admit(&mut self, addr: BlockAddr, window: u32) -> bool {
        self.attempts += 1;
        let horizon = self.attempts.saturating_sub(u64::from(window));
        while let Some(&(at, old)) = self.order.front() {
            if at >= horizon {
                break;
            }
            self.order.pop_front();
            // Only erase if the table still points at this attempt — a
            // re-recorded address owns a younger queue entry.
            if self.table.get(&old) == Some(&at) {
                self.table.remove(&old);
            }
        }
        match self.table.remove(&addr) {
            Some(at) if at >= horizon => true,
            _ => {
                self.table.insert(addr, self.attempts);
                self.order.push_back((self.attempts, addr));
                false
            }
        }
    }

    /// Re-arms `addr` as if it had just been sighted, without counting
    /// a spill attempt. The engines call this when a cache *hit*
    /// consumes an SSD-resident block of a filtered pool: the hit is
    /// proven reuse, so the block's next spill is admitted immediately
    /// instead of serving a second probation pass it already earned out
    /// of.
    pub fn note(&mut self, addr: BlockAddr) {
        self.table.insert(addr, self.attempts);
        self.order.push_back((self.attempts, addr));
    }

    /// Spill attempts evaluated so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Addresses currently remembered (diagnostics/tests).
    pub fn ghost_entries(&self) -> usize {
        self.table.len()
    }

    /// Forgets everything (pool drain/recovery — advisory state only).
    pub fn clear(&mut self) {
        self.attempts = 0;
        self.table.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_storage::FileId;

    fn addr(b: u64) -> BlockAddr {
        BlockAddr::new(FileId(1), b)
    }

    #[test]
    fn second_attempt_within_window_admits() {
        let mut g = GhostFilter::default();
        assert!(!g.admit(addr(0), 4), "first sighting rejected");
        assert!(g.admit(addr(0), 4), "second sighting admitted");
        // The ghost entry was consumed: a third attempt starts over.
        assert!(!g.admit(addr(0), 4));
    }

    #[test]
    fn window_expires_old_attempts() {
        let mut g = GhostFilter::default();
        assert!(!g.admit(addr(0), 2));
        assert!(!g.admit(addr(1), 2));
        assert!(!g.admit(addr(2), 2)); // pushes addr(0) out of the window
        assert!(!g.admit(addr(0), 2), "expired ghost: treated as first");
        assert!(g.admit(addr(0), 2), "fresh ghost admits");
    }

    #[test]
    fn scan_traffic_never_admits() {
        let mut g = GhostFilter::default();
        for b in 0..100 {
            assert!(!g.admit(addr(b), 8), "one-touch addresses all reject");
        }
        assert!(g.ghost_entries() <= 8 + 1, "table bounded by the window");
    }

    #[test]
    fn rerecorded_address_survives_stale_queue_entry() {
        let mut g = GhostFilter::default();
        assert!(!g.admit(addr(0), 2)); // attempt 1 records addr 0
        assert!(g.admit(addr(0), 2)); // attempt 2 consumes it
        assert!(!g.admit(addr(0), 2)); // attempt 3 re-records addr 0
        assert!(!g.admit(addr(9), 2)); // attempt 4: prunes attempt-1 queue
                                       // entry, which must not erase the
                                       // younger attempt-3 record
        assert!(g.admit(addr(0), 2), "attempt 5 still sees attempt 3");
    }

    #[test]
    fn hit_note_rearms_without_probation() {
        let mut g = GhostFilter::default();
        assert!(!g.admit(addr(0), 4)); // probation
        assert!(g.admit(addr(0), 4)); // admitted; entry consumed
        g.note(addr(0)); // hit consumed the block: proven reuse
        assert!(g.admit(addr(0), 4), "next spill readmits immediately");
        assert!(!g.admit(addr(0), 4), "note does not persist past one admit");
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = GhostFilter::default();
        g.admit(addr(0), 4);
        g.clear();
        assert_eq!(g.attempts(), 0);
        assert_eq!(g.ghost_entries(), 0);
        assert!(!g.admit(addr(0), 4), "no memory survives clear");
    }

    #[test]
    fn config_helpers() {
        assert!(!AdmissionConfig::off().filters_spills());
        assert!(AdmissionConfig::ghost(16).filters_spills());
        assert_eq!(AdmissionConfig::default(), AdmissionConfig::off());
        assert_eq!(AdmissionConfig::ghost(16).ssd_ttl, 0);
    }
}
