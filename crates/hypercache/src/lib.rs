//! The DoubleDecker hypervisor cache store — the paper's core
//! contribution (§3–§4).
//!
//! [`DoubleDeckerCache`] implements the
//! [`SecondChanceCache`](ddc_cleancache::SecondChanceCache) backend trait
//! with:
//!
//! * an **indexing module** ([`index`]) mapping `(vm, pool, inode, block)`
//!   keys to storage slots through a per-pool file-object table and
//!   per-file block tree, mirroring the paper's hash-table + radix-tree
//!   hierarchy,
//! * a **storage module** ([`store`]) with two backends — host memory and
//!   SSD — with synchronous reads and (for the SSD) asynchronous writes,
//! * a **policy module** ([`policy`]) computing two-level entitlements
//!   (per-VM weights set by the host administrator, per-container `<T, W>`
//!   tuples set from inside each VM) and selecting eviction victims with
//!   the paper's Algorithm 1,
//! * dynamic reconfiguration of every knob at runtime (capacities, VM
//!   weights, container policies, store types),
//! * the **Global** baseline mode (tmem-style container-agnostic FIFO) and
//!   a **Strict** partition mode (Morai-style fixed partitions without
//!   slack redistribution), used as comparators in the evaluation,
//! * a **crash-and-recovery plane**: a write-ahead journal of every state
//!   transition ([`DoubleDeckerCache::enable_journal`]), warm restart
//!   from a truncated or corrupted journal image
//!   ([`DoubleDeckerCache::recover`]) that can lose entries but never
//!   resurrect stale ones, and a runtime invariant auditor ([`audit`]).
//!
//! # Quick start
//!
//! ```
//! use ddc_cleancache::{CachePolicy, PageVersion, SecondChanceCache, VmId};
//! use ddc_hypercache::{CacheConfig, DoubleDeckerCache};
//! use ddc_sim::SimTime;
//! use ddc_storage::{BlockAddr, FileId};
//!
//! let mut cache = DoubleDeckerCache::new(CacheConfig::mem_only(1024));
//! cache.add_vm(VmId(0), 100);
//! let pool = cache.create_pool(VmId(0), CachePolicy::mem(100));
//!
//! let addr = BlockAddr::new(FileId(1), 0);
//! let put = cache.put(SimTime::ZERO, VmId(0), pool, addr, PageVersion(1));
//! assert!(put.is_stored());
//! let get = cache.get(SimTime::ZERO, VmId(0), pool, addr);
//! assert!(get.is_hit());
//! // Exclusive: the hit removed the object.
//! assert!(!cache.get(SimTime::ZERO, VmId(0), pool, addr).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod audit;
mod config;
mod ddcache;
pub mod index;
pub mod policy;
pub mod readplane;
pub mod store;

pub use admission::{AdmissionConfig, GhostFilter};
pub use audit::{audit, audit_pool_slice, audit_remote_bindings, AuditFinding};
pub use config::{CacheConfig, PartitionMode, EVICTION_BATCH_PAGES};
pub use ddcache::{CacheTotals, DoubleDeckerCache, FallbackMode, RecoveryReport, VmUsage};
pub use policy::{select_victim, select_victim_strict, EntityUsage};
pub use readplane::{ReadPlane, ReadProbe};

// Re-export the interface vocabulary so downstream crates only need this
// crate for the common case.
pub use ddc_cleancache::{
    CachePolicy, GetOutcome, PageVersion, PoolId, PoolStats, PutOutcome, SecondChanceCache,
    StoreKind, VmId,
};
