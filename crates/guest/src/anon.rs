//! Anonymous (non-file-backed) memory with swap.
//!
//! Anonymous pages are the memory hypervisor caches cannot absorb: when a
//! cgroup is squeezed below its anonymous working set, the guest must swap
//! — the effect behind the Redis/MySQL rows of the paper's Table 1 and
//! Table 4.

use ddc_sim::FxHashMap;
use std::collections::VecDeque;

/// One cgroup's anonymous memory: `allocated` virtual pages of which some
/// are resident and the rest are swapped out. Resident pages age in LRU
/// order (lazy-deletion queue).
#[derive(Clone, Debug, Default)]
pub struct AnonSpace {
    allocated: u64,
    resident: FxHashMap<u64, u64>, // page index -> lru seq
    lru: VecDeque<(u64, u64)>,
    next_seq: u64,
    swapped_out_total: u64,
    swapped_in_total: u64,
    ever_touched: Vec<u64>, // bitmap, one bit per allocated page
}

impl AnonSpace {
    /// Creates an empty space.
    pub fn new() -> AnonSpace {
        AnonSpace::default()
    }

    /// Total allocated anonymous pages (resident + swapped).
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Currently resident pages.
    pub fn resident(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Currently swapped-out pages.
    pub fn swapped(&self) -> u64 {
        self.allocated - self.resident()
    }

    /// Cumulative pages swapped out.
    pub fn swap_outs(&self) -> u64 {
        self.swapped_out_total
    }

    /// Cumulative pages swapped in (major faults).
    pub fn swap_ins(&self) -> u64 {
        self.swapped_in_total
    }

    /// Grows the allocation by `pages`. New pages are *not* resident until
    /// first touched (so the caller charges faults naturally).
    pub fn grow(&mut self, pages: u64) {
        self.allocated += pages;
        let words = (self.allocated as usize).div_ceil(64);
        if self.ever_touched.len() < words {
            self.ever_touched.resize(words, 0);
        }
    }

    /// Whether the page has ever been touched (distinguishes a swapped-out
    /// page from a never-populated one).
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the allocation.
    pub fn was_ever_touched(&self, page: u64) -> bool {
        assert!(page < self.allocated, "anon page {page} out of range");
        self.ever_touched[(page / 64) as usize] & (1 << (page % 64)) != 0
    }

    /// Shrinks the allocation (frees the highest-numbered pages).
    pub fn shrink(&mut self, pages: u64) {
        let target = self.allocated.saturating_sub(pages);
        for idx in target..self.allocated {
            self.resident.remove(&idx);
            self.ever_touched[(idx / 64) as usize] &= !(1 << (idx % 64));
        }
        self.allocated = target;
    }

    /// Whether a page is resident.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the allocation.
    pub fn is_resident(&self, page: u64) -> bool {
        assert!(page < self.allocated, "anon page {page} out of range");
        self.resident.contains_key(&page)
    }

    /// Touches a page, making it MRU. Returns `true` if the touch was a
    /// fault (the page was not resident and has been made resident —
    /// either first touch or swap-in; the caller charges the IO).
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the allocation.
    pub fn touch(&mut self, page: u64) -> bool {
        assert!(page < self.allocated, "anon page {page} out of range");
        self.ever_touched[(page / 64) as usize] |= 1 << (page % 64);
        let seq = self.next_seq;
        self.next_seq += 1;
        let fault = match self.resident.get_mut(&page) {
            Some(s) => {
                *s = seq;
                false
            }
            None => {
                self.resident.insert(page, seq);
                true
            }
        };
        self.lru.push_back((page, seq));
        self.maybe_compact();
        fault
    }

    /// Records that a fault was a swap-in (as opposed to first touch).
    pub fn note_swap_in(&mut self) {
        self.swapped_in_total += 1;
    }

    /// Evicts the least-recently-used resident page to swap, returning its
    /// index, or `None` if nothing is resident.
    pub fn swap_out_lru(&mut self) -> Option<u64> {
        loop {
            let (page, seq) = self.lru.pop_front()?;
            if self.resident.get(&page) == Some(&seq) {
                self.resident.remove(&page);
                self.swapped_out_total += 1;
                return Some(page);
            }
        }
    }

    /// Whether the page was ever swapped out and not yet touched back in —
    /// approximated as "allocated, not resident, and previously touched".
    /// First-touch faults are distinguished by the caller tracking a
    /// high-water mark; this model treats any non-resident page below the
    /// allocation as swap-resident once the space has seen any swap-out.
    pub fn has_swap_activity(&self) -> bool {
        self.swapped_out_total > 0
    }

    fn maybe_compact(&mut self) {
        if self.lru.len() > self.resident.len().saturating_mul(4).max(1024) {
            let resident = &self.resident;
            self.lru.retain(|(p, s)| resident.get(p) == Some(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_touch_fault_cycle() {
        let mut a = AnonSpace::new();
        a.grow(4);
        assert_eq!(a.allocated(), 4);
        assert_eq!(a.resident(), 0);
        assert!(a.touch(0), "first touch faults");
        assert!(!a.touch(0), "second touch does not");
        assert_eq!(a.resident(), 1);
        assert_eq!(a.swapped(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touch_out_of_range_panics() {
        let mut a = AnonSpace::new();
        a.grow(1);
        a.touch(1);
    }

    #[test]
    fn swap_out_lru_order() {
        let mut a = AnonSpace::new();
        a.grow(3);
        a.touch(0);
        a.touch(1);
        a.touch(2);
        a.touch(0); // 0 becomes MRU
        assert_eq!(a.swap_out_lru(), Some(1));
        assert_eq!(a.swap_out_lru(), Some(2));
        assert_eq!(a.swap_out_lru(), Some(0));
        assert_eq!(a.swap_out_lru(), None);
        assert_eq!(a.swap_outs(), 3);
        assert!(a.has_swap_activity());
    }

    #[test]
    fn swapped_page_faults_again() {
        let mut a = AnonSpace::new();
        a.grow(1);
        a.touch(0);
        a.swap_out_lru();
        assert!(!a.is_resident(0));
        assert!(a.touch(0), "swapped page faults on touch");
        a.note_swap_in();
        assert_eq!(a.swap_ins(), 1);
    }

    #[test]
    fn ever_touched_tracks_history() {
        let mut a = AnonSpace::new();
        a.grow(3);
        assert!(!a.was_ever_touched(0));
        a.touch(0);
        assert!(a.was_ever_touched(0));
        a.swap_out_lru();
        assert!(a.was_ever_touched(0), "swap-out does not erase history");
        a.shrink(3);
        a.grow(3);
        assert!(!a.was_ever_touched(0), "shrink clears history");
    }

    #[test]
    fn shrink_frees_tail_pages() {
        let mut a = AnonSpace::new();
        a.grow(10);
        for p in 0..10 {
            a.touch(p);
        }
        a.shrink(4);
        assert_eq!(a.allocated(), 6);
        assert_eq!(a.resident(), 6);
        a.shrink(100);
        assert_eq!(a.allocated(), 0);
        assert_eq!(a.resident(), 0);
    }

    #[test]
    fn compaction_under_heavy_touching() {
        let mut a = AnonSpace::new();
        a.grow(8);
        for i in 0..5000u64 {
            a.touch(i % 8);
        }
        assert_eq!(a.resident(), 8);
        // All pages still swap-out-able exactly once.
        let mut n = 0;
        while a.swap_out_lru().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
    }

    /// Seeded randomized schedules (in-tree replacement for proptest,
    /// which is unavailable offline).
    mod randomized {
        use super::*;
        use ddc_sim::SimRng;

        /// resident + swapped == allocated at all times.
        #[test]
        fn residency_partition() {
            let mut rng = SimRng::new(0xA404);
            for case in 0..200 {
                let mut r = rng.fork(case);
                let mut a = AnonSpace::new();
                a.grow(16);
                for _ in 0..r.range_u64(0, 300) {
                    if r.chance(0.5) {
                        a.touch(r.range_u64(0, 16));
                    } else {
                        a.swap_out_lru();
                    }
                    assert_eq!(a.resident() + a.swapped(), a.allocated());
                    assert!(a.resident() <= 16);
                }
            }
        }
    }
}
