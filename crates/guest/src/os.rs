//! The guest OS: memory accounting, reclaim, and the file-IO path with the
//! cleancache second-chance lookup.

use ddc_cleancache::{
    CachePolicy, GetOutcome, HypercallChannel, PageVersion, PoolStats, SecondChanceCache, VmId,
};
use ddc_sim::{FaultSchedule, FxHashMap, SimDuration, SimTime};
use ddc_storage::{BlockAddr, Device, FileId, PAGE_SIZE};

use std::collections::BTreeMap;

use crate::{Cgroup, CgroupId, CgroupMemStats};

/// File-id namespace reserved for the swap area (one virtual "swap file"
/// per cgroup, far above any workload inode).
const SWAP_FILE_BASE: u64 = 1 << 40;

/// CPU cost of entering the kernel for one IO request.
const SYSCALL_COST: SimDuration = SimDuration::from_micros(1);

/// CPU cost of copying one cached block to user space (~8 GB/s).
fn copy_cost() -> SimDuration {
    SimDuration::from_nanos(PAGE_SIZE * 1_000_000_000 / 8_000_000_000)
}

/// Background writeback trigger: fraction of a cgroup's limit that may be
/// dirty before the write path starts flushing (Linux's dirty_ratio is
/// 20% by default).
const DIRTY_RATIO_PERCENT: u64 = 20;

/// Pages flushed per background-writeback round.
const WRITEBACK_CHUNK: usize = 32;

/// Writer throttling (`balance_dirty_pages`): when the disk's writeback
/// backlog exceeds this bound, writers wait until it drains back under
/// it, pinning aggregate dirtying rate to device write bandwidth.
const MAX_WRITEBACK_BACKLOG: SimDuration = SimDuration::from_millis(100);

/// Static configuration of a guest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GuestConfig {
    /// Total VM memory, in pages.
    pub total_mem_pages: u64,
    /// Pages reserved for the kernel and unreclaimable slab.
    pub kernel_reserved_pages: u64,
}

impl GuestConfig {
    /// A guest with `mb` MiB of RAM, reserving ~3% for the kernel.
    pub fn with_mem_mb(mb: u64) -> GuestConfig {
        let total = mb * 1024 * 1024 / PAGE_SIZE;
        GuestConfig {
            total_mem_pages: total,
            kernel_reserved_pages: total / 32,
        }
    }
}

/// Mutable host-side resources a guest operation may need: the hypervisor
/// cache backend and the VM's virtual disk. Owned by the host; lent to the
/// guest per call.
pub struct GuestEnv<'a> {
    /// The second-chance cache backend (hypervisor cache).
    pub backend: &'a mut dyn SecondChanceCache,
    /// The virtual disk (shared physical device).
    pub disk: &'a mut Device,
}

impl std::fmt::Debug for GuestEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestEnv").finish_non_exhaustive()
    }
}

/// Which tier served a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// First-chance hit in the guest page cache.
    PageCache,
    /// Second-chance hit in the hypervisor cache.
    Cleancache,
    /// Miss everywhere; read from the virtual disk.
    Disk,
}

/// Outcome of a read operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadResult {
    /// When the data was available to the application.
    pub finish: SimTime,
    /// The tier that served it.
    pub level: HitLevel,
}

/// Outcome of a write operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteResult {
    /// When the write call returned (data in page cache, not yet durable).
    pub finish: SimTime,
}

/// Cumulative reclaim/IO counters for the whole guest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuestCounters {
    /// Clean pages evicted to the second-chance cache.
    pub cleancache_puts: u64,
    /// Dirty pages written back by reclaim or background writeback.
    pub writebacks: u64,
    /// Anonymous pages swapped out.
    pub swap_outs: u64,
    /// Anonymous pages swapped in.
    pub swap_ins: u64,
    /// Second-chance hits whose version disagreed with the on-disk
    /// version — the stale-read oracle. Must stay zero: the clean-cache
    /// contract says losing entries is safe, serving stale ones never is.
    pub stale_cleancache_hits: u64,
}

/// A guest operating system: cgroups, memory accounting, reclaim, and the
/// IO path. See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct GuestOs {
    vm: VmId,
    config: GuestConfig,
    channel: HypercallChannel,
    cgroups: BTreeMap<CgroupId, Cgroup>,
    next_cg: u32,
    /// Content version currently on the virtual disk, per block. Blocks
    /// never written have `PageVersion::INITIAL`.
    disk_versions: FxHashMap<BlockAddr, PageVersion>,
    counters: GuestCounters,
}

impl GuestOs {
    /// Boots a guest.
    pub fn new(vm: VmId, config: GuestConfig) -> GuestOs {
        GuestOs {
            vm,
            config,
            channel: HypercallChannel::new(vm),
            cgroups: BTreeMap::new(),
            next_cg: 1,
            disk_versions: FxHashMap::default(),
            counters: GuestCounters::default(),
        }
    }

    /// The VM identity of this guest.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The static configuration.
    pub fn config(&self) -> GuestConfig {
        self.config
    }

    /// The hypercall channel (for counter inspection).
    pub fn channel(&self) -> &HypercallChannel {
        &self.channel
    }

    /// The guest's flush epoch: the highest journal generation the
    /// hypervisor has acknowledged as durably covering our invalidations.
    /// Snapshot this before a simulated crash and feed it to
    /// warm-restart recovery so stale entries are provably discarded.
    pub fn flush_epoch(&self) -> u64 {
        self.channel.flush_epoch()
    }

    /// Installs a new flush epoch after warm-restart recovery. The
    /// recovered cache re-issues epochs so the guest's view stays ahead
    /// of every entry the rebuilt cache may hold.
    pub fn note_recovery_epoch(&mut self, epoch: u64) {
        self.channel.set_flush_epoch(epoch);
    }

    /// Cumulative reclaim/IO counters.
    pub fn counters(&self) -> GuestCounters {
        self.counters
    }

    /// Disables or enables the cleancache data path (a guest without the
    /// DoubleDecker patch).
    pub fn set_cleancache_enabled(&mut self, enabled: bool) {
        self.channel.set_enabled(enabled);
    }

    /// Installs (or clears) a fault schedule on the hypercall channel
    /// (dropped or slowed get/put calls). Flush and control hypercalls
    /// stay reliable; see [`HypercallChannel::set_fault_schedule`].
    pub fn set_channel_fault_schedule(&mut self, faults: Option<FaultSchedule>) {
        self.channel.set_fault_schedule(faults);
    }

    // ------------------------------------------------------------------
    // Cgroup lifecycle (the paper's CREATE_CGROUP / SET_CG_WEIGHT /
    // DESTROY_CGROUP events).
    // ------------------------------------------------------------------

    /// Creates a container cgroup with a hard memory limit (pages) and a
    /// hypervisor-cache policy; performs the CREATE_CGROUP handshake to
    /// obtain the container's pool id.
    pub fn create_cgroup(
        &mut self,
        env: &mut GuestEnv<'_>,
        name: &str,
        mem_limit_pages: u64,
        policy: CachePolicy,
    ) -> CgroupId {
        let id = CgroupId(self.next_cg);
        self.next_cg += 1;
        let mut cg = Cgroup::new(name, mem_limit_pages, policy);
        let pool = self.channel.create_pool(env.backend, policy);
        cg.set_pool(Some(pool));
        self.cgroups.insert(id, cg);
        id
    }

    /// Updates a cgroup's `<T, W>` policy and propagates SET_CG_WEIGHT to
    /// the hypervisor cache.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn set_cg_policy(&mut self, env: &mut GuestEnv<'_>, cg: CgroupId, policy: CachePolicy) {
        let cgroup = self.cgroup_mut(cg);
        cgroup.set_policy(policy);
        if let Some(pool) = cgroup.pool() {
            self.channel.set_policy(env.backend, pool, policy);
        }
    }

    /// Updates a cgroup's hard memory limit, reclaiming immediately if the
    /// cgroup is now over it.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn set_cg_mem_limit(
        &mut self,
        env: &mut GuestEnv<'_>,
        now: SimTime,
        cg: CgroupId,
        mem_limit_pages: u64,
    ) {
        self.cgroup_mut(cg).set_mem_limit_pages(mem_limit_pages);
        while self.cgroup(cg).charged_pages() > mem_limit_pages {
            if !self.reclaim_from(env, now, cg) {
                break;
            }
        }
    }

    /// Destroys a cgroup: notifies the hypervisor cache (DESTROY_CGROUP)
    /// and frees all guest memory charged to it.
    ///
    /// Returns `false` (without side effects) if the cgroup does not
    /// exist, so teardown paths can be retried safely after a partial
    /// failure.
    pub fn destroy_cgroup(&mut self, env: &mut GuestEnv<'_>, cg: CgroupId) -> bool {
        let Some(cgroup) = self.cgroups.remove(&cg) else {
            return false;
        };
        if let Some(pool) = cgroup.pool() {
            self.channel.destroy_pool(env.backend, pool);
        }
        true
    }

    /// GET_STATS for one container's hypervisor cache pool.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn hypercache_stats(&mut self, env: &mut GuestEnv<'_>, cg: CgroupId) -> Option<PoolStats> {
        let pool = self.cgroup(cg).pool()?;
        self.channel.pool_stats(env.backend, pool)
    }

    /// Guest-side memory statistics of one cgroup (Table 1's columns).
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn cgroup_mem_stats(&self, cg: CgroupId) -> CgroupMemStats {
        self.cgroup(cg).mem_stats()
    }

    /// Ids of all live cgroups.
    pub fn cgroup_ids(&self) -> Vec<CgroupId> {
        self.cgroups.keys().copied().collect()
    }

    /// Immutable access to a cgroup.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn cgroup(&self, cg: CgroupId) -> &Cgroup {
        self.cgroups
            .get(&cg)
            .unwrap_or_else(|| panic!("unknown {cg}"))
    }

    fn cgroup_mut(&mut self, cg: CgroupId) -> &mut Cgroup {
        self.cgroups
            .get_mut(&cg)
            .unwrap_or_else(|| panic!("unknown {cg}"))
    }

    // ------------------------------------------------------------------
    // Memory accounting.
    // ------------------------------------------------------------------

    /// Pages in use VM-wide (kernel + all cgroups).
    pub fn used_pages(&self) -> u64 {
        self.config.kernel_reserved_pages
            + self
                .cgroups
                .values()
                .map(Cgroup::charged_pages)
                .sum::<u64>()
    }

    /// Free pages VM-wide.
    pub fn free_pages(&self) -> u64 {
        self.config
            .total_mem_pages
            .saturating_sub(self.used_pages())
    }

    /// Makes room to charge one more page to `cg`: reclaims from the
    /// cgroup while it is at its hard limit, then from the VM while memory
    /// is exhausted. Returns `false` if no progress was possible.
    fn ensure_room(&mut self, env: &mut GuestEnv<'_>, now: SimTime, cg: CgroupId) -> bool {
        let mut guard = 0u32;
        while self.cgroup(cg).at_limit() {
            if !self.reclaim_from(env, now, cg) {
                return false;
            }
            guard += 1;
            if guard > 1_000_000 {
                return false;
            }
        }
        while self.free_pages() == 0 {
            if !self.reclaim_global(env, now) {
                return false;
            }
            guard += 1;
            if guard > 1_000_000 {
                return false;
            }
        }
        true
    }

    /// Reclaims one page from `cg` in Linux order: clean page-cache LRU
    /// first (→ cleancache put), dirty page-cache (writeback, then put),
    /// anonymous LRU to swap last. Returns whether a page was freed.
    fn reclaim_from(&mut self, env: &mut GuestEnv<'_>, now: SimTime, cg: CgroupId) -> bool {
        let pool = self.cgroup(cg).pool();
        if let Some((addr, state)) = self.cgroup_mut(cg).page_cache.pop_lru() {
            if state.dirty {
                // Clustered writeback: flush every dirty block of the
                // file in one (mostly sequential) async burst, as the
                // kernel's writeback clustering does. The popped block's
                // content now matches the disk and may enter the
                // second-chance cache.
                env.disk.write_async(now, addr);
                self.disk_versions.insert(addr, state.version);
                self.counters.writebacks += 1;
                let siblings: Vec<(BlockAddr, PageVersion)> = {
                    let pc = &self.cgroup(cg).page_cache;
                    pc.dirty_blocks_of(addr.file)
                        .into_iter()
                        .map(|sib| (sib, pc.peek(sib).expect("dirty page resident").version))
                        .collect()
                };
                for (sib, version) in siblings {
                    env.disk.write_async(now, sib);
                    self.cgroup_mut(cg).page_cache.mark_clean(sib);
                    self.disk_versions.insert(sib, version);
                    self.counters.writebacks += 1;
                }
            }
            if let Some(pool) = pool {
                let out = self
                    .channel
                    .put(env.backend, now, pool, addr, state.version);
                if out.is_stored() {
                    self.counters.cleancache_puts += 1;
                }
            }
            return true;
        }
        // No file pages left: swap anonymous memory.
        if let Some(page) = self.cgroup_mut(cg).anon.swap_out_lru() {
            let swap_addr = BlockAddr::new(FileId(SWAP_FILE_BASE + cg.0 as u64), page);
            env.disk.write_async(now, swap_addr);
            self.counters.swap_outs += 1;
            return true;
        }
        false
    }

    /// VM-level reclaim victim: the cgroup charging the most memory in
    /// total (page cache + resident anonymous). This approximates global
    /// LRU across all memory: the dominant consumer loses pages first,
    /// and once its file pages are gone its anonymous memory goes to swap
    /// — the squeeze the paper's §5.2.1 observes when an unconstrained
    /// webserver page cache starves Redis.
    fn reclaim_global(&mut self, env: &mut GuestEnv<'_>, now: SimTime) -> bool {
        let victim = self
            .cgroups
            .iter()
            .max_by_key(|(_, c)| c.charged_pages())
            .map(|(id, _)| *id);
        match victim {
            Some(cg) => self.reclaim_from(env, now, cg),
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // File IO path.
    // ------------------------------------------------------------------

    /// Reads one block on behalf of `cg`.
    ///
    /// Lookup order (paper Fig. 1): page cache → second-chance cache
    /// (hypercall `get`) → virtual disk. The block is inserted clean into
    /// the page cache on a miss.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn read(
        &mut self,
        env: &mut GuestEnv<'_>,
        now: SimTime,
        cg: CgroupId,
        addr: BlockAddr,
    ) -> ReadResult {
        let t = now + SYSCALL_COST;
        // Feed the (optional) MRC estimator with the raw access stream.
        if let Some(mrc) = &mut self.cgroup_mut(cg).mrc {
            mrc.record(addr);
        }
        // First chance: page cache.
        if self.cgroup_mut(cg).page_cache.touch(addr).is_some() {
            self.cgroup_mut(cg).reads_by_level[0] += 1;
            return ReadResult {
                finish: t + copy_cost(),
                level: HitLevel::PageCache,
            };
        }
        // Shared files: a real guest has one page cache, so a block
        // resident under another cgroup is visible to this one. Ownership
        // follows the accessor ("the cgroup owner is deduced from the
        // page" — paper §4.1), so the page transfers to this cgroup.
        let shared_owner = self
            .cgroups
            .iter()
            .find(|(id, c)| **id != cg && c.page_cache.contains(addr))
            .map(|(id, _)| *id);
        if let Some(owner) = shared_owner {
            let state = self
                .cgroup_mut(owner)
                .page_cache
                .remove(addr)
                .expect("presence checked");
            self.ensure_room(env, t, cg);
            let cgroup = self.cgroup_mut(cg);
            cgroup.page_cache.insert(addr, state.dirty, state.version);
            cgroup.reads_by_level[0] += 1;
            return ReadResult {
                finish: t + copy_cost(),
                level: HitLevel::PageCache,
            };
        }
        // Second chance: hypervisor cache. A miss in this container's
        // pool triggers MIGRATE_OBJECT probes of the VM's other pools —
        // the paper's mechanism for shared files whose cache ownership
        // changed — before falling through to the disk.
        if let Some(pool) = self.cgroup(cg).pool() {
            let mut outcome = self.channel.get(env.backend, t, pool, addr);
            if outcome == GetOutcome::Miss {
                let others: Vec<ddc_cleancache::PoolId> = self
                    .cgroups
                    .values()
                    .filter_map(Cgroup::pool)
                    .filter(|p| *p != pool)
                    .collect();
                for other in others {
                    self.channel.migrate_object(env.backend, other, pool, addr);
                }
                outcome = self.channel.get(env.backend, t, pool, addr);
            }
            if let GetOutcome::Hit { finish, version } = outcome {
                if version != self.disk_version(addr) {
                    // Counted (not just asserted) so release-mode chaos
                    // runs observe violations too.
                    self.counters.stale_cleancache_hits += 1;
                }
                debug_assert_eq!(
                    version,
                    self.disk_version(addr),
                    "second-chance cache returned stale content for {addr}"
                );
                self.ensure_room(env, finish, cg);
                let cgroup = self.cgroup_mut(cg);
                cgroup.page_cache.insert(addr, false, version);
                cgroup.reads_by_level[1] += 1;
                return ReadResult {
                    finish: finish + copy_cost(),
                    level: HitLevel::Cleancache,
                };
            }
        }
        // Third: the virtual disk.
        let io = env.disk.read(t, addr);
        self.ensure_room(env, io.finish, cg);
        let version = self.disk_version(addr);
        let cgroup = self.cgroup_mut(cg);
        cgroup.page_cache.insert(addr, false, version);
        cgroup.reads_by_level[2] += 1;
        ReadResult {
            finish: io.finish + copy_cost(),
            level: HitLevel::Disk,
        }
    }

    /// Writes one whole block on behalf of `cg`: the page enters the page
    /// cache dirty with a bumped version, and any stale second-chance copy
    /// is invalidated (`flush`). Durability requires [`fsync`](Self::fsync).
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn write(
        &mut self,
        env: &mut GuestEnv<'_>,
        now: SimTime,
        cg: CgroupId,
        addr: BlockAddr,
    ) -> WriteResult {
        let t = now + SYSCALL_COST;
        // Shared-file coherence: a real guest has ONE page cache, so a
        // write invalidates every other container's copy of the block
        // (last-writer-wins; see DESIGN.md). Without this, another
        // container's later clean eviction could resurrect a stale
        // version in the second-chance cache.
        let other_cgs: Vec<CgroupId> = self
            .cgroups
            .iter()
            .filter(|(id, c)| **id != cg && c.page_cache.contains(addr))
            .map(|(id, _)| *id)
            .collect();
        for other in other_cgs {
            self.cgroup_mut(other).page_cache.remove(addr);
        }
        let resident = self.cgroup(cg).page_cache.contains(addr);
        if resident {
            self.cgroup_mut(cg).page_cache.mark_dirty(addr);
        } else {
            self.ensure_room(env, t, cg);
            let version = self.disk_version(addr).bump();
            self.cgroup_mut(cg).page_cache.insert(addr, true, version);
        }
        // Invalidate stale copies in the second-chance cache — in every
        // pool of the VM, since shared files may have been migrated or
        // cached under another container's pool.
        let pools: Vec<ddc_cleancache::PoolId> =
            self.cgroups.values().filter_map(Cgroup::pool).collect();
        for pool in pools {
            self.channel.flush(env.backend, pool, addr);
        }
        let mut finish = t + copy_cost();
        self.maybe_background_writeback(env, finish, cg);
        // balance_dirty_pages: throttle the writer while the device's
        // writeback backlog is deeper than the allowed bound.
        let backlog_limit = finish + MAX_WRITEBACK_BACKLOG;
        if env.disk.busy_until() > backlog_limit {
            finish = env.disk.busy_until() - MAX_WRITEBACK_BACKLOG;
        }
        WriteResult { finish }
    }

    /// Synchronously writes back every dirty page of `file` (fsync).
    /// Returns when the last block is durable.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn fsync(
        &mut self,
        env: &mut GuestEnv<'_>,
        now: SimTime,
        cg: CgroupId,
        file: FileId,
    ) -> SimTime {
        let t = now + SYSCALL_COST;
        let blocks = self.cgroup(cg).page_cache.dirty_blocks_of(file);
        let mut finish = t;
        for addr in blocks {
            let version = self
                .cgroup(cg)
                .page_cache
                .peek(addr)
                .expect("dirty page resident")
                .version;
            let io = env.disk.write(finish, addr);
            finish = io.finish;
            self.disk_versions.insert(addr, version);
            self.cgroup_mut(cg).page_cache.mark_clean(addr);
            self.counters.writebacks += 1;
        }
        finish
    }

    /// Deletes a file: drops its pages from the page cache (dirty pages
    /// are discarded — the file is going away) and invalidates its blocks
    /// in the second-chance cache.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn delete_file(&mut self, env: &mut GuestEnv<'_>, cg: CgroupId, file: FileId) {
        // Drop the file everywhere: every container's page cache and
        // every pool of the second-chance cache (shared-file coherence).
        let ids: Vec<CgroupId> = self.cgroups.keys().copied().collect();
        for id in ids {
            let removed = self.cgroup_mut(id).page_cache.remove_file(file);
            for (addr, _) in &removed {
                self.disk_versions.remove(addr);
            }
        }
        let pools: Vec<ddc_cleancache::PoolId> =
            self.cgroups.values().filter_map(Cgroup::pool).collect();
        for pool in pools {
            self.channel.flush_file(env.backend, pool, file);
        }
        let _ = cg;
    }

    /// Background writeback: if the cgroup's dirty set exceeds the dirty
    /// ratio, flush a chunk asynchronously.
    fn maybe_background_writeback(&mut self, env: &mut GuestEnv<'_>, now: SimTime, cg: CgroupId) {
        let cgroup = self.cgroup(cg);
        let threshold = cgroup.mem_limit_pages() * DIRTY_RATIO_PERCENT / 100;
        if cgroup.page_cache.dirty_len() <= threshold.max(WRITEBACK_CHUNK as u64) {
            return;
        }
        let victims = self.cgroup(cg).page_cache.collect_dirty(WRITEBACK_CHUNK);
        for addr in victims {
            let version = match self.cgroup(cg).page_cache.peek(addr) {
                Some(s) => s.version,
                None => continue,
            };
            env.disk.write_async(now, addr);
            self.disk_versions.insert(addr, version);
            self.cgroup_mut(cg).page_cache.mark_clean(addr);
            self.counters.writebacks += 1;
        }
    }

    // ------------------------------------------------------------------
    // Anonymous memory path.
    // ------------------------------------------------------------------

    /// Reserves `pages` of anonymous address space for `cg` (not resident
    /// until touched).
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn anon_reserve(&mut self, cg: CgroupId, pages: u64) {
        self.cgroup_mut(cg).anon.grow(pages);
    }

    /// Touches one anonymous page: a resident touch is a cache-speed
    /// access; a first touch demand-zeroes the page; a touch of a
    /// swapped-out page performs a synchronous swap-in read.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist or `page` is out of range.
    pub fn anon_touch(
        &mut self,
        env: &mut GuestEnv<'_>,
        now: SimTime,
        cg: CgroupId,
        page: u64,
    ) -> SimTime {
        let resident = self.cgroup(cg).anon.is_resident(page);
        if resident {
            self.cgroup_mut(cg).anon.touch(page);
            return now + SimDuration::from_nanos(200);
        }
        let was_touched = self.cgroup(cg).anon.was_ever_touched(page);
        self.ensure_room(env, now, cg);
        let mut finish = now + SimDuration::from_micros(2); // fault entry
        if was_touched {
            // Major fault: synchronous swap-in from the disk swap area.
            let swap_addr = BlockAddr::new(FileId(SWAP_FILE_BASE + cg.0 as u64), page);
            finish = env.disk.read(finish, swap_addr).finish;
            self.cgroup_mut(cg).anon.note_swap_in();
            self.counters.swap_ins += 1;
        }
        self.cgroup_mut(cg).anon.touch(page);
        finish
    }

    /// Drops every *clean* page-cache page of a cgroup (the
    /// `drop_caches` administrative knob). Clean pages flow to the
    /// second-chance cache exactly as reclaim would send them; dirty
    /// pages are left in place.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn drop_caches(&mut self, env: &mut GuestEnv<'_>, now: SimTime, cg: CgroupId) {
        let pool = self.cgroup(cg).pool();
        let clean: Vec<BlockAddr> = self.cgroup(cg).page_cache.iter_addrs_clean().collect();
        // The whole sweep is one batched put hypercall: `drop_caches`
        // evicts an entire cgroup's clean set in one administrative
        // action, the canonical case for coalescing the VMCALLs.
        let mut pages = Vec::with_capacity(clean.len());
        for addr in clean {
            let Some(state) = self.cgroup_mut(cg).page_cache.remove(addr) else {
                continue;
            };
            pages.push((addr, state.version));
        }
        if let Some(pool) = pool {
            for out in self.channel.put_many(env.backend, now, pool, &pages) {
                if out.is_stored() {
                    self.counters.cleancache_puts += 1;
                }
            }
        }
    }

    /// Enables in-guest MRC estimation for a container (sampling one in
    /// `sample_rate` addresses).
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist or `sample_rate` is zero.
    pub fn enable_mrc(&mut self, cg: CgroupId, sample_rate: u64) {
        self.cgroup_mut(cg).mrc = Some(crate::MrcEstimator::with_sample_rate(sample_rate));
    }

    /// The container's current miss-ratio curve, if estimation is on.
    ///
    /// # Panics
    ///
    /// Panics if the cgroup does not exist.
    pub fn mrc_curve(&self, cg: CgroupId) -> Option<crate::MissRatioCurve> {
        self.cgroup(cg).mrc.as_ref().map(|m| m.curve())
    }

    /// The authoritative on-disk version of a block. Public so crash
    /// harnesses can sweep recovered cache entries against ground truth.
    pub fn disk_version(&self, addr: BlockAddr) -> PageVersion {
        self.disk_versions
            .get(&addr)
            .copied()
            .unwrap_or(PageVersion::INITIAL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::{NullCache, PutOutcome};
    use ddc_hypercache_test_shim::new_dd_cache;

    /// A tiny local shim so guest tests exercise a *real* second-chance
    /// backend without a circular crate dependency: we re-implement the
    /// minimum store-everything backend here.
    mod ddc_hypercache_test_shim {
        use super::*;
        use std::collections::HashMap;

        #[derive(Default)]
        pub struct MapCache {
            pools: u32,
            map: HashMap<(VmId, ddc_cleancache::PoolId, BlockAddr), PageVersion>,
            pub capacity: usize,
        }

        pub fn new_dd_cache(capacity: usize) -> MapCache {
            MapCache {
                capacity,
                ..MapCache::default()
            }
        }

        impl SecondChanceCache for MapCache {
            fn create_pool(&mut self, _vm: VmId, _p: CachePolicy) -> ddc_cleancache::PoolId {
                self.pools += 1;
                ddc_cleancache::PoolId(self.pools)
            }
            fn destroy_pool(&mut self, vm: VmId, pool: ddc_cleancache::PoolId) {
                self.map.retain(|(v, p, _), _| !(*v == vm && *p == pool));
            }
            fn set_policy(&mut self, _: VmId, _: ddc_cleancache::PoolId, _: CachePolicy) {}
            fn migrate_object(
                &mut self,
                vm: VmId,
                from: ddc_cleancache::PoolId,
                to: ddc_cleancache::PoolId,
                addr: BlockAddr,
            ) {
                if let Some(v) = self.map.remove(&(vm, from, addr)) {
                    self.map.insert((vm, to, addr), v);
                }
            }
            fn pool_stats(&self, _: VmId, _: ddc_cleancache::PoolId) -> Option<PoolStats> {
                Some(PoolStats::default())
            }
            fn get(
                &mut self,
                now: SimTime,
                vm: VmId,
                pool: ddc_cleancache::PoolId,
                addr: BlockAddr,
            ) -> GetOutcome {
                match self.map.remove(&(vm, pool, addr)) {
                    Some(version) => GetOutcome::Hit {
                        finish: now + SimDuration::from_micros(8),
                        version,
                    },
                    None => GetOutcome::Miss,
                }
            }
            fn put(
                &mut self,
                now: SimTime,
                vm: VmId,
                pool: ddc_cleancache::PoolId,
                addr: BlockAddr,
                version: PageVersion,
            ) -> PutOutcome {
                if self.map.len() >= self.capacity {
                    return PutOutcome::Rejected;
                }
                self.map.insert((vm, pool, addr), version);
                PutOutcome::Stored {
                    finish: now + SimDuration::from_micros(8),
                }
            }
            fn flush(&mut self, vm: VmId, pool: ddc_cleancache::PoolId, addr: BlockAddr) -> u64 {
                self.map.remove(&(vm, pool, addr));
                0
            }
            fn flush_file(&mut self, vm: VmId, pool: ddc_cleancache::PoolId, file: FileId) -> u64 {
                self.map
                    .retain(|(v, p, a), _| !(*v == vm && *p == pool && a.file == file));
                0
            }
        }
    }

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    fn tiny_guest(mem_pages: u64) -> GuestOs {
        GuestOs::new(
            VmId(0),
            GuestConfig {
                total_mem_pages: mem_pages,
                kernel_reserved_pages: 0,
            },
        )
    }

    #[test]
    fn read_miss_then_hit() {
        let mut guest = tiny_guest(64);
        let mut backend = NullCache::new();
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 32, CachePolicy::default());
        let r1 = guest.read(&mut env, SimTime::ZERO, cg, addr(1, 0));
        assert_eq!(r1.level, HitLevel::Disk);
        let r2 = guest.read(&mut env, r1.finish, cg, addr(1, 0));
        assert_eq!(r2.level, HitLevel::PageCache);
        assert!(r2.finish.saturating_since(r1.finish) < SimDuration::from_micros(100));
    }

    #[test]
    fn eviction_feeds_cleancache_and_get_returns() {
        // Page cache of 4 pages; read 8 distinct blocks, then re-read the
        // first ones: they must come from the second-chance cache.
        let mut guest = tiny_guest(4);
        let mut backend = new_dd_cache(1000);
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 4, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..8 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        assert!(guest.counters().cleancache_puts >= 4);
        let r = guest.read(&mut env, now, cg, addr(1, 0));
        assert_eq!(r.level, HitLevel::Cleancache);
    }

    #[test]
    fn exclusivity_no_stale_reads_after_write() {
        let mut guest = tiny_guest(4);
        let mut backend = new_dd_cache(1000);
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 4, CachePolicy::default());
        let mut now = SimTime::ZERO;
        // Fill, evict (clean copy of (1,0) enters the hypervisor cache),
        // then rewrite (1,0): the flush must invalidate the stale copy.
        for b in 0..8 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        now = guest.write(&mut env, now, cg, addr(1, 0)).finish;
        now = guest.fsync(&mut env, now, cg, FileId(1));
        // Evict the fresh page too.
        for b in 8..16 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        // Reading (1,0) again must return the *new* version. The debug
        // assertion in read() enforces this; reaching here without a panic
        // plus the level check is the test.
        let r = guest.read(&mut env, now, cg, addr(1, 0));
        assert!(r.level == HitLevel::Cleancache || r.level == HitLevel::Disk);
    }

    #[test]
    fn cgroup_limit_forces_local_reclaim() {
        let mut guest = tiny_guest(1000);
        let mut backend = NullCache::new();
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "small", 8, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..32 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        let stats = guest.cgroup_mem_stats(cg);
        assert!(
            stats.page_cache_pages <= 8,
            "cgroup must stay at its {}-page limit (got {})",
            8,
            stats.page_cache_pages
        );
        assert!(guest.free_pages() > 900, "VM memory mostly free");
    }

    #[test]
    fn vm_pressure_reclaims_biggest_consumer() {
        let mut guest = tiny_guest(16);
        let mut backend = NullCache::new();
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        // Two cgroups with generous limits; VM memory is the bottleneck.
        let big = guest.create_cgroup(&mut env, "big", 100, CachePolicy::default());
        let small = guest.create_cgroup(&mut env, "small", 100, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..12 {
            now = guest.read(&mut env, now, big, addr(1, b)).finish;
        }
        for b in 0..8 {
            now = guest.read(&mut env, now, small, addr(2, b)).finish;
        }
        assert!(guest.used_pages() <= 16);
        let sb = guest.cgroup_mem_stats(big);
        let ss = guest.cgroup_mem_stats(small);
        assert!(
            sb.page_cache_pages + ss.page_cache_pages <= 16,
            "total fits VM memory"
        );
        assert!(ss.page_cache_pages == 8, "small cgroup kept its pages");
    }

    #[test]
    fn write_dirty_then_fsync_durable() {
        let mut guest = tiny_guest(64);
        let mut backend = NullCache::new();
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 32, CachePolicy::default());
        let w = guest.write(&mut env, SimTime::ZERO, cg, addr(1, 0));
        assert_eq!(guest.cgroup_mem_stats(cg).dirty_pages, 1);
        let fin = guest.fsync(&mut env, w.finish, cg, FileId(1));
        assert!(fin > w.finish, "fsync waits for the disk");
        assert_eq!(guest.cgroup_mem_stats(cg).dirty_pages, 0);
        assert_eq!(guest.counters().writebacks, 1);
        // fsync with nothing dirty is fast.
        let fin2 = guest.fsync(&mut env, fin, cg, FileId(1));
        assert!(fin2.saturating_since(fin) <= SimDuration::from_micros(2));
    }

    #[test]
    fn anon_pressure_swaps_and_faults_back() {
        let mut guest = tiny_guest(8);
        let mut backend = NullCache::new();
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "redis", 8, CachePolicy::default());
        guest.anon_reserve(cg, 16);
        let mut now = SimTime::ZERO;
        for p in 0..16 {
            now = guest.anon_touch(&mut env, now, cg, p);
        }
        let stats = guest.cgroup_mem_stats(cg);
        assert!(stats.anon_resident_pages <= 8);
        assert!(stats.swap_out_total >= 8, "pressure must swap");
        // Touch a swapped page: major fault, slow.
        let before = now;
        let after = guest.anon_touch(&mut env, now, cg, 0);
        assert!(
            after.saturating_since(before) > SimDuration::from_millis(1),
            "swap-in pays disk latency"
        );
        assert!(guest.counters().swap_ins >= 1);
    }

    #[test]
    fn anon_wins_over_nothing_but_file_pages_go_first() {
        let mut guest = tiny_guest(8);
        let mut backend = NullCache::new();
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 8, CachePolicy::default());
        let mut now = SimTime::ZERO;
        // 4 file pages + fill the rest with anon.
        for b in 0..4 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        guest.anon_reserve(cg, 8);
        for p in 0..8 {
            now = guest.anon_touch(&mut env, now, cg, p);
        }
        let stats = guest.cgroup_mem_stats(cg);
        assert_eq!(
            stats.page_cache_pages, 0,
            "file pages are reclaimed before anon is swapped"
        );
        assert_eq!(stats.anon_resident_pages, 8);
    }

    #[test]
    fn delete_file_invalidates_everywhere() {
        let mut guest = tiny_guest(4);
        let mut backend = new_dd_cache(1000);
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "mail", 4, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..8 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        guest.delete_file(&mut env, cg, FileId(1));
        let r = guest.read(&mut env, now, cg, addr(1, 0));
        assert_eq!(r.level, HitLevel::Disk, "deleted file cannot hit caches");
    }

    #[test]
    fn set_cg_mem_limit_reclaims_immediately() {
        let mut guest = tiny_guest(64);
        let mut backend = NullCache::new();
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 32, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..20 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        guest.set_cg_mem_limit(&mut env, now, cg, 5);
        assert!(guest.cgroup_mem_stats(cg).page_cache_pages <= 5);
    }

    #[test]
    fn destroy_cgroup_frees_memory_and_pool() {
        let mut guest = tiny_guest(64);
        let mut backend = new_dd_cache(1000);
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 32, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..8 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        let used_before = guest.used_pages();
        assert!(used_before > 0);
        assert!(guest.destroy_cgroup(&mut env, cg));
        assert_eq!(guest.used_pages(), 0);
        assert!(guest.cgroup_ids().is_empty());
        assert!(
            !guest.destroy_cgroup(&mut env, cg),
            "double destroy is a safe no-op"
        );
    }

    #[test]
    fn disabled_cleancache_never_puts() {
        let mut guest = tiny_guest(4);
        guest.set_cleancache_enabled(false);
        let mut backend = new_dd_cache(1000);
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 4, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..8 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        assert_eq!(guest.counters().cleancache_puts, 0);
        let r = guest.read(&mut env, now, cg, addr(1, 0));
        assert_eq!(r.level, HitLevel::Disk);
    }

    #[test]
    fn background_writeback_bounds_dirty_set() {
        let mut guest = tiny_guest(2048);
        let mut backend = NullCache::new();
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 1024, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..600 {
            now = guest.write(&mut env, now, cg, addr(1, b)).finish;
        }
        let stats = guest.cgroup_mem_stats(cg);
        assert!(
            stats.dirty_pages < 600,
            "background writeback must have flushed some of the dirty set (dirty={})",
            stats.dirty_pages
        );
        assert!(guest.counters().writebacks > 0);
    }

    #[test]
    fn drop_caches_moves_clean_pages_to_second_chance() {
        let mut guest = tiny_guest(64);
        let mut backend = new_dd_cache(1000);
        let mut disk = Device::hdd();
        let mut env = GuestEnv {
            backend: &mut backend,
            disk: &mut disk,
        };
        let cg = guest.create_cgroup(&mut env, "c", 32, CachePolicy::default());
        let mut now = SimTime::ZERO;
        for b in 0..8 {
            now = guest.read(&mut env, now, cg, addr(1, b)).finish;
        }
        // Dirty one page; it must survive the drop.
        now = guest.write(&mut env, now, cg, addr(1, 0)).finish;
        guest.drop_caches(&mut env, now, cg);
        let stats = guest.cgroup_mem_stats(cg);
        assert_eq!(stats.page_cache_pages, 1, "only the dirty page remains");
        assert_eq!(stats.dirty_pages, 1);
        assert_eq!(guest.counters().cleancache_puts, 7, "clean pages were put");
        // Dropped pages come back from the second chance, not the disk.
        let r = guest.read(&mut env, now, cg, addr(1, 3));
        assert_eq!(r.level, HitLevel::Cleancache);
    }

    #[test]
    fn guest_accessors() {
        let guest = tiny_guest(64);
        assert_eq!(guest.vm(), VmId(0));
        assert_eq!(guest.config().total_mem_pages, 64);
        assert_eq!(guest.free_pages(), 64);
        assert_eq!(guest.channel().vm(), VmId(0));
    }

    #[test]
    #[should_panic(expected = "unknown cg9")]
    fn unknown_cgroup_panics() {
        let guest = tiny_guest(64);
        guest.cgroup(CgroupId(9));
    }
}
