//! Per-cgroup page cache with LRU ordering and dirty tracking.

use ddc_sim::FxHashMap;
use std::collections::VecDeque;

use ddc_cleancache::PageVersion;
use ddc_storage::{BlockAddr, FileId};

/// State of one cached file page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageState {
    /// Whether the page has been modified since it matched the disk.
    pub dirty: bool,
    /// Version of the content the page currently holds.
    pub version: PageVersion,
    lru_seq: u64,
}

/// A file page cache with LRU eviction order.
///
/// Uses the lazy-deletion queue idiom: touching a page appends a fresh
/// `(addr, seq)` entry; stale entries are skipped on pop. The queue is
/// compacted when stale entries outnumber live ones.
///
/// # Example
///
/// ```
/// use ddc_guest::PageCache;
/// use ddc_cleancache::PageVersion;
/// use ddc_storage::{BlockAddr, FileId};
///
/// let mut pc = PageCache::new();
/// pc.insert(BlockAddr::new(FileId(1), 0), false, PageVersion(0));
/// assert_eq!(pc.len(), 1);
/// let (addr, st) = pc.pop_lru().unwrap();
/// assert_eq!(addr, BlockAddr::new(FileId(1), 0));
/// assert!(!st.dirty);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageCache {
    pages: FxHashMap<BlockAddr, PageState>,
    lru: VecDeque<(BlockAddr, u64)>,
    next_seq: u64,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new() -> PageCache {
        PageCache::default()
    }

    /// Number of resident pages.
    pub fn len(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of dirty resident pages.
    pub fn dirty_len(&self) -> u64 {
        self.pages.values().filter(|p| p.dirty).count() as u64
    }

    /// Looks up a page without touching LRU order.
    pub fn peek(&self, addr: BlockAddr) -> Option<&PageState> {
        self.pages.get(&addr)
    }

    /// Whether the page is resident.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.pages.contains_key(&addr)
    }

    /// Looks up a page and marks it most-recently-used.
    pub fn touch(&mut self, addr: BlockAddr) -> Option<PageState> {
        let seq = self.alloc_seq();
        let state = self.pages.get_mut(&addr)?;
        state.lru_seq = seq;
        let snapshot = *state;
        self.lru.push_back((addr, seq));
        self.maybe_compact();
        Some(snapshot)
    }

    /// Inserts (or replaces) a page as most-recently-used.
    pub fn insert(&mut self, addr: BlockAddr, dirty: bool, version: PageVersion) {
        let seq = self.alloc_seq();
        self.pages.insert(
            addr,
            PageState {
                dirty,
                version,
                lru_seq: seq,
            },
        );
        self.lru.push_back((addr, seq));
        self.maybe_compact();
    }

    /// Marks a resident page dirty with a new version, refreshing LRU.
    /// Returns the new version, or `None` if the page is not resident.
    pub fn mark_dirty(&mut self, addr: BlockAddr) -> Option<PageVersion> {
        let seq = self.alloc_seq();
        let state = self.pages.get_mut(&addr)?;
        state.dirty = true;
        state.version = state.version.bump();
        state.lru_seq = seq;
        let v = state.version;
        self.lru.push_back((addr, seq));
        self.maybe_compact();
        Some(v)
    }

    /// Marks a resident page clean (after writeback) without touching LRU.
    pub fn mark_clean(&mut self, addr: BlockAddr) {
        if let Some(state) = self.pages.get_mut(&addr) {
            state.dirty = false;
        }
    }

    /// Removes one page by address.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<PageState> {
        self.pages.remove(&addr)
    }

    /// Removes and returns the least-recently-used page.
    pub fn pop_lru(&mut self) -> Option<(BlockAddr, PageState)> {
        loop {
            let (addr, seq) = self.lru.pop_front()?;
            let live = self.pages.get(&addr).is_some_and(|p| p.lru_seq == seq);
            if live {
                let state = self.pages.remove(&addr).expect("verified live");
                return Some((addr, state));
            }
        }
    }

    /// The least-recently-used page without removing it.
    pub fn peek_lru(&mut self) -> Option<(BlockAddr, PageState)> {
        loop {
            let &(addr, seq) = self.lru.front()?;
            let live = self.pages.get(&addr).is_some_and(|p| p.lru_seq == seq);
            if live {
                return Some((addr, self.pages[&addr]));
            }
            self.lru.pop_front();
        }
    }

    /// Addresses of all dirty pages of `file` (for fsync), in block order.
    pub fn dirty_blocks_of(&self, file: FileId) -> Vec<BlockAddr> {
        let mut blocks: Vec<BlockAddr> = self
            .pages
            .iter()
            .filter(|(a, p)| a.file == file && p.dirty)
            .map(|(a, _)| *a)
            .collect();
        blocks.sort();
        blocks
    }

    /// Up to `max` dirty page addresses in LRU-ish (oldest-first) order,
    /// for background writeback.
    pub fn collect_dirty(&self, max: usize) -> Vec<BlockAddr> {
        let mut dirty: Vec<(u64, BlockAddr)> = self
            .pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(a, p)| (p.lru_seq, *a))
            .collect();
        dirty.sort_unstable();
        dirty.into_iter().take(max).map(|(_, a)| a).collect()
    }

    /// Iterates over the addresses of all *clean* resident pages.
    pub fn iter_addrs_clean(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.pages.iter().filter(|(_, p)| !p.dirty).map(|(a, _)| *a)
    }

    /// Removes all pages of `file`, returning them (for truncate/delete).
    pub fn remove_file(&mut self, file: FileId) -> Vec<(BlockAddr, PageState)> {
        let addrs: Vec<BlockAddr> = self
            .pages
            .keys()
            .filter(|a| a.file == file)
            .copied()
            .collect();
        addrs
            .into_iter()
            .filter_map(|a| self.pages.remove(&a).map(|s| (a, s)))
            .collect()
    }

    /// The oldest (LRU) page's age rank — used by global reclaim to pick a
    /// victim cgroup. Lower seq = older.
    pub fn lru_seq_front(&mut self) -> Option<u64> {
        self.peek_lru().map(|(_, s)| s.lru_seq)
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn maybe_compact(&mut self) {
        if self.lru.len() > self.pages.len().saturating_mul(4).max(1024) {
            let pages = &self.pages;
            self.lru
                .retain(|(a, s)| pages.get(a).is_some_and(|p| p.lru_seq == *s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    #[test]
    fn insert_touch_remove() {
        let mut pc = PageCache::new();
        pc.insert(addr(1, 0), false, PageVersion(0));
        assert!(pc.contains(addr(1, 0)));
        assert_eq!(pc.len(), 1);
        assert!(pc.touch(addr(1, 0)).is_some());
        assert!(pc.touch(addr(9, 9)).is_none());
        assert!(pc.remove(addr(1, 0)).is_some());
        assert!(pc.is_empty());
    }

    #[test]
    fn lru_order_basic() {
        let mut pc = PageCache::new();
        for b in 0..3 {
            pc.insert(addr(1, b), false, PageVersion(0));
        }
        assert_eq!(pc.pop_lru().unwrap().0, addr(1, 0));
        assert_eq!(pc.pop_lru().unwrap().0, addr(1, 1));
        assert_eq!(pc.pop_lru().unwrap().0, addr(1, 2));
        assert_eq!(pc.pop_lru(), None);
    }

    #[test]
    fn touch_refreshes_lru() {
        let mut pc = PageCache::new();
        for b in 0..3 {
            pc.insert(addr(1, b), false, PageVersion(0));
        }
        pc.touch(addr(1, 0));
        assert_eq!(pc.pop_lru().unwrap().0, addr(1, 1));
        assert_eq!(pc.pop_lru().unwrap().0, addr(1, 2));
        assert_eq!(pc.pop_lru().unwrap().0, addr(1, 0));
    }

    #[test]
    fn mark_dirty_bumps_version_and_lru() {
        let mut pc = PageCache::new();
        pc.insert(addr(1, 0), false, PageVersion(0));
        pc.insert(addr(1, 1), false, PageVersion(0));
        let v = pc.mark_dirty(addr(1, 0)).unwrap();
        assert_eq!(v, PageVersion(1));
        assert_eq!(pc.dirty_len(), 1);
        // Dirtied page became MRU.
        assert_eq!(pc.pop_lru().unwrap().0, addr(1, 1));
        let (a, st) = pc.pop_lru().unwrap();
        assert_eq!(a, addr(1, 0));
        assert!(st.dirty);
        assert_eq!(st.version, PageVersion(1));
        assert_eq!(pc.mark_dirty(addr(9, 9)), None);
    }

    #[test]
    fn mark_clean_clears_dirty_bit() {
        let mut pc = PageCache::new();
        pc.insert(addr(1, 0), true, PageVersion(2));
        pc.mark_clean(addr(1, 0));
        assert!(!pc.peek(addr(1, 0)).unwrap().dirty);
        assert_eq!(pc.peek(addr(1, 0)).unwrap().version, PageVersion(2));
        pc.mark_clean(addr(7, 7)); // no-op
    }

    #[test]
    fn peek_lru_does_not_remove() {
        let mut pc = PageCache::new();
        pc.insert(addr(1, 0), false, PageVersion(0));
        assert_eq!(pc.peek_lru().unwrap().0, addr(1, 0));
        assert_eq!(pc.len(), 1);
    }

    #[test]
    fn peek_lru_skips_stale() {
        let mut pc = PageCache::new();
        pc.insert(addr(1, 0), false, PageVersion(0));
        pc.insert(addr(1, 1), false, PageVersion(0));
        pc.remove(addr(1, 0));
        assert_eq!(pc.peek_lru().unwrap().0, addr(1, 1));
    }

    #[test]
    fn dirty_blocks_of_sorted() {
        let mut pc = PageCache::new();
        pc.insert(addr(1, 5), true, PageVersion(1));
        pc.insert(addr(1, 2), true, PageVersion(1));
        pc.insert(addr(1, 3), false, PageVersion(0));
        pc.insert(addr(2, 0), true, PageVersion(1));
        assert_eq!(pc.dirty_blocks_of(FileId(1)), vec![addr(1, 2), addr(1, 5)]);
    }

    #[test]
    fn remove_file_takes_all_pages() {
        let mut pc = PageCache::new();
        pc.insert(addr(1, 0), false, PageVersion(0));
        pc.insert(addr(1, 1), true, PageVersion(1));
        pc.insert(addr(2, 0), false, PageVersion(0));
        let removed = pc.remove_file(FileId(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(pc.len(), 1);
    }

    #[test]
    fn reinsert_replaces_state() {
        let mut pc = PageCache::new();
        pc.insert(addr(1, 0), false, PageVersion(0));
        pc.insert(addr(1, 0), true, PageVersion(5));
        assert_eq!(pc.len(), 1);
        let st = pc.peek(addr(1, 0)).unwrap();
        assert!(st.dirty);
        assert_eq!(st.version, PageVersion(5));
    }

    #[test]
    fn compaction_keeps_correctness_under_churn() {
        let mut pc = PageCache::new();
        // Touch a small set many times to force compaction paths.
        for b in 0..8 {
            pc.insert(addr(1, b), false, PageVersion(0));
        }
        for round in 0..2000u64 {
            pc.touch(addr(1, round % 8));
        }
        assert_eq!(pc.len(), 8);
        let mut popped = Vec::new();
        while let Some((a, _)) = pc.pop_lru() {
            popped.push(a);
        }
        assert_eq!(popped.len(), 8);
    }

    /// Seeded randomized schedules (in-tree replacement for proptest,
    /// which is unavailable offline).
    mod randomized {
        use super::*;
        use ddc_sim::SimRng;

        /// `len()` always equals the number of live pages, and pop_lru
        /// drains exactly the resident set.
        #[test]
        fn len_matches_drain() {
            let mut rng = SimRng::new(0xBCAC4E);
            for case in 0..200 {
                let mut r = rng.fork(case);
                let mut pc = PageCache::new();
                let mut model = std::collections::HashSet::new();
                for _ in 0..r.range_u64(0, 300) {
                    let a = addr(1, r.range_u64(0, 32));
                    match r.range_u64(0, 3) {
                        0 => {
                            pc.insert(a, false, PageVersion(0));
                            model.insert(a);
                        }
                        1 => {
                            pc.remove(a);
                            model.remove(&a);
                        }
                        _ => {
                            pc.touch(a);
                        }
                    }
                    assert_eq!(pc.len(), model.len() as u64);
                }
                let mut drained = 0;
                while pc.pop_lru().is_some() {
                    drained += 1;
                }
                assert_eq!(drained, model.len());
            }
        }

        /// LRU pops come out in non-decreasing last-touch order.
        #[test]
        fn pop_order_respects_touches() {
            let mut rng = SimRng::new(0xBCAC4F);
            for case in 0..200 {
                let mut r = rng.fork(case);
                let mut pc = PageCache::new();
                let mut last_touch: FxHashMap<BlockAddr, usize> = FxHashMap::default();
                for i in 0..r.range_usize(1, 100) {
                    let a = addr(1, r.range_u64(0, 16));
                    if pc.contains(a) {
                        pc.touch(a);
                    } else {
                        pc.insert(a, false, PageVersion(0));
                    }
                    last_touch.insert(a, i);
                }
                let mut prev = None;
                while let Some((a, _)) = pc.pop_lru() {
                    let t = last_touch[&a];
                    if let Some(p) = prev {
                        assert!(t > p, "pop order must follow last-touch order");
                    }
                    prev = Some(t);
                }
            }
        }
    }
}
