//! Guest operating-system memory model.
//!
//! Models the parts of a Linux guest that DoubleDecker interacts with
//! (paper §2, §4.1):
//!
//! * a **page cache** per cgroup ([`PageCache`]) holding clean and dirty
//!   file pages in LRU order — the guest OS "greedily consumes all
//!   available free memory" for it,
//! * **anonymous memory** per cgroup ([`AnonSpace`]) with swap-in/out —
//!   the resource that hypervisor caches *cannot* help (Table 1's Redis
//!   and MySQL behaviour),
//! * the **cgroup subsystem** ([`Cgroup`], [`CgroupId`]) with hard memory
//!   limits and the DoubleDecker extensions (`<T, W>` policy, pool-id
//!   handshake),
//! * **reclaim**: on cgroup-limit or VM-level pressure the guest evicts
//!   clean page-cache pages (→ cleancache `put`), writes back dirty ones,
//!   and swaps anonymous pages as the last resort — exactly the order that
//!   makes the hypervisor cache an extension of the guest's disk cache,
//! * the **read/write/fsync path** ([`GuestOs`]) with the cleancache
//!   lookup inserted between the page cache and the virtual disk.
//!
//! # Example
//!
//! ```
//! use ddc_cleancache::{CachePolicy, NullCache, VmId};
//! use ddc_guest::{GuestConfig, GuestEnv, GuestOs};
//! use ddc_sim::SimTime;
//! use ddc_storage::{BlockAddr, Device, FileId};
//!
//! let mut guest = GuestOs::new(VmId(0), GuestConfig::with_mem_mb(64));
//! let mut backend = NullCache::new();
//! let mut disk = Device::hdd();
//! let mut env = GuestEnv { backend: &mut backend, disk: &mut disk };
//!
//! let cg = guest.create_cgroup(&mut env, "web", 4096, CachePolicy::default());
//! let r = guest.read(&mut env, SimTime::ZERO, cg, BlockAddr::new(FileId(1), 0));
//! assert_eq!(r.level, ddc_guest::HitLevel::Disk); // cold read
//! let r2 = guest.read(&mut env, r.finish, cg, BlockAddr::new(FileId(1), 0));
//! assert_eq!(r2.level, ddc_guest::HitLevel::PageCache); // now cached
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anon;
mod cgroup;
mod mrc;
mod os;
mod pagecache;

pub use anon::AnonSpace;
pub use cgroup::{Cgroup, CgroupId, CgroupMemStats};
pub use mrc::{MissRatioCurve, MrcEstimator};
pub use os::{GuestConfig, GuestEnv, GuestOs, HitLevel, ReadResult, WriteResult};
pub use pagecache::{PageCache, PageState};
