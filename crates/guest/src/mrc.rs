//! Miss-ratio-curve estimation from inside the guest.
//!
//! The paper (§5.2.1) notes that DoubleDecker's VM-level manager can
//! drive provisioning with "well known techniques like MRC, WSS
//! estimation, SHARDS", and that "the estimation should be done from
//! within the VM". This module implements that building block: a
//! SHARDS-style spatially-sampled reuse-distance tracker that yields a
//! miss-ratio curve — the expected miss ratio of an LRU cache of any
//! given size — for each container's block-access stream.
//!
//! Sampling: an access to address `a` is tracked iff
//! `hash(a) mod P < T`; each sampled reuse distance is scaled by `P/T`.
//! With the default rate of 1/64 the tracker's state and per-access cost
//! are negligible while the curve stays accurate to a few percent
//! (Waldspurger et al., FAST '15 report ~1% error at rates far lower).

use ddc_sim::FxHashMap;
use std::collections::BTreeMap;

use ddc_storage::BlockAddr;

/// Number of histogram buckets in a curve.
const BUCKETS: usize = 64;

/// A miss-ratio curve: estimated miss ratio as a function of cache size
/// (in blocks).
#[derive(Clone, Debug, PartialEq)]
pub struct MissRatioCurve {
    /// Upper cache-size bound of each bucket, in blocks.
    sizes: Vec<u64>,
    /// Estimated miss ratio at each size.
    ratios: Vec<f64>,
    /// Total (unsampled) accesses observed.
    accesses: u64,
}

impl MissRatioCurve {
    /// Estimated miss ratio for a cache of `size` blocks, linearly
    /// interpolated between histogram buckets so that marginal-gain
    /// queries see a smooth gradient (1.0 for an empty curve).
    pub fn miss_ratio_at(&self, size: u64) -> f64 {
        if self.ratios.is_empty() {
            return 1.0;
        }
        let i = self.sizes.partition_point(|&s| s < size);
        if i >= self.ratios.len() {
            return *self.ratios.last().expect("non-empty");
        }
        let (lo_size, lo_ratio) = if i == 0 {
            (0u64, 1.0)
        } else {
            (self.sizes[i - 1], self.ratios[i - 1])
        };
        let (hi_size, hi_ratio) = (self.sizes[i], self.ratios[i]);
        if hi_size == lo_size {
            return hi_ratio;
        }
        let f = (size.saturating_sub(lo_size)) as f64 / (hi_size - lo_size) as f64;
        lo_ratio + (hi_ratio - lo_ratio) * f
    }

    /// The marginal benefit of growing the cache from `from` to `to`
    /// blocks: the drop in miss ratio (≥ 0).
    pub fn marginal_gain(&self, from: u64, to: u64) -> f64 {
        (self.miss_ratio_at(from) - self.miss_ratio_at(to)).max(0.0)
    }

    /// Total accesses the curve is based on.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The smallest cache size whose estimated miss ratio is at most
    /// `target`, if the curve ever gets there — a working-set-size
    /// estimate.
    pub fn size_for_miss_ratio(&self, target: f64) -> Option<u64> {
        self.sizes
            .iter()
            .zip(&self.ratios)
            .find(|(_, &r)| r <= target)
            .map(|(&s, _)| s)
    }
}

/// A SHARDS-style sampled reuse-distance tracker.
///
/// Feed it every block access with [`record`](Self::record); extract the
/// current curve with [`curve`](Self::curve).
///
/// # Example
///
/// ```
/// use ddc_guest::MrcEstimator;
/// use ddc_storage::{BlockAddr, FileId};
///
/// let mut mrc = MrcEstimator::with_sample_rate(1); // sample everything
/// for round in 0..4 {
///     for b in 0..100u64 {
///         mrc.record(BlockAddr::new(FileId(1), b));
///     }
///     let _ = round;
/// }
/// let curve = mrc.curve();
/// // A 100-block cache captures the cyclic scan entirely...
/// assert!(curve.miss_ratio_at(128) < 0.5);
/// // ...a 10-block cache captures none of it.
/// assert!(curve.miss_ratio_at(10) > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct MrcEstimator {
    /// Sampling modulus: track addresses with `hash(a) % rate == 0`.
    rate: u64,
    /// Stamp counter over *sampled* accesses.
    clock: u64,
    /// Last-access stamp per sampled address.
    last_seen: FxHashMap<BlockAddr, u64>,
    /// Live stamps in order (stamp -> addr), for distance ranking.
    stamps: BTreeMap<u64, BlockAddr>,
    /// Histogram of scaled reuse distances.
    histogram: [u64; BUCKETS],
    /// Sampled accesses with no prior access (cold).
    cold: u64,
    /// Total accesses offered (sampled or not).
    accesses: u64,
    /// Cache sizes bounding each bucket.
    bucket_bounds: Vec<u64>,
}

impl MrcEstimator {
    /// Default sampling rate: one in 64 addresses.
    pub fn new() -> MrcEstimator {
        MrcEstimator::with_sample_rate(64)
    }

    /// Creates a tracker sampling one in `rate` addresses (`1` = track
    /// everything; useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn with_sample_rate(rate: u64) -> MrcEstimator {
        assert!(rate > 0, "sample rate must be positive");
        // Geometric bucket bounds from 16 blocks to ~16M blocks.
        let bucket_bounds = (0..BUCKETS)
            .map(|i| {
                let base = 16u64 << (i as u32 / 2);
                base + (base / 2) * (i as u64 % 2)
            })
            .collect();
        MrcEstimator {
            rate,
            clock: 0,
            last_seen: FxHashMap::default(),
            stamps: BTreeMap::new(),
            histogram: [0; BUCKETS],
            cold: 0,
            accesses: 0,
            bucket_bounds,
        }
    }

    /// Records one block access.
    pub fn record(&mut self, addr: BlockAddr) {
        self.accesses += 1;
        if !self.is_sampled(addr) {
            return;
        }
        self.clock += 1;
        let stamp = self.clock;
        match self.last_seen.insert(addr, stamp) {
            Some(prev) => {
                // Sampled reuse distance = number of distinct sampled
                // addresses touched since the previous access; scale by
                // the sampling rate for the true distance.
                let sampled_distance = self.stamps.range(prev + 1..).count() as u64;
                self.stamps.remove(&prev);
                let scaled = sampled_distance.saturating_mul(self.rate);
                let bucket = self
                    .bucket_bounds
                    .partition_point(|&b| b < scaled.max(1))
                    .min(BUCKETS - 1);
                self.histogram[bucket] += 1;
            }
            None => {
                self.cold += 1;
            }
        }
        self.stamps.insert(stamp, addr);
        // Bound memory: evict the oldest sampled address when tracking
        // too many (treat future reuse of it as cold — a standard SHARDS
        // s-max policy).
        if self.last_seen.len() > 64 * 1024 {
            if let Some((&oldest, &addr)) = self.stamps.iter().next() {
                self.stamps.remove(&oldest);
                self.last_seen.remove(&addr);
            }
        }
    }

    fn is_sampled(&self, addr: BlockAddr) -> bool {
        if self.rate == 1 {
            return true;
        }
        // Fibonacci hash of the (file, block) pair.
        let mut h = addr.file.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= addr.block.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h = (h ^ (h >> 29)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h.is_multiple_of(self.rate)
    }

    /// Builds the miss-ratio curve from the distances seen so far.
    pub fn curve(&self) -> MissRatioCurve {
        let reuses: u64 = self.histogram.iter().sum();
        let total = reuses + self.cold;
        if total == 0 {
            return MissRatioCurve {
                sizes: self.bucket_bounds.clone(),
                ratios: vec![1.0; BUCKETS],
                accesses: self.accesses,
            };
        }
        // Miss ratio at size s = (reuses with distance > s + cold) / total.
        let mut cumulative = 0u64;
        let ratios = self
            .histogram
            .iter()
            .map(|&count| {
                cumulative += count;
                (reuses - cumulative + self.cold) as f64 / total as f64
            })
            .collect();
        MissRatioCurve {
            sizes: self.bucket_bounds.clone(),
            ratios,
            accesses: self.accesses,
        }
    }

    /// Discards history (e.g. after a phase change).
    pub fn reset(&mut self) {
        self.clock = 0;
        self.last_seen.clear();
        self.stamps.clear();
        self.histogram = [0; BUCKETS];
        self.cold = 0;
        self.accesses = 0;
    }
}

impl Default for MrcEstimator {
    fn default() -> Self {
        MrcEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_storage::FileId;

    fn addr(b: u64) -> BlockAddr {
        BlockAddr::new(FileId(1), b)
    }

    fn cyclic_scan(mrc: &mut MrcEstimator, set: u64, rounds: u64) {
        for _ in 0..rounds {
            for b in 0..set {
                mrc.record(addr(b));
            }
        }
    }

    #[test]
    fn cyclic_scan_has_sharp_knee() {
        let mut mrc = MrcEstimator::with_sample_rate(1);
        cyclic_scan(&mut mrc, 200, 10);
        let curve = mrc.curve();
        // LRU on a cyclic scan: miss everything below the set size,
        // hit everything above it.
        assert!(curve.miss_ratio_at(64) > 0.9, "below the knee");
        assert!(curve.miss_ratio_at(512) < 0.2, "above the knee");
        assert_eq!(curve.accesses(), 2000);
    }

    #[test]
    fn hot_loop_is_cache_friendly_at_small_sizes() {
        let mut mrc = MrcEstimator::with_sample_rate(1);
        cyclic_scan(&mut mrc, 8, 100);
        let curve = mrc.curve();
        assert!(curve.miss_ratio_at(16) < 0.05);
    }

    #[test]
    fn marginal_gain_positive_at_the_knee() {
        let mut mrc = MrcEstimator::with_sample_rate(1);
        cyclic_scan(&mut mrc, 200, 10);
        let curve = mrc.curve();
        let at_knee = curve.marginal_gain(64, 512);
        let past_knee = curve.marginal_gain(1024, 4096);
        assert!(at_knee > 0.5, "crossing the knee buys a lot: {at_knee}");
        assert!(past_knee < 0.1, "past the knee buys little: {past_knee}");
    }

    #[test]
    fn size_for_miss_ratio_finds_working_set() {
        let mut mrc = MrcEstimator::with_sample_rate(1);
        cyclic_scan(&mut mrc, 200, 10);
        let curve = mrc.curve();
        let wss = curve.size_for_miss_ratio(0.2).expect("reachable");
        assert!(
            (200..=512).contains(&wss),
            "WSS estimate {wss} should bracket the true 200-block set"
        );
        assert_eq!(curve.size_for_miss_ratio(0.0), None, "never zero (cold)");
    }

    #[test]
    fn empty_curve_is_all_misses() {
        let mrc = MrcEstimator::new();
        let curve = mrc.curve();
        assert_eq!(curve.miss_ratio_at(0), 1.0);
        assert_eq!(curve.miss_ratio_at(1 << 40), 1.0);
    }

    #[test]
    fn sampled_estimate_tracks_full_estimate() {
        // Zipf-ish mixture: hot 64 blocks + occasional cold sweep.
        let mut full = MrcEstimator::with_sample_rate(1);
        let mut sampled = MrcEstimator::with_sample_rate(8);
        let mut rng = ddc_sim::SimRng::new(11);
        for _ in 0..200_000 {
            let b = if rng.chance(0.8) {
                rng.range_u64(0, 64)
            } else {
                rng.range_u64(0, 8192)
            };
            full.record(addr(b));
            sampled.record(addr(b));
        }
        let cf = full.curve();
        let cs = sampled.curve();
        for size in [32, 128, 1024, 8192] {
            let err = (cf.miss_ratio_at(size) - cs.miss_ratio_at(size)).abs();
            assert!(
                err < 0.12,
                "sampled curve within 12% of full at size {size} (err {err:.3})"
            );
        }
    }

    #[test]
    fn reset_clears_history() {
        let mut mrc = MrcEstimator::with_sample_rate(1);
        cyclic_scan(&mut mrc, 50, 5);
        mrc.reset();
        assert_eq!(mrc.curve().accesses(), 0);
        assert_eq!(mrc.curve().miss_ratio_at(1024), 1.0);
    }

    #[test]
    fn monotone_nonincreasing_curve() {
        let mut mrc = MrcEstimator::with_sample_rate(1);
        let mut rng = ddc_sim::SimRng::new(3);
        for _ in 0..50_000 {
            mrc.record(addr(rng.range_u64(0, 4096)));
        }
        let curve = mrc.curve();
        let mut prev = 1.0f64;
        for size in [4, 16, 64, 256, 1024, 4096, 16384] {
            let r = curve.miss_ratio_at(size);
            assert!(r <= prev + 1e-9, "miss ratio must not increase with size");
            prev = r;
        }
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn zero_rate_rejected() {
        let _ = MrcEstimator::with_sample_rate(0);
    }
}
