//! The cgroup subsystem with the DoubleDecker extensions.

use std::fmt;

use ddc_cleancache::{CachePolicy, PoolId};

use crate::{AnonSpace, MrcEstimator, PageCache};

/// In-guest identifier of one application container's cgroup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CgroupId(pub u32);

impl fmt::Display for CgroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cg{}", self.0)
    }
}

/// Point-in-time memory statistics of one cgroup — the guest-side numbers
/// of the paper's Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CgroupMemStats {
    /// Resident anonymous pages.
    pub anon_resident_pages: u64,
    /// Allocated anonymous pages (resident + swapped).
    pub anon_allocated_pages: u64,
    /// Anonymous pages currently on swap.
    pub swapped_pages: u64,
    /// Cumulative swap-outs.
    pub swap_out_total: u64,
    /// Cumulative swap-ins (major faults).
    pub swap_in_total: u64,
    /// Resident page-cache pages (clean + dirty).
    pub page_cache_pages: u64,
    /// Dirty page-cache pages.
    pub dirty_pages: u64,
    /// The cgroup's configured hard limit.
    pub mem_limit_pages: u64,
}

impl CgroupMemStats {
    /// Total charged memory: anonymous resident + page cache.
    pub fn charged_pages(&self) -> u64 {
        self.anon_resident_pages + self.page_cache_pages
    }
}

/// One application container's cgroup: hard memory limit, the
/// DoubleDecker `<T, W>` cache policy, and the container's memory state.
#[derive(Clone, Debug)]
pub struct Cgroup {
    name: String,
    mem_limit_pages: u64,
    policy: CachePolicy,
    pool: Option<PoolId>,
    /// The container's file page cache.
    pub page_cache: PageCache,
    /// The container's anonymous memory.
    pub anon: AnonSpace,
    /// Reads served by [page cache, cleancache, disk] respectively.
    pub reads_by_level: [u64; 3],
    /// Optional in-guest miss-ratio-curve estimator (paper §5.2.1:
    /// MRC/WSS estimation "done from within the VM").
    pub mrc: Option<MrcEstimator>,
}

impl Cgroup {
    /// Creates a cgroup with a hard memory limit (in pages) and a cache
    /// policy.
    pub fn new(name: impl Into<String>, mem_limit_pages: u64, policy: CachePolicy) -> Cgroup {
        Cgroup {
            name: name.into(),
            mem_limit_pages,
            policy,
            pool: None,
            page_cache: PageCache::new(),
            anon: AnonSpace::new(),
            reads_by_level: [0; 3],
            mrc: None,
        }
    }

    /// The cgroup's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hard memory limit in pages.
    pub fn mem_limit_pages(&self) -> u64 {
        self.mem_limit_pages
    }

    /// Updates the hard memory limit. The caller is responsible for
    /// reclaiming if the cgroup is now over limit.
    pub fn set_mem_limit_pages(&mut self, pages: u64) {
        self.mem_limit_pages = pages;
    }

    /// The `<T, W>` hypervisor cache policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Updates the policy (the caller propagates SET_CG_WEIGHT).
    pub fn set_policy(&mut self, policy: CachePolicy) {
        self.policy = policy;
    }

    /// The hypervisor cache pool assigned at creation, if caching is on.
    pub fn pool(&self) -> Option<PoolId> {
        self.pool
    }

    /// Records the pool id returned by the CREATE_CGROUP handshake.
    pub fn set_pool(&mut self, pool: Option<PoolId>) {
        self.pool = pool;
    }

    /// Pages currently charged to the cgroup (anon resident + page cache).
    pub fn charged_pages(&self) -> u64 {
        self.anon.resident() + self.page_cache.len()
    }

    /// Whether the cgroup is at or over its hard limit.
    pub fn at_limit(&self) -> bool {
        self.charged_pages() >= self.mem_limit_pages
    }

    /// Memory statistics snapshot.
    pub fn mem_stats(&self) -> CgroupMemStats {
        CgroupMemStats {
            anon_resident_pages: self.anon.resident(),
            anon_allocated_pages: self.anon.allocated(),
            swapped_pages: self.anon.swapped(),
            swap_out_total: self.anon.swap_outs(),
            swap_in_total: self.anon.swap_ins(),
            page_cache_pages: self.page_cache.len(),
            dirty_pages: self.page_cache.dirty_len(),
            mem_limit_pages: self.mem_limit_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::PageVersion;
    use ddc_storage::{BlockAddr, FileId};

    #[test]
    fn construction_and_accessors() {
        let cg = Cgroup::new("web", 1024, CachePolicy::mem(40));
        assert_eq!(cg.name(), "web");
        assert_eq!(cg.mem_limit_pages(), 1024);
        assert_eq!(cg.policy(), CachePolicy::mem(40));
        assert_eq!(cg.pool(), None);
        assert_eq!(cg.charged_pages(), 0);
        assert!(!cg.at_limit());
    }

    #[test]
    fn charged_pages_counts_both_kinds() {
        let mut cg = Cgroup::new("c", 10, CachePolicy::default());
        cg.anon.grow(4);
        cg.anon.touch(0);
        cg.anon.touch(1);
        cg.page_cache
            .insert(BlockAddr::new(FileId(1), 0), false, PageVersion(0));
        assert_eq!(cg.charged_pages(), 3);
    }

    #[test]
    fn at_limit_detection() {
        let mut cg = Cgroup::new("c", 2, CachePolicy::default());
        cg.anon.grow(2);
        cg.anon.touch(0);
        assert!(!cg.at_limit());
        cg.anon.touch(1);
        assert!(cg.at_limit());
        cg.set_mem_limit_pages(10);
        assert!(!cg.at_limit());
    }

    #[test]
    fn stats_snapshot() {
        let mut cg = Cgroup::new("c", 100, CachePolicy::default());
        cg.anon.grow(5);
        cg.anon.touch(0);
        cg.anon.touch(1);
        cg.anon.swap_out_lru();
        cg.page_cache
            .insert(BlockAddr::new(FileId(1), 0), true, PageVersion(1));
        let s = cg.mem_stats();
        assert_eq!(s.anon_resident_pages, 1);
        assert_eq!(s.anon_allocated_pages, 5);
        assert_eq!(s.swapped_pages, 4);
        assert_eq!(s.swap_out_total, 1);
        assert_eq!(s.page_cache_pages, 1);
        assert_eq!(s.dirty_pages, 1);
        assert_eq!(s.mem_limit_pages, 100);
        assert_eq!(s.charged_pages(), 2);
    }

    #[test]
    fn policy_and_pool_updates() {
        let mut cg = Cgroup::new("c", 100, CachePolicy::default());
        cg.set_policy(CachePolicy::ssd(70));
        assert_eq!(cg.policy(), CachePolicy::ssd(70));
        cg.set_pool(Some(PoolId(4)));
        assert_eq!(cg.pool(), Some(PoolId(4)));
    }

    #[test]
    fn display_id() {
        assert_eq!(CgroupId(3).to_string(), "cg3");
    }
}
