//! Discrete-event simulation primitives for the DoubleDecker reproduction.
//!
//! This crate provides the substrate every other crate in the workspace is
//! built on:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time in nanoseconds,
//! * [`SimRng`] — a small, deterministic, portable PRNG plus the sampling
//!   helpers the workload generators need,
//! * [`QueuedResource`] / [`MultiQueuedResource`] — FCFS device-channel
//!   models used by the storage crate,
//! * [`EventQueue`] — a time-ordered queue for scheduled reconfiguration
//!   events (dynamic policy experiments),
//! * [`TimeSeries`] / [`Sampler`] — occupancy-over-time probes used to
//!   regenerate the paper's figures,
//! * [`FaultSchedule`] — seeded, schedulable fault windows (transient
//!   errors, latency spikes, brownouts, partitions, permanent death)
//!   consulted by fallible components for reproducible failure
//!   experiments,
//! * [`CircuitBreaker`] — the shared trip/probe/backoff state machine
//!   behind the put breaker, the SSD quarantine and the remote client,
//! * [`FxHashMap`] / [`FxHasher`] — a fast, deterministic (seed-free)
//!   hasher for hot-path maps keyed by internal ids.
//!
//! # Example
//!
//! ```
//! use ddc_sim::{SimTime, SimDuration, QueuedResource};
//!
//! let mut disk = QueuedResource::new();
//! let t0 = SimTime::ZERO;
//! // Two requests issued at the same instant are serialized by the queue.
//! let a = disk.access(t0, SimDuration::from_micros(100));
//! let b = disk.access(t0, SimDuration::from_micros(100));
//! assert_eq!(a.finish, t0 + SimDuration::from_micros(100));
//! assert_eq!(b.finish, t0 + SimDuration::from_micros(200));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod event;
mod faults;
pub mod hash;
mod resource;
mod rng;
mod series;
mod time;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use event::EventQueue;
pub use faults::{keyed_unit, FaultDecision, FaultKind, FaultSchedule, FaultWindow};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use resource::{Grant, MultiQueuedResource, QueuedResource};
pub use rng::SimRng;
pub use series::{Sampler, SeriesPoint, TimeSeries};
pub use time::{SimDuration, SimTime};
