//! Seeded, schedulable fault generators for the simulation.
//!
//! A [`FaultSchedule`] is attached to a component (a device, a hypercall
//! channel) and consulted once per operation with the current simulation
//! time. Each schedule owns its own [`SimRng`], so fault decisions are a
//! pure function of `(seed, sequence of consulted times)` — two runs of
//! the same scenario with the same seed produce byte-identical fault
//! behaviour, which is what makes fault experiments reproducible.
//!
//! Four fault shapes cover the failure modes the DoubleDecker stack has
//! to degrade gracefully through:
//!
//! * [`FaultKind::TransientErrors`] — each operation inside the window
//!   fails independently with probability `rate` (media errors, flaky
//!   links),
//! * [`FaultKind::LatencySpike`] — operations complete but take `extra`
//!   additional time (SSD garbage-collection pauses),
//! * [`FaultKind::Brownout`] — the combination: some operations fail,
//!   the survivors are slow (a device struggling before recovery),
//! * [`FaultKind::Death`] — permanent failure from the window start on;
//!   once a schedule has decided `Death` it never recovers, even if the
//!   window nominally closes.
//!
//! ```
//! use ddc_sim::{FaultDecision, FaultKind, FaultSchedule, SimDuration, SimTime};
//!
//! let mut faults = FaultSchedule::new(42).with_window(
//!     SimTime::from_secs(10),
//!     Some(SimTime::from_secs(20)),
//!     FaultKind::TransientErrors { rate: 1.0 },
//! );
//! assert_eq!(faults.decide(SimTime::from_secs(5)), FaultDecision::Ok);
//! assert_eq!(faults.decide(SimTime::from_secs(15)), FaultDecision::Error);
//! assert_eq!(faults.decide(SimTime::from_secs(25)), FaultDecision::Ok);
//! ```

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// The shape of a fault window. See the module docs for semantics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Each operation fails independently with probability `rate`.
    TransientErrors {
        /// Per-operation failure probability in `[0, 1]`.
        rate: f64,
    },
    /// Operations succeed but take `extra` additional service time.
    LatencySpike {
        /// Additional latency added to every operation in the window.
        extra: SimDuration,
    },
    /// Operations fail with probability `rate`; survivors are slowed
    /// by `extra` (a browning-out device).
    Brownout {
        /// Per-operation failure probability in `[0, 1]`.
        rate: f64,
        /// Additional latency for operations that do succeed.
        extra: SimDuration,
    },
    /// Permanent device death: every operation at or after the window
    /// start fails, forever (the window end, if any, is ignored).
    Death,
}

/// One fault window on a schedule's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// First instant (inclusive) at which the window applies.
    pub from: SimTime,
    /// First instant at which the window no longer applies; `None`
    /// means the window stays open forever.
    pub until: Option<SimTime>,
    /// What happens to operations inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    fn contains(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|end| now < end)
    }
}

/// The outcome of consulting a [`FaultSchedule`] for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// The operation proceeds normally.
    Ok,
    /// The operation fails.
    Error,
    /// The operation succeeds but takes the given additional time.
    Slow(SimDuration),
}

/// A deterministic, seeded schedule of fault windows for one component.
///
/// The schedule is consulted via [`decide`](FaultSchedule::decide) once
/// per operation. The internal RNG is only advanced by probabilistic
/// windows ([`FaultKind::TransientErrors`] / [`FaultKind::Brownout`]),
/// so attaching a schedule whose windows never overlap the workload
/// does not perturb anything.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
    rng: SimRng,
    dead: bool,
}

impl FaultSchedule {
    /// A schedule with no windows (never faults) and the given RNG seed.
    pub fn new(seed: u64) -> FaultSchedule {
        FaultSchedule {
            windows: Vec::new(),
            rng: SimRng::new(seed),
            dead: false,
        }
    }

    /// Adds a fault window. Overlapping windows are legal; the earliest
    /// window in insertion order that contains the instant wins.
    pub fn add_window(&mut self, from: SimTime, until: Option<SimTime>, kind: FaultKind) {
        self.windows.push(FaultWindow { from, until, kind });
    }

    /// Builder-style [`add_window`](FaultSchedule::add_window).
    pub fn with_window(
        mut self,
        from: SimTime,
        until: Option<SimTime>,
        kind: FaultKind,
    ) -> FaultSchedule {
        self.add_window(from, until, kind);
        self
    }

    /// True once the schedule has decided [`FaultKind::Death`]; the
    /// component never recovers.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Decides the fate of one operation issued at `now`.
    pub fn decide(&mut self, now: SimTime) -> FaultDecision {
        if self.dead {
            return FaultDecision::Error;
        }
        // Death windows apply from their start regardless of containment
        // (the end of a death window is meaningless).
        if self
            .windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::Death) && now >= w.from)
        {
            self.dead = true;
            return FaultDecision::Error;
        }
        let Some(window) = self.windows.iter().find(|w| w.contains(now)) else {
            return FaultDecision::Ok;
        };
        match window.kind {
            FaultKind::TransientErrors { rate } => {
                if self.rng.chance(rate) {
                    FaultDecision::Error
                } else {
                    FaultDecision::Ok
                }
            }
            FaultKind::LatencySpike { extra } => FaultDecision::Slow(extra),
            FaultKind::Brownout { rate, extra } => {
                if self.rng.chance(rate) {
                    FaultDecision::Error
                } else {
                    FaultDecision::Slow(extra)
                }
            }
            FaultKind::Death => unreachable!("death windows handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_schedule_never_faults() {
        let mut f = FaultSchedule::new(1);
        for s in 0..100 {
            assert_eq!(f.decide(secs(s)), FaultDecision::Ok);
        }
    }

    #[test]
    fn window_bounds_are_half_open() {
        let mut f = FaultSchedule::new(1).with_window(
            secs(10),
            Some(secs(20)),
            FaultKind::LatencySpike {
                extra: SimDuration::from_millis(5),
            },
        );
        assert_eq!(f.decide(secs(9)), FaultDecision::Ok);
        assert_eq!(
            f.decide(secs(10)),
            FaultDecision::Slow(SimDuration::from_millis(5))
        );
        assert_eq!(
            f.decide(SimTime::from_nanos(secs(20).as_nanos() - 1)),
            FaultDecision::Slow(SimDuration::from_millis(5))
        );
        assert_eq!(f.decide(secs(20)), FaultDecision::Ok);
    }

    #[test]
    fn transient_rate_one_always_errors_rate_zero_never() {
        let mut all = FaultSchedule::new(2).with_window(
            secs(0),
            None,
            FaultKind::TransientErrors { rate: 1.0 },
        );
        let mut none = FaultSchedule::new(2).with_window(
            secs(0),
            None,
            FaultKind::TransientErrors { rate: 0.0 },
        );
        for s in 0..50 {
            assert_eq!(all.decide(secs(s)), FaultDecision::Error);
            assert_eq!(none.decide(secs(s)), FaultDecision::Ok);
        }
    }

    #[test]
    fn death_is_permanent() {
        let mut f = FaultSchedule::new(3).with_window(secs(10), Some(secs(20)), FaultKind::Death);
        assert_eq!(f.decide(secs(5)), FaultDecision::Ok);
        assert!(!f.is_dead());
        assert_eq!(f.decide(secs(15)), FaultDecision::Error);
        assert!(f.is_dead());
        // Well past the window end: still dead.
        assert_eq!(f.decide(secs(1000)), FaultDecision::Error);
    }

    #[test]
    fn same_seed_same_decisions() {
        let make = || {
            FaultSchedule::new(0xFA01).with_window(
                secs(0),
                None,
                FaultKind::Brownout {
                    rate: 0.4,
                    extra: SimDuration::from_micros(250),
                },
            )
        };
        let (mut a, mut b) = (make(), make());
        for s in 0..200 {
            assert_eq!(a.decide(secs(s)), b.decide(secs(s)));
        }
    }

    #[test]
    fn brownout_mixes_errors_and_slowness() {
        let mut f = FaultSchedule::new(7).with_window(
            secs(0),
            None,
            FaultKind::Brownout {
                rate: 0.5,
                extra: SimDuration::from_micros(100),
            },
        );
        let decisions: Vec<FaultDecision> = (0..100).map(|s| f.decide(secs(s))).collect();
        assert!(decisions.contains(&FaultDecision::Error));
        assert!(decisions
            .iter()
            .any(|d| matches!(d, FaultDecision::Slow(_))));
    }

    #[test]
    fn rng_untouched_outside_windows() {
        // Decisions outside any window must not consume randomness:
        // inserting quiet-period consultations cannot change the
        // in-window decision stream.
        let make = || {
            FaultSchedule::new(9).with_window(
                secs(100),
                Some(secs(200)),
                FaultKind::TransientErrors { rate: 0.5 },
            )
        };
        let mut a = make();
        let mut b = make();
        for s in 0..100 {
            assert_eq!(a.decide(secs(s)), FaultDecision::Ok);
        }
        for s in 100..150 {
            assert_eq!(a.decide(secs(s)), b.decide(secs(s)));
        }
    }
}
