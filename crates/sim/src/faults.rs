//! Seeded, schedulable fault generators for the simulation.
//!
//! A [`FaultSchedule`] is attached to a component (a device, a hypercall
//! channel) and consulted once per operation with the current simulation
//! time. Each schedule owns its own [`SimRng`], so fault decisions are a
//! pure function of `(seed, sequence of consulted times)` — two runs of
//! the same scenario with the same seed produce byte-identical fault
//! behaviour, which is what makes fault experiments reproducible.
//!
//! Seven fault shapes cover the failure modes the DoubleDecker stack has
//! to degrade gracefully through:
//!
//! * [`FaultKind::TransientErrors`] — each operation inside the window
//!   fails independently with probability `rate` (media errors, flaky
//!   links),
//! * [`FaultKind::LatencySpike`] — operations complete but take `extra`
//!   additional time (SSD garbage-collection pauses),
//! * [`FaultKind::Brownout`] — the combination: some operations fail,
//!   the survivors are slow (a device struggling before recovery),
//! * [`FaultKind::Death`] — permanent failure from the window start on;
//!   once a schedule has decided `Death` it never recovers, even if the
//!   window nominally closes,
//! * [`FaultKind::Partition`] — total outage for the duration of the
//!   window; unlike `Death` the component recovers the instant the
//!   window closes (a severed network link healing),
//! * [`FaultKind::RemoteBrownout`] — each operation hangs for `stall`
//!   and then fails with probability `rate` (a congested or browning-out
//!   remote that eats the request's deadline before erroring),
//! * [`FaultKind::EdgeCacheFlap`] — operations succeed but are forced
//!   past the edge cache to the origin with probability `rate` (an edge
//!   node flapping in and out of the CDN pool).
//!
//! Probabilistic windows draw from the schedule's own RNG through
//! [`decide`](FaultSchedule::decide), which makes decisions a function of
//! consultation *order*. Components consulted concurrently from several
//! threads (the remote chunk store) instead use
//! [`decide_keyed`](FaultSchedule::decide_keyed), which derives each
//! decision statelessly from `(seed, key)` — the same operation key gets
//! the same fate regardless of which thread asks first or how many
//! workers the run uses.
//!
//! ```
//! use ddc_sim::{FaultDecision, FaultKind, FaultSchedule, SimDuration, SimTime};
//!
//! let mut faults = FaultSchedule::new(42).with_window(
//!     SimTime::from_secs(10),
//!     Some(SimTime::from_secs(20)),
//!     FaultKind::TransientErrors { rate: 1.0 },
//! );
//! assert_eq!(faults.decide(SimTime::from_secs(5)), FaultDecision::Ok);
//! assert_eq!(faults.decide(SimTime::from_secs(15)), FaultDecision::Error);
//! assert_eq!(faults.decide(SimTime::from_secs(25)), FaultDecision::Ok);
//! ```

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// The shape of a fault window. See the module docs for semantics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Each operation fails independently with probability `rate`.
    TransientErrors {
        /// Per-operation failure probability in `[0, 1]`.
        rate: f64,
    },
    /// Operations succeed but take `extra` additional service time.
    LatencySpike {
        /// Additional latency added to every operation in the window.
        extra: SimDuration,
    },
    /// Operations fail with probability `rate`; survivors are slowed
    /// by `extra` (a browning-out device).
    Brownout {
        /// Per-operation failure probability in `[0, 1]`.
        rate: f64,
        /// Additional latency for operations that do succeed.
        extra: SimDuration,
    },
    /// Permanent device death: every operation at or after the window
    /// start fails, forever (the window end, if any, is ignored).
    Death,
    /// Total outage for exactly the window: every operation inside it
    /// fails, and the component is healthy again the instant the window
    /// closes (a network partition healing).
    Partition,
    /// Each operation stalls for `stall` and then fails with probability
    /// `rate`; survivors still pay the stall (a remote hanging until the
    /// caller's deadline instead of failing fast).
    RemoteBrownout {
        /// Per-operation failure probability in `[0, 1]`.
        rate: f64,
        /// Hang charged to every operation in the window, failed or not.
        stall: SimDuration,
    },
    /// Operations succeed, but with probability `rate` they are forced
    /// past the edge cache to the origin (an edge node flapping out of
    /// the CDN pool). Non-remote components treat this as `Ok`.
    EdgeCacheFlap {
        /// Per-operation probability of a forced origin fetch.
        rate: f64,
    },
}

/// One fault window on a schedule's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// First instant (inclusive) at which the window applies.
    pub from: SimTime,
    /// First instant at which the window no longer applies; `None`
    /// means the window stays open forever.
    pub until: Option<SimTime>,
    /// What happens to operations inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    fn contains(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|end| now < end)
    }
}

/// The outcome of consulting a [`FaultSchedule`] for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// The operation proceeds normally.
    Ok,
    /// The operation fails.
    Error,
    /// The operation succeeds but takes the given additional time.
    Slow(SimDuration),
    /// The operation hangs for the given time and then fails (a stalled
    /// remote eating the caller's deadline). Components without a
    /// deadline concept treat this as a slow `Error`.
    Stall(SimDuration),
    /// The operation succeeds but bypasses the edge cache (origin-path
    /// latency). Non-remote components treat this as `Ok`.
    EdgeMiss,
}

/// A deterministic, seeded schedule of fault windows for one component.
///
/// The schedule is consulted via [`decide`](FaultSchedule::decide) once
/// per operation. The internal RNG is only advanced by probabilistic
/// windows ([`FaultKind::TransientErrors`] / [`FaultKind::Brownout`]),
/// so attaching a schedule whose windows never overlap the workload
/// does not perturb anything.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
    rng: SimRng,
    seed: u64,
    dead: bool,
}

/// SplitMix64 finalizer: a stateless, well-mixed hash of one word, used
/// to derive keyed fault decisions and retry jitter without consuming
/// RNG state (so consultation order cannot perturb outcomes).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform float in `[0, 1)` derived statelessly from `(seed, key)`.
/// Public so fault-tolerant clients (retry jitter, hedge decisions) can
/// share the schedule's keyed randomness basis.
pub fn keyed_unit(seed: u64, key: u64) -> f64 {
    (mix64(mix64(seed) ^ key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultSchedule {
    /// A schedule with no windows (never faults) and the given RNG seed.
    pub fn new(seed: u64) -> FaultSchedule {
        FaultSchedule {
            windows: Vec::new(),
            rng: SimRng::new(seed),
            seed,
            dead: false,
        }
    }

    /// Adds a fault window. Overlapping windows are legal; the earliest
    /// window in insertion order that contains the instant wins.
    pub fn add_window(&mut self, from: SimTime, until: Option<SimTime>, kind: FaultKind) {
        self.windows.push(FaultWindow { from, until, kind });
    }

    /// Builder-style [`add_window`](FaultSchedule::add_window).
    pub fn with_window(
        mut self,
        from: SimTime,
        until: Option<SimTime>,
        kind: FaultKind,
    ) -> FaultSchedule {
        self.add_window(from, until, kind);
        self
    }

    /// True once the schedule has decided [`FaultKind::Death`]; the
    /// component never recovers.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Decides the fate of one operation issued at `now`.
    pub fn decide(&mut self, now: SimTime) -> FaultDecision {
        if self.dead {
            return FaultDecision::Error;
        }
        // Death windows apply from their start regardless of containment
        // (the end of a death window is meaningless).
        if self
            .windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::Death) && now >= w.from)
        {
            self.dead = true;
            return FaultDecision::Error;
        }
        let Some(window) = self.windows.iter().find(|w| w.contains(now)) else {
            return FaultDecision::Ok;
        };
        match window.kind {
            FaultKind::TransientErrors { rate } => {
                if self.rng.chance(rate) {
                    FaultDecision::Error
                } else {
                    FaultDecision::Ok
                }
            }
            FaultKind::LatencySpike { extra } => FaultDecision::Slow(extra),
            FaultKind::Brownout { rate, extra } => {
                if self.rng.chance(rate) {
                    FaultDecision::Error
                } else {
                    FaultDecision::Slow(extra)
                }
            }
            FaultKind::Partition => FaultDecision::Error,
            FaultKind::RemoteBrownout { rate, stall } => {
                if self.rng.chance(rate) {
                    FaultDecision::Stall(stall)
                } else {
                    FaultDecision::Slow(stall)
                }
            }
            FaultKind::EdgeCacheFlap { rate } => {
                if self.rng.chance(rate) {
                    FaultDecision::EdgeMiss
                } else {
                    FaultDecision::Ok
                }
            }
            FaultKind::Death => unreachable!("death windows handled above"),
        }
    }

    /// Decides the fate of one operation issued at `now`, identified by a
    /// caller-chosen `key`, without consuming any RNG state.
    ///
    /// Probabilistic windows hash `(seed, key)` through [`keyed_unit`]
    /// instead of drawing from the sequential RNG, so the decision is a
    /// pure function of the schedule and the operation — components
    /// consulted from many threads (the remote chunk store) get
    /// identical fault behaviour regardless of consultation order or
    /// worker count. Callers must derive `key` from stable operation
    /// identity (chunk address, attempt number), never from wall-clock
    /// or thread ids.
    ///
    /// `Death` windows are honoured from their start onward (the end is
    /// ignored, matching [`decide`](FaultSchedule::decide)) but do not
    /// latch [`is_dead`](FaultSchedule::is_dead): keyed consultation is
    /// read-only.
    pub fn decide_keyed(&self, now: SimTime, key: u64) -> FaultDecision {
        if self.dead {
            return FaultDecision::Error;
        }
        if self
            .windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::Death) && now >= w.from)
        {
            return FaultDecision::Error;
        }
        let Some(window) = self.windows.iter().find(|w| w.contains(now)) else {
            return FaultDecision::Ok;
        };
        let chance = |rate: f64| keyed_unit(self.seed, key) < rate;
        match window.kind {
            FaultKind::TransientErrors { rate } => {
                if chance(rate) {
                    FaultDecision::Error
                } else {
                    FaultDecision::Ok
                }
            }
            FaultKind::LatencySpike { extra } => FaultDecision::Slow(extra),
            FaultKind::Brownout { rate, extra } => {
                if chance(rate) {
                    FaultDecision::Error
                } else {
                    FaultDecision::Slow(extra)
                }
            }
            FaultKind::Partition => FaultDecision::Error,
            FaultKind::RemoteBrownout { rate, stall } => {
                if chance(rate) {
                    FaultDecision::Stall(stall)
                } else {
                    FaultDecision::Slow(stall)
                }
            }
            FaultKind::EdgeCacheFlap { rate } => {
                if chance(rate) {
                    FaultDecision::EdgeMiss
                } else {
                    FaultDecision::Ok
                }
            }
            FaultKind::Death => unreachable!("death windows handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_schedule_never_faults() {
        let mut f = FaultSchedule::new(1);
        for s in 0..100 {
            assert_eq!(f.decide(secs(s)), FaultDecision::Ok);
        }
    }

    #[test]
    fn window_bounds_are_half_open() {
        let mut f = FaultSchedule::new(1).with_window(
            secs(10),
            Some(secs(20)),
            FaultKind::LatencySpike {
                extra: SimDuration::from_millis(5),
            },
        );
        assert_eq!(f.decide(secs(9)), FaultDecision::Ok);
        assert_eq!(
            f.decide(secs(10)),
            FaultDecision::Slow(SimDuration::from_millis(5))
        );
        assert_eq!(
            f.decide(SimTime::from_nanos(secs(20).as_nanos() - 1)),
            FaultDecision::Slow(SimDuration::from_millis(5))
        );
        assert_eq!(f.decide(secs(20)), FaultDecision::Ok);
    }

    #[test]
    fn transient_rate_one_always_errors_rate_zero_never() {
        let mut all = FaultSchedule::new(2).with_window(
            secs(0),
            None,
            FaultKind::TransientErrors { rate: 1.0 },
        );
        let mut none = FaultSchedule::new(2).with_window(
            secs(0),
            None,
            FaultKind::TransientErrors { rate: 0.0 },
        );
        for s in 0..50 {
            assert_eq!(all.decide(secs(s)), FaultDecision::Error);
            assert_eq!(none.decide(secs(s)), FaultDecision::Ok);
        }
    }

    #[test]
    fn death_is_permanent() {
        let mut f = FaultSchedule::new(3).with_window(secs(10), Some(secs(20)), FaultKind::Death);
        assert_eq!(f.decide(secs(5)), FaultDecision::Ok);
        assert!(!f.is_dead());
        assert_eq!(f.decide(secs(15)), FaultDecision::Error);
        assert!(f.is_dead());
        // Well past the window end: still dead.
        assert_eq!(f.decide(secs(1000)), FaultDecision::Error);
    }

    #[test]
    fn same_seed_same_decisions() {
        let make = || {
            FaultSchedule::new(0xFA01).with_window(
                secs(0),
                None,
                FaultKind::Brownout {
                    rate: 0.4,
                    extra: SimDuration::from_micros(250),
                },
            )
        };
        let (mut a, mut b) = (make(), make());
        for s in 0..200 {
            assert_eq!(a.decide(secs(s)), b.decide(secs(s)));
        }
    }

    #[test]
    fn brownout_mixes_errors_and_slowness() {
        let mut f = FaultSchedule::new(7).with_window(
            secs(0),
            None,
            FaultKind::Brownout {
                rate: 0.5,
                extra: SimDuration::from_micros(100),
            },
        );
        let decisions: Vec<FaultDecision> = (0..100).map(|s| f.decide(secs(s))).collect();
        assert!(decisions.contains(&FaultDecision::Error));
        assert!(decisions
            .iter()
            .any(|d| matches!(d, FaultDecision::Slow(_))));
    }

    #[test]
    fn partition_recovers_at_window_end() {
        let mut f =
            FaultSchedule::new(5).with_window(secs(10), Some(secs(20)), FaultKind::Partition);
        assert_eq!(f.decide(secs(9)), FaultDecision::Ok);
        assert_eq!(f.decide(secs(10)), FaultDecision::Error);
        assert_eq!(f.decide(secs(19)), FaultDecision::Error);
        // Unlike Death, the component heals the instant the window closes.
        assert_eq!(f.decide(secs(20)), FaultDecision::Ok);
        assert!(!f.is_dead());
    }

    #[test]
    fn remote_brownout_always_charges_the_stall() {
        let stall = SimDuration::from_millis(50);
        let mut f = FaultSchedule::new(6).with_window(
            secs(0),
            None,
            FaultKind::RemoteBrownout { rate: 0.5, stall },
        );
        let decisions: Vec<FaultDecision> = (0..100).map(|s| f.decide(secs(s))).collect();
        assert!(decisions
            .iter()
            .all(|d| *d == FaultDecision::Stall(stall) || *d == FaultDecision::Slow(stall)));
        assert!(decisions.contains(&FaultDecision::Stall(stall)));
        assert!(decisions.contains(&FaultDecision::Slow(stall)));
    }

    #[test]
    fn edge_cache_flap_mixes_ok_and_edge_miss() {
        let mut f = FaultSchedule::new(8).with_window(
            secs(0),
            None,
            FaultKind::EdgeCacheFlap { rate: 0.5 },
        );
        let decisions: Vec<FaultDecision> = (0..100).map(|s| f.decide(secs(s))).collect();
        assert!(decisions.contains(&FaultDecision::Ok));
        assert!(decisions.contains(&FaultDecision::EdgeMiss));
    }

    #[test]
    fn keyed_decisions_are_order_independent() {
        let make = || {
            FaultSchedule::new(0xBEEF).with_window(
                secs(0),
                None,
                FaultKind::TransientErrors { rate: 0.5 },
            )
        };
        let a = make();
        let b = make();
        // Consulting the same keys in opposite orders yields the same
        // per-key fates (a sequential `decide` stream would not).
        let forward: Vec<FaultDecision> = (0..64).map(|k| a.decide_keyed(secs(1), k)).collect();
        let backward: Vec<FaultDecision> =
            (0..64).rev().map(|k| b.decide_keyed(secs(1), k)).collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
        assert!(forward.contains(&FaultDecision::Ok));
        assert!(forward.contains(&FaultDecision::Error));
    }

    #[test]
    fn keyed_death_is_error_but_does_not_latch() {
        let f = FaultSchedule::new(1).with_window(secs(10), Some(secs(20)), FaultKind::Death);
        assert_eq!(f.decide_keyed(secs(15), 7), FaultDecision::Error);
        assert_eq!(f.decide_keyed(secs(30), 7), FaultDecision::Error);
        assert!(!f.is_dead());
        assert_eq!(f.decide_keyed(secs(5), 7), FaultDecision::Ok);
    }

    #[test]
    fn keyed_unit_is_stable_and_uniform_ish() {
        let a = keyed_unit(1, 42);
        assert_eq!(a, keyed_unit(1, 42));
        assert_ne!(a, keyed_unit(2, 42));
        let mean: f64 = (0..10_000).map(|k| keyed_unit(9, k)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn rng_untouched_outside_windows() {
        // Decisions outside any window must not consume randomness:
        // inserting quiet-period consultations cannot change the
        // in-window decision stream.
        let make = || {
            FaultSchedule::new(9).with_window(
                secs(100),
                Some(secs(200)),
                FaultKind::TransientErrors { rate: 0.5 },
            )
        };
        let mut a = make();
        let mut b = make();
        for s in 0..100 {
            assert_eq!(a.decide(secs(s)), FaultDecision::Ok);
        }
        for s in 100..150 {
            assert_eq!(a.decide(secs(s)), b.decide(secs(s)));
        }
    }
}
