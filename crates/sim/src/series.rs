//! Time-series probes.
//!
//! The paper's figures are almost all "cache occupancy over time" plots.
//! [`TimeSeries`] collects `(time, value)` samples; [`Sampler`] tells the
//! experiment loop when the next periodic sample is due.

use std::fmt;

use crate::{SimDuration, SimTime};

/// One sample in a time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Sample instant.
    pub at: SimTime,
    /// Sampled value (unit depends on the probe, e.g. MB of cache used).
    pub value: f64,
}

/// A named sequence of `(time, value)` samples.
///
/// # Example
///
/// ```
/// use ddc_sim::{TimeSeries, SimTime};
///
/// let mut s = TimeSeries::new("container1-cache-mb");
/// s.record(SimTime::from_secs(1), 100.0);
/// s.record(SimTime::from_secs(2), 150.0);
/// assert_eq!(s.max_value(), Some(150.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<SeriesPoint>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples must be recorded in non-decreasing time
    /// order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the last recorded sample.
    pub fn record(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|p| p.at <= at),
            "samples must be time-ordered"
        );
        self.points.push(SeriesPoint { at, value });
    }

    /// All samples in time order.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest sampled value.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|p| p.value).fold(None, |acc, v| {
            Some(match acc {
                Some(a) if a >= v => a,
                _ => v,
            })
        })
    }

    /// Mean of samples in the half-open time window `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in &self.points {
            if p.at >= from && p.at < to {
                sum += p.value;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// The last sample at or before `at` (step interpolation).
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.points.partition_point(|p| p.at <= at) {
            0 => None,
            idx => Some(self.points[idx - 1].value),
        }
    }

    /// Downsamples to at most `max_points` evenly spaced samples, for
    /// compact textual figure output.
    pub fn thin(&self, max_points: usize) -> Vec<SeriesPoint> {
        if max_points == 0 || self.points.is_empty() {
            return Vec::new();
        }
        if self.points.len() <= max_points {
            return self.points.clone();
        }
        let stride = self.points.len() as f64 / max_points as f64;
        (0..max_points)
            .map(|i| self.points[(i as f64 * stride) as usize])
            .collect()
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.name)?;
        for p in &self.points {
            writeln!(f, "{:.1}\t{:.2}", p.at.as_secs_f64(), p.value)?;
        }
        Ok(())
    }
}

/// Periodic sampling schedule: tells the experiment loop when the next
/// sample is due.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sampler {
    interval: SimDuration,
    next_due: SimTime,
}

impl Sampler {
    /// Creates a sampler firing every `interval`, first at `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Sampler {
        assert!(
            interval > SimDuration::ZERO,
            "sampler interval must be positive"
        );
        Sampler {
            interval,
            next_due: SimTime::ZERO + interval,
        }
    }

    /// The instant of the next pending sample.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// If a sample is due at or before `now`, consumes it and returns its
    /// scheduled instant. Call in a loop to catch up after long jumps.
    pub fn tick(&mut self, now: SimTime) -> Option<SimTime> {
        if self.next_due <= now {
            let due = self.next_due;
            self.next_due = due + self.interval;
            Some(due)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = TimeSeries::new("t");
        s.record(SimTime::from_secs(1), 10.0);
        s.record(SimTime::from_secs(2), 30.0);
        s.record(SimTime::from_secs(3), 20.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.max_value(), Some(30.0));
        assert_eq!(s.name(), "t");
    }

    #[test]
    fn mean_in_window() {
        let mut s = TimeSeries::new("t");
        for sec in 0..10 {
            s.record(SimTime::from_secs(sec), sec as f64);
        }
        // window [2, 5) contains samples 2,3,4 -> mean 3
        assert_eq!(
            s.mean_in(SimTime::from_secs(2), SimTime::from_secs(5)),
            Some(3.0)
        );
        assert_eq!(
            s.mean_in(SimTime::from_secs(100), SimTime::from_secs(200)),
            None
        );
    }

    #[test]
    fn value_at_steps() {
        let mut s = TimeSeries::new("t");
        s.record(SimTime::from_secs(1), 1.0);
        s.record(SimTime::from_secs(5), 5.0);
        assert_eq!(s.value_at(SimTime::ZERO), None);
        assert_eq!(s.value_at(SimTime::from_secs(1)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(3)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(9)), Some(5.0));
    }

    #[test]
    fn thin_downsamples() {
        let mut s = TimeSeries::new("t");
        for sec in 0..100 {
            s.record(SimTime::from_secs(sec), sec as f64);
        }
        let thinned = s.thin(10);
        assert_eq!(thinned.len(), 10);
        assert_eq!(s.thin(0).len(), 0);
        assert_eq!(s.thin(1000).len(), 100);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.max_value(), None);
        assert_eq!(s.value_at(SimTime::MAX), None);
        assert!(s.thin(5).is_empty());
    }

    #[test]
    fn display_includes_name_and_rows() {
        let mut s = TimeSeries::new("occupancy");
        s.record(SimTime::from_secs(1), 2.5);
        let out = s.to_string();
        assert!(out.contains("# occupancy"));
        assert!(out.contains("1.0\t2.50"));
    }

    #[test]
    fn sampler_fires_periodically() {
        let mut sampler = Sampler::new(SimDuration::from_secs(1));
        assert_eq!(sampler.tick(SimTime::from_nanos(1)), None);
        assert_eq!(
            sampler.tick(SimTime::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(sampler.tick(SimTime::from_secs(1)), None);
        // A long jump yields successive catch-up samples.
        assert_eq!(
            sampler.tick(SimTime::from_secs(4)),
            Some(SimTime::from_secs(2))
        );
        assert_eq!(
            sampler.tick(SimTime::from_secs(4)),
            Some(SimTime::from_secs(3))
        );
        assert_eq!(
            sampler.tick(SimTime::from_secs(4)),
            Some(SimTime::from_secs(4))
        );
        assert_eq!(sampler.tick(SimTime::from_secs(4)), None);
        assert_eq!(sampler.next_due(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn sampler_rejects_zero_interval() {
        let _ = Sampler::new(SimDuration::ZERO);
    }
}
