//! A fast, deterministic hasher for hot-path hash maps.
//!
//! `std`'s default `SipHash13` is DoS-resistant but costs ~2× more per
//! lookup than needed for the small integer keys the cache index uses
//! (`FileId`, `(VmId, PoolId)`), and its per-process random seed makes
//! map iteration order differ between runs. [`FxHasher`] is a
//! multiply-rotate hash in the Firefox/rustc style: one wrapping
//! multiply per word, no allocation, and **no random state** — the same
//! insertion sequence always produces the same table layout, which the
//! deterministic-replay guarantees of this workspace rely on.
//!
//! The maps involved are keyed by internal ids, never by untrusted
//! input, so hash-flooding resistance is not required.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the `fxhash` family (64-bit golden-ratio
/// derived, chosen for good bit diffusion under wrapping multiply).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher for small integer-like keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the byte slice; the tail is zero-padded.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, no random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]: drop-in for `std::collections::HashMap`
/// on hot paths with trusted keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of(v: impl Hash) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No random state: two independent builders agree.
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of((7u64, 9u32)), hash_of((7u64, 9u32)));
        assert_eq!(hash_of("abcdefghij"), hash_of("abcdefghij"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential ids (the common key pattern here) must not collide.
        let hashes: std::collections::HashSet<u64> = (0u64..10_000).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(5);
        assert!(s.contains(&5));
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxHashMap<u32, u32> = FxHashMap::default();
            for i in 0..100 {
                m.insert(i * 7, i);
            }
            m.keys().copied().collect::<Vec<u32>>()
        };
        assert_eq!(build(), build(), "same inserts, same layout");
    }

    #[test]
    fn byte_slices_hash_tail_correctly() {
        assert_ne!(
            hash_of([1u8, 2, 3].as_slice()),
            hash_of([1u8, 2].as_slice())
        );
        assert_ne!(
            hash_of([0u8; 9].as_slice()),
            hash_of([0u8; 8].as_slice()),
            "length reaches the hash through the padded tail"
        );
    }
}
