//! Deterministic, portable pseudo-random number generation.
//!
//! Experiments must be exactly reproducible across runs and platforms, so
//! the simulator carries its own small PRNG (xoshiro256++ seeded through
//! SplitMix64) instead of depending on `rand`'s unstable `StdRng`
//! algorithm. The sampling helpers cover everything the workload models
//! need: uniform ranges, floats, exponential inter-arrival gaps and
//! Bernoulli trials. Heavier-tailed distributions (Zipf, Pareto file sizes)
//! are layered on top in `ddc-workloads`.

use crate::SimDuration;

/// A deterministic PRNG (xoshiro256++) for simulation use.
///
/// Two generators created with the same seed produce identical streams on
/// every platform and in every future version of this crate.
///
/// # Example
///
/// ```
/// use ddc_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including zero) is valid.
    pub fn new(seed: u64) -> SimRng {
        // SplitMix64 expansion, the recommended seeding procedure for the
        // xoshiro family.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; used to give each workload
    /// thread its own stream so that thread interleaving does not perturb
    /// per-thread randomness.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's unbiased multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` .
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Uniform integer in `[lo, hi)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed duration with the given mean; used for
    /// think times and inter-arrival gaps.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero-length and a sample is requested (returns
    /// `SimDuration::ZERO` instead; never panics).
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        if mean == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        // Inverse CDF; guard against ln(0).
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        SimDuration::from_nanos((mean.as_nanos() as f64 * -u.ln()).round() as u64)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent seeds should rarely collide");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::new(9);
        let mut parent2 = SimRng::new(9);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent1.fork(4);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::new(11);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut rng = SimRng::new(13);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::new(0).next_below(0);
    }

    #[test]
    fn range_bounds() {
        let mut rng = SimRng::new(17);
        for _ in 0..300 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let u = rng.range_usize(3, 5);
            assert!((3..5).contains(&u));
        }
    }

    #[test]
    fn floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::new(23);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(29);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exp_duration_mean_close() {
        let mut rng = SimRng::new(31);
        let mean = SimDuration::from_micros(100);
        const N: u64 = 20_000;
        let total: SimDuration = (0..N).map(|_| rng.exp_duration(mean)).sum();
        let avg_us = total.as_micros() as f64 / N as f64;
        assert!(
            (avg_us - 100.0).abs() < 5.0,
            "empirical mean {avg_us}us should be near 100us"
        );
    }

    #[test]
    fn exp_duration_zero_mean_is_zero() {
        let mut rng = SimRng::new(37);
        assert_eq!(rng.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(41);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::new(43);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
