//! A time-ordered event queue.
//!
//! Used by the experiment runner for scheduled control actions (booting a
//! container at t=900 s, changing cache weights at t=1800 s, …) and for
//! periodic samplers. Events at the same instant pop in insertion order, so
//! a reconfiguration script behaves exactly as written.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, and break
        // ties by insertion sequence for stability.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of `(SimTime, E)` pairs, stable for equal times.
///
/// # Example
///
/// ```
/// use ddc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "future");
        assert_eq!(q.pop_due(SimTime::from_secs(4)), None);
        assert_eq!(
            q.pop_due(SimTime::from_secs(5)),
            Some((SimTime::from_secs(5), "future"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop_due(SimTime::MAX), None);
    }

    #[test]
    fn debug_shows_len_and_next() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 7u8);
        let s = format!("{q:?}");
        assert!(s.contains("EventQueue"));
        assert!(s.contains("len"));
    }
}
