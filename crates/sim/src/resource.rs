//! FCFS queued-resource models.
//!
//! A device channel (a disk head, an SSD channel, a memory-copy engine) can
//! serve one request at a time. [`QueuedResource`] tracks when the channel
//! next becomes free; a request issued at `now` with service time `s`
//! starts at `max(now, busy_until)` and finishes `s` later. This captures
//! head-of-line contention between workload threads without simulating the
//! device internals.

use crate::{SimDuration, SimTime};

/// The admission result for one request on a queued resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// When service actually began (≥ the request time).
    pub start: SimTime,
    /// When service completed.
    pub finish: SimTime,
}

impl Grant {
    /// Total request latency including queueing, relative to `issued`.
    pub fn latency_from(&self, issued: SimTime) -> SimDuration {
        self.finish.saturating_since(issued)
    }

    /// Time spent waiting in the queue before service began.
    pub fn queue_delay_from(&self, issued: SimTime) -> SimDuration {
        self.start.saturating_since(issued)
    }
}

/// A single-channel first-come-first-served resource.
///
/// # Example
///
/// ```
/// use ddc_sim::{QueuedResource, SimDuration, SimTime};
///
/// let mut r = QueuedResource::new();
/// let g1 = r.access(SimTime::ZERO, SimDuration::from_millis(5));
/// let g2 = r.access(SimTime::ZERO, SimDuration::from_millis(5));
/// assert_eq!(g2.start, g1.finish); // second request queues behind the first
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueuedResource {
    busy_until: SimTime,
    busy_time: SimDuration,
    requests: u64,
}

impl QueuedResource {
    /// Creates an idle resource.
    pub fn new() -> QueuedResource {
        QueuedResource::default()
    }

    /// Admits a request at `now` needing `service` time, returning when it
    /// starts and finishes. The resource is busy until the finish time.
    pub fn access(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let start = now.max(self.busy_until);
        let finish = start + service;
        self.busy_until = finish;
        self.busy_time += service;
        self.requests += 1;
        Grant { start, finish }
    }

    /// Reserves the resource without performing work (e.g. a background
    /// writeback slot): identical to [`access`](Self::access) but intended
    /// for asynchronous operations whose completion the caller does not
    /// wait on.
    pub fn reserve(&mut self, now: SimTime, service: SimDuration) -> Grant {
        self.access(now, service)
    }

    /// The instant the channel next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total service time accumulated (for utilization reporting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of requests admitted.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Utilization in `[0, 1]` over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / elapsed as f64).min(1.0)
    }
}

/// A resource with several identical parallel channels (e.g. an SSD with
/// internal parallelism). Each request is placed on the channel that frees
/// up earliest.
#[derive(Clone, Debug)]
pub struct MultiQueuedResource {
    channels: Vec<QueuedResource>,
}

impl MultiQueuedResource {
    /// Creates a resource with `channels` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> MultiQueuedResource {
        assert!(channels > 0, "need at least one channel");
        MultiQueuedResource {
            channels: vec![QueuedResource::new(); channels],
        }
    }

    /// Admits a request on the earliest-available channel.
    pub fn access(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let ch = self
            .channels
            .iter_mut()
            .min_by_key(|c| c.busy_until())
            .expect("at least one channel");
        ch.access(now, service)
    }

    /// Number of parallel channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Total requests across all channels.
    pub fn requests(&self) -> u64 {
        self.channels.iter().map(QueuedResource::requests).sum()
    }

    /// Aggregate busy time across channels.
    pub fn busy_time(&self) -> SimDuration {
        self.channels.iter().map(QueuedResource::busy_time).sum()
    }

    /// The instant every channel is idle again.
    pub fn busy_until(&self) -> SimTime {
        self.channels
            .iter()
            .map(QueuedResource::busy_until)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Mean utilization across channels over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        let total = elapsed as f64 * self.channels.len() as f64;
        (self.busy_time().as_nanos() as f64 / total).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = QueuedResource::new();
        let g = r.access(SimTime::from_secs(1), MS);
        assert_eq!(g.start, SimTime::from_secs(1));
        assert_eq!(g.finish, SimTime::from_secs(1) + MS);
    }

    #[test]
    fn contention_serializes() {
        let mut r = QueuedResource::new();
        let g1 = r.access(SimTime::ZERO, MS);
        let g2 = r.access(SimTime::ZERO, MS);
        let g3 = r.access(SimTime::ZERO, MS);
        assert_eq!(g2.start, g1.finish);
        assert_eq!(g3.start, g2.finish);
        assert_eq!(g3.finish, SimTime::ZERO + MS * 3);
    }

    #[test]
    fn gap_lets_resource_idle() {
        let mut r = QueuedResource::new();
        r.access(SimTime::ZERO, MS);
        let g = r.access(SimTime::from_secs(5), MS);
        assert_eq!(g.start, SimTime::from_secs(5));
    }

    #[test]
    fn grant_latency_accounts_for_queueing() {
        let mut r = QueuedResource::new();
        r.access(SimTime::ZERO, MS * 10);
        let g = r.access(SimTime::ZERO, MS);
        assert_eq!(g.latency_from(SimTime::ZERO), MS * 11);
        assert_eq!(g.queue_delay_from(SimTime::ZERO), MS * 10);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut r = QueuedResource::new();
        r.access(SimTime::ZERO, SimDuration::from_secs(1));
        let u = r.utilization(SimTime::from_secs(2));
        assert!((u - 0.5).abs() < 1e-9, "expected 0.5, got {u}");
        assert_eq!(r.requests(), 1);
    }

    #[test]
    fn utilization_at_time_zero_is_zero() {
        let r = QueuedResource::new();
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn multi_channel_runs_in_parallel() {
        let mut r = MultiQueuedResource::new(2);
        let g1 = r.access(SimTime::ZERO, MS);
        let g2 = r.access(SimTime::ZERO, MS);
        let g3 = r.access(SimTime::ZERO, MS);
        // First two go in parallel; third queues behind one of them.
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g2.start, SimTime::ZERO);
        assert_eq!(g3.start, g1.finish.min(g2.finish));
        assert_eq!(r.requests(), 3);
        assert_eq!(r.channel_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = MultiQueuedResource::new(0);
    }
}
