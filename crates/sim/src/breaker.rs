//! A reusable circuit-breaker state machine.
//!
//! Three fallible backends in the stack protect themselves with the same
//! pattern — the hypercall channel's put breaker, the hypervisor cache's
//! SSD quarantine, and the remote chunk-store client — so the state
//! machine lives here once, parameterized by thresholds.
//!
//! The machine has two states:
//!
//! * **Closed** — operations flow to the backend. `threshold` consecutive
//!   failures trip the breaker open; any success resets the streak.
//! * **Open** — operations are skipped locally until `probe_at`, when one
//!   operation is let through as a recovery probe. A failed probe doubles
//!   the backoff (capped at `max_backoff`) and reschedules the probe; a
//!   success closes the breaker.
//!
//! The machine is purely deterministic: transitions are a function of the
//! sequence of `note_failure`/`note_success` calls and their timestamps,
//! so same-seed simulations reproduce breaker behaviour byte-for-byte.
//!
//! ```
//! use ddc_sim::{BreakerConfig, CircuitBreaker, SimDuration, SimTime};
//!
//! let cfg = BreakerConfig {
//!     threshold: 2,
//!     initial_backoff: SimDuration::from_millis(10),
//!     max_backoff: SimDuration::from_secs(1),
//! };
//! let mut b = CircuitBreaker::new(cfg);
//! let t0 = SimTime::ZERO;
//! assert!(!b.note_failure(t0)); // one failure: still closed
//! assert!(b.note_failure(t0)); // second failure trips it
//! assert!(!b.allows(t0)); // skipped locally...
//! assert!(b.allows(t0 + SimDuration::from_millis(10))); // ...until the probe
//! assert!(b.note_success()); // probe succeeded: recovered
//! ```

use crate::time::{SimDuration, SimTime};

/// Thresholds parameterizing a [`CircuitBreaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open. A threshold of 1
    /// trips on the first failure (the SSD quarantine's policy).
    pub threshold: u32,
    /// Delay before the first recovery probe after tripping.
    pub initial_backoff: SimDuration,
    /// Ceiling for the exponentially-doubled probe backoff.
    pub max_backoff: SimDuration,
}

/// Observable breaker state, exposed for audits and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Operations flow; `failures` consecutive operations have failed.
    Closed {
        /// Current consecutive-failure streak (below the threshold).
        failures: u32,
    },
    /// Operations are skipped until `probe_at`.
    Open {
        /// Earliest instant at which a recovery probe is let through.
        probe_at: SimTime,
        /// Current probe backoff (doubles per failed probe, capped).
        backoff: SimDuration,
    },
}

/// A deterministic circuit breaker (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    trips: u64,
    recoveries: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `config.threshold` is zero (a breaker that trips without
    /// any failure would never let an operation through).
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        assert!(config.threshold > 0, "breaker threshold must be positive");
        CircuitBreaker {
            config,
            state: BreakerState::Closed { failures: 0 },
            trips: 0,
            recoveries: 0,
        }
    }

    /// The thresholds this breaker was built with.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// The current state (for audits and reports).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the breaker is open (operations skipped outside probes).
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Whether an operation issued at `now` should be attempted: true
    /// when closed, or when open and the probe window has arrived.
    pub fn allows(&self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { probe_at, .. } => now >= probe_at,
        }
    }

    /// The pending probe instant, if the breaker is open.
    pub fn probe_at(&self) -> Option<SimTime> {
        match self.state {
            BreakerState::Closed { .. } => None,
            BreakerState::Open { probe_at, .. } => Some(probe_at),
        }
    }

    /// Records one failed operation at `now`. Returns `true` exactly when
    /// this failure transitions the breaker from closed to open (callers
    /// run their trip-time side effects — invalidation, counters — on
    /// that edge). A failure while already open is a failed probe: the
    /// backoff doubles (capped) and the next probe is rescheduled.
    pub fn note_failure(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.threshold {
                    self.trips += 1;
                    self.state = BreakerState::Open {
                        probe_at: now + self.config.initial_backoff,
                        backoff: self.config.initial_backoff,
                    };
                    true
                } else {
                    self.state = BreakerState::Closed { failures };
                    false
                }
            }
            BreakerState::Open { backoff, .. } => {
                let backoff = (backoff + backoff).min(self.config.max_backoff);
                self.state = BreakerState::Open {
                    probe_at: now + backoff,
                    backoff,
                };
                false
            }
        }
    }

    /// Records one successful operation: the backend is reachable, so the
    /// breaker closes and the failure streak resets. Returns `true`
    /// exactly when this success recovered an open breaker.
    pub fn note_success(&mut self) -> bool {
        let recovered = self.is_open();
        if recovered {
            self.recoveries += 1;
        }
        self.state = BreakerState::Closed { failures: 0 };
        recovered
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times an open breaker's probe succeeded and closed it.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32) -> BreakerConfig {
        BreakerConfig {
            threshold,
            initial_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(80),
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg(3));
        let t = SimTime::ZERO;
        assert!(!b.note_failure(t));
        assert!(!b.note_failure(t));
        assert!(!b.is_open());
        assert!(b.note_failure(t));
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
        assert_eq!(b.probe_at(), Some(t + SimDuration::from_millis(10)));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(cfg(2));
        let t = SimTime::ZERO;
        assert!(!b.note_failure(t));
        assert!(!b.note_success()); // closed success: no recovery counted
        assert!(!b.note_failure(t)); // streak restarted
        assert!(b.note_failure(t));
        assert_eq!(b.recoveries(), 0);
    }

    #[test]
    fn threshold_one_trips_immediately() {
        let mut b = CircuitBreaker::new(cfg(1));
        assert!(b.note_failure(SimTime::ZERO));
        assert!(b.is_open());
    }

    #[test]
    fn failed_probes_double_backoff_to_the_cap() {
        let mut b = CircuitBreaker::new(cfg(1));
        let t = SimTime::ZERO;
        b.note_failure(t);
        let mut expected = SimDuration::from_millis(10);
        for _ in 0..5 {
            let probe = b.probe_at().unwrap();
            assert!(!b.allows(probe - SimDuration::from_nanos(1)));
            assert!(b.allows(probe));
            assert!(!b.note_failure(probe)); // failed probe: no new trip
            expected = (expected + expected).min(SimDuration::from_millis(80));
            assert_eq!(
                b.state(),
                BreakerState::Open {
                    probe_at: probe + expected,
                    backoff: expected,
                }
            );
        }
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn successful_probe_recovers() {
        let mut b = CircuitBreaker::new(cfg(1));
        b.note_failure(SimTime::ZERO);
        assert!(b.note_success());
        assert!(!b.is_open());
        assert_eq!(b.recoveries(), 1);
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        CircuitBreaker::new(cfg(0));
    }
}
