//! Virtual time types.
//!
//! The simulation measures time in whole nanoseconds. Two newtypes keep
//! instants and durations statically distinct (an instant plus a duration is
//! an instant; a duration plus a duration is a duration; instants cannot be
//! added together).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in nanoseconds since the start of the
/// simulation.
///
/// # Example
///
/// ```
/// use ddc_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Example
///
/// ```
/// use ddc_sim::SimDuration;
///
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far in
    /// the future" sentinel for idle processes.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of the two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of the two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds in the span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in the span, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in the span as a float (for latency reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in the span as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of the two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of the two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    /// The instant `rhs` earlier, saturating at time zero.
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs.is_finite() && rhs >= 0.0);
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
    }

    #[test]
    fn time_minus_duration_is_time() {
        let t = SimTime::from_secs(3) - SimDuration::from_secs(1);
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(
            SimTime::from_secs(1) - SimDuration::from_secs(5),
            SimTime::ZERO
        );
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a - b, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn duration_from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 2, SimDuration::from_secs(1));
        assert_eq!(d * 0.5, SimDuration::from_secs(1));
        let mut acc = SimDuration::ZERO;
        acc += d;
        acc -= SimDuration::from_secs(1);
        assert_eq!(acc, SimDuration::from_secs(1));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }
}
