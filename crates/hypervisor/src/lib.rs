//! Host / VM / container topology for the DoubleDecker reproduction.
//!
//! A [`Host`] owns the physical resources of the paper's testbed: the
//! DoubleDecker hypervisor cache (memory + SSD stores), the shared
//! spinning disk behind every VM's virtual disk, and the set of guest VMs.
//! It exposes:
//!
//! * **lifecycle** — boot/shutdown VMs (with cache weights), create and
//!   destroy containers inside them (which performs the CREATE_CGROUP /
//!   DESTROY_CGROUP pool handshakes),
//! * **the two policy control points** (paper §3) — the hypervisor-level
//!   controller (VM weights, store capacities) and the per-VM controller
//!   (container `<T, W>` policies, cgroup limits), the latter routed
//!   through the guest so every control action crosses the same interface
//!   the paper modifies,
//! * **the data path** — container reads/writes/fsyncs and anonymous
//!   memory touches, each flowing page cache → cleancache hypercall →
//!   DoubleDecker store → disk,
//! * **introspection** — per-container cache occupancy and per-VM usage,
//!   used by the benchmark harness to regenerate the paper's occupancy
//!   figures.
//!
//! # Example
//!
//! ```
//! use ddc_hypercache::{CacheConfig, CachePolicy};
//! use ddc_hypervisor::{Host, HostConfig};
//! use ddc_sim::SimTime;
//! use ddc_storage::{BlockAddr, FileId};
//!
//! let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
//! let vm = host.boot_vm(256, 100); // 256 MiB guest, cache weight 100
//! let web = host.create_container(vm, "web", 1024, CachePolicy::mem(100));
//! let addr = BlockAddr::new(ddc_hypervisor::vm_file(vm, 1), 0);
//! let r = host.read(SimTime::ZERO, vm, web, addr);
//! assert_eq!(r.level, ddc_guest::HitLevel::Disk);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use ddc_cleancache::{CachePolicy, PoolStats, SecondChanceCache, VmId};
use ddc_guest::{
    CgroupId, CgroupMemStats, GuestConfig, GuestEnv, GuestOs, ReadResult, WriteResult,
};
use ddc_hypercache::{
    CacheConfig, CacheTotals, DoubleDeckerCache, FallbackMode, RecoveryReport, VmUsage,
};
use ddc_sim::{FaultSchedule, SimTime};
use ddc_storage::{
    BlockAddr, ChunkStore, Device, FileId, RemoteCounters, RemoteError, RemoteFetchConfig, RemoteId,
};

/// Builds a [`FileId`] namespaced to one VM, so that two VMs' virtual
/// disks never alias blocks on the shared physical device.
pub fn vm_file(vm: VmId, local_inode: u64) -> FileId {
    debug_assert!(local_inode < 1 << 32, "local inode space is 32-bit");
    FileId(((vm.0 as u64) << 32) | local_inode)
}

/// Host-level configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostConfig {
    /// Hypervisor cache configuration.
    pub cache: CacheConfig,
}

impl HostConfig {
    /// Creates a host configuration around a cache configuration.
    pub fn new(cache: CacheConfig) -> HostConfig {
        HostConfig { cache }
    }
}

/// The physical host: hypervisor cache, shared disk, and guest VMs.
#[derive(Debug)]
pub struct Host {
    cache: DoubleDeckerCache,
    disk: Device,
    vms: BTreeMap<VmId, GuestOs>,
    next_vm: u32,
}

impl Host {
    /// Creates a host with an empty VM set.
    pub fn new(config: HostConfig) -> Host {
        Host {
            cache: DoubleDeckerCache::new(config.cache),
            disk: Device::hdd(),
            vms: BTreeMap::new(),
            next_vm: 1,
        }
    }

    // ------------------------------------------------------------------
    // VM lifecycle and the hypervisor-level policy controller.
    // ------------------------------------------------------------------

    /// Boots a VM with `mem_mb` MiB of guest RAM and the given hypervisor
    /// cache weight. Returns its id.
    pub fn boot_vm(&mut self, mem_mb: u64, cache_weight: u64) -> VmId {
        let vm = VmId(self.next_vm);
        self.next_vm += 1;
        self.cache.add_vm(vm, cache_weight);
        self.vms
            .insert(vm, GuestOs::new(vm, GuestConfig::with_mem_mb(mem_mb)));
        vm
    }

    /// Shuts a VM down, dropping all its cache objects.
    ///
    /// Returns `false` (without side effects) if the VM does not exist,
    /// so teardown paths can run after a partial failure.
    pub fn shutdown_vm(&mut self, vm: VmId) -> bool {
        if self.vms.remove(&vm).is_none() {
            return false;
        }
        self.cache.remove_vm(vm);
        true
    }

    /// Crashes a VM abruptly: the guest disappears without any cgroup or
    /// pool teardown handshakes, and the hypervisor reclaims every cache
    /// page it owned (the cleancache contract — cached copies are clean,
    /// so nothing is lost; the authoritative copy is on the virtual
    /// disk). Returns `false` if the VM does not exist.
    ///
    /// A crashed VM id can be rebooted with [`Host::boot_vm_with_id`];
    /// because the crash dropped every cached object, the rebooted guest
    /// can never observe stale pre-crash cache state.
    pub fn crash_vm(&mut self, vm: VmId) -> bool {
        // In this model a crash and a shutdown reclaim the same state;
        // the distinction is that crash skips guest-side teardown, which
        // shutdown_vm does not perform either (pools die with the VM).
        self.shutdown_vm(vm)
    }

    /// Boots a VM under a caller-chosen id — the reboot half of a
    /// crash/reboot cycle, where the platform reassigns the same domain
    /// id. Returns `false` if a VM with this id is already running.
    pub fn boot_vm_with_id(&mut self, vm: VmId, mem_mb: u64, cache_weight: u64) -> bool {
        if self.vms.contains_key(&vm) {
            return false;
        }
        self.next_vm = self.next_vm.max(vm.0 + 1);
        self.cache.add_vm(vm, cache_weight);
        self.vms
            .insert(vm, GuestOs::new(vm, GuestConfig::with_mem_mb(mem_mb)));
        true
    }

    /// Reboots a VM in place: an abrupt crash followed by a boot under
    /// the same domain id. All cache objects and guest state are
    /// dropped, so the rebooted guest starts cold and can never observe
    /// stale pre-reboot cache pages. Returns `false` (no side effects)
    /// if the VM does not exist.
    pub fn reboot_vm(&mut self, vm: VmId, mem_mb: u64, cache_weight: u64) -> bool {
        if !self.crash_vm(vm) {
            return false;
        }
        let booted = self.boot_vm_with_id(vm, mem_mb, cache_weight);
        debug_assert!(booted, "id was just freed by crash_vm");
        booted
    }

    /// Updates a VM's hypervisor cache weight (dynamic provisioning).
    pub fn set_vm_cache_weight(&mut self, vm: VmId, weight: u64) {
        self.cache.set_vm_weight(vm, weight);
    }

    /// Sets independent per-store weights for a VM — the generalized
    /// setup of the paper's footnote 1.
    pub fn set_vm_store_weights(&mut self, vm: VmId, mem_weight: u64, ssd_weight: u64) {
        self.cache.set_vm_store_weights(vm, mem_weight, ssd_weight);
    }

    /// Resizes the memory store of the hypervisor cache.
    pub fn set_mem_cache_capacity(&mut self, now: SimTime, pages: u64) {
        self.cache.set_mem_capacity(now, pages);
    }

    /// Resizes the SSD store of the hypervisor cache.
    pub fn set_ssd_cache_capacity(&mut self, now: SimTime, pages: u64) {
        self.cache.set_ssd_capacity(now, pages);
    }

    /// Enables zcache-style compression in the memory store (objects cost
    /// `object_millipages`/1000 of a page; each store/load pays
    /// `codec_cost`).
    ///
    /// # Panics
    ///
    /// Panics if `object_millipages` is zero or above 1000.
    pub fn set_mem_cache_compression(
        &mut self,
        object_millipages: u64,
        codec_cost: ddc_sim::SimDuration,
    ) {
        self.cache
            .set_mem_compression(object_millipages, codec_cost);
    }

    /// Ids of running VMs.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // Fault plane.
    // ------------------------------------------------------------------

    /// Installs a fault schedule on the cache's SSD store. Faulted SSD IO
    /// quarantines the tier (all SSD pages invalidated) and the cache
    /// degrades per [`Host::set_ssd_fallback_mode`] until a recovery
    /// probe succeeds. Pass `None` to clear.
    pub fn set_ssd_fault_schedule(&mut self, faults: Option<FaultSchedule>) {
        self.cache.set_ssd_fault_schedule(faults);
    }

    /// Chooses where SSD-bound puts go while the SSD tier is quarantined:
    /// redirected to the memory store, or rejected (straight to disk).
    pub fn set_ssd_fallback_mode(&mut self, mode: FallbackMode) {
        self.cache.set_ssd_fallback_mode(mode);
    }

    /// Whether the SSD tier is currently quarantined.
    pub fn ssd_quarantined(&self) -> bool {
        self.cache.ssd_quarantined()
    }

    /// Installs (or clears) a fault schedule on one VM's hypercall
    /// channel (dropped or slowed get/put calls; flushes stay reliable).
    /// Returns `false` if the VM does not exist.
    pub fn set_channel_fault_schedule(&mut self, vm: VmId, faults: Option<FaultSchedule>) -> bool {
        match self.vms.get_mut(&vm) {
            Some(guest) => {
                guest.set_channel_fault_schedule(faults);
                true
            }
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Remote chunk-store tier.
    // ------------------------------------------------------------------

    /// Registers a remote chunk store (simulated CDN / object tier)
    /// with the hypervisor cache. Returns its id, or a typed error if
    /// that id is already registered.
    pub fn register_remote_store(&mut self, store: ChunkStore) -> Result<RemoteId, RemoteError> {
        self.cache.register_remote(store)
    }

    /// Binds one container's cache pool to a registered remote store:
    /// misses on never-written blocks may then be served from the
    /// remote instead of falling through to the shared disk, under the
    /// full fault-tolerance stack (deadline, retries, hedging, circuit
    /// breaker, in-flight cap) described by `fetch`.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist, or if the
    /// container has cleancache disabled (no pool to bind).
    pub fn bind_container_remote(
        &mut self,
        vm: VmId,
        cg: CgroupId,
        remote: RemoteId,
        fetch: RemoteFetchConfig,
    ) -> Result<(), RemoteError> {
        let pool = self
            .guest(vm)
            .cgroup(cg)
            .pool()
            .unwrap_or_else(|| panic!("container {cg:?} in {vm} has no cleancache pool"));
        self.cache.bind_remote(vm, pool, remote, fetch)
    }

    /// Per-container remote fetch counters, or `None` if the container
    /// has no remote binding.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn container_remote_counters(&self, vm: VmId, cg: CgroupId) -> Option<RemoteCounters> {
        let pool = self.guest(vm).cgroup(cg).pool()?;
        self.cache.remote_binding(vm, pool).map(|b| b.counters())
    }

    /// Aggregate remote fetch counters across every binding.
    pub fn remote_totals(&self) -> RemoteCounters {
        self.cache.remote_totals()
    }

    // ------------------------------------------------------------------
    // Crash-and-recovery plane.
    // ------------------------------------------------------------------

    /// Turns on write-ahead journaling of every hypervisor cache state
    /// transition. Idempotent. Must be called before the operations that
    /// a later [`Host::crash_and_recover`] should be able to replay.
    pub fn enable_cache_journal(&mut self) {
        self.cache.enable_journal();
    }

    /// The cache's full journal image so far (`None` if journaling is
    /// off). A crash harness snapshots this, cuts or corrupts a suffix,
    /// and feeds the damaged prefix to [`Host::crash_and_recover`].
    pub fn cache_journal_image(&self) -> Option<Vec<u8>> {
        self.cache.journal_bytes().map(<[u8]>::to_vec)
    }

    /// Bytes of the journal guaranteed durable (covered by the last
    /// sync), if journaling is on. A crash never loses bytes below this
    /// watermark, so every acknowledged flush survives.
    pub fn cache_journal_durable_len(&self) -> Option<usize> {
        self.cache.journal_durable_len()
    }

    /// Simulates a crash of the hypervisor caching layer followed by a
    /// warm restart from `journal_image` — typically a truncated or
    /// corrupted prefix of [`Host::cache_journal_image`]. The guests and
    /// their virtual disks are untouched (in a derivative cloud the
    /// caching daemon can die independently of the VMs it serves); only
    /// the second-chance cache state is rebuilt.
    ///
    /// Each guest's flush epoch is snapshotted before the swap and fed to
    /// [`DoubleDeckerCache::recover`], which discards any replayed entry
    /// an acknowledged invalidation may have covered — recovery can lose
    /// entries, never resurrect stale ones. The fresh epochs minted by
    /// the recovery checkpoint are redistributed to the running guests.
    pub fn crash_and_recover(&mut self, journal_image: &[u8]) -> RecoveryReport {
        let epochs: Vec<(VmId, u64)> = self
            .vms
            .iter()
            .map(|(&vm, guest)| (vm, guest.flush_epoch()))
            .collect();
        let (cache, report) =
            DoubleDeckerCache::recover(self.cache.current_config(), journal_image, &epochs);
        self.cache = cache;
        for &(vm, epoch) in &report.new_epochs {
            if let Some(guest) = self.vms.get_mut(&vm) {
                guest.note_recovery_epoch(epoch);
            }
        }
        report
    }

    /// Flips one recovered cache entry's stored bits (bit-rot injection
    /// for the chaos harness). Returns `false` if the entry is absent.
    /// The damage is detected lazily by verify-on-read, which fails the
    /// get and (for SSD entries) quarantines the tier.
    pub fn corrupt_cache_entry(
        &mut self,
        vm: VmId,
        pool: ddc_cleancache::PoolId,
        addr: BlockAddr,
    ) -> bool {
        self.cache.corrupt_entry(vm, pool, addr)
    }

    // ------------------------------------------------------------------
    // Container lifecycle and the VM-level policy controller.
    // ------------------------------------------------------------------

    /// Creates a container in `vm` with a cgroup memory limit (pages) and
    /// a hypervisor-cache `<T, W>` policy.
    ///
    /// # Panics
    ///
    /// Panics if the VM does not exist.
    pub fn create_container(
        &mut self,
        vm: VmId,
        name: &str,
        mem_limit_pages: u64,
        policy: CachePolicy,
    ) -> CgroupId {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.create_cgroup(&mut env, name, mem_limit_pages, policy)
    }

    /// Destroys a container, freeing its guest memory and cache pool.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn destroy_container(&mut self, vm: VmId, cg: CgroupId) {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.destroy_cgroup(&mut env, cg);
    }

    /// Updates a container's `<T, W>` policy from inside the VM
    /// (SET_CG_WEIGHT).
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn set_container_policy(&mut self, vm: VmId, cg: CgroupId, policy: CachePolicy) {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.set_cg_policy(&mut env, cg, policy);
    }

    /// Updates a container's cgroup memory limit.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn set_container_mem_limit(
        &mut self,
        now: SimTime,
        vm: VmId,
        cg: CgroupId,
        mem_limit_pages: u64,
    ) {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.set_cg_mem_limit(&mut env, now, cg, mem_limit_pages);
    }

    // ------------------------------------------------------------------
    // Data path.
    // ------------------------------------------------------------------

    /// Reads one block on behalf of a container.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn read(&mut self, now: SimTime, vm: VmId, cg: CgroupId, addr: BlockAddr) -> ReadResult {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.read(&mut env, now, cg, addr)
    }

    /// Writes one block on behalf of a container.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn write(&mut self, now: SimTime, vm: VmId, cg: CgroupId, addr: BlockAddr) -> WriteResult {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.write(&mut env, now, cg, addr)
    }

    /// Fsyncs one file of a container.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn fsync(&mut self, now: SimTime, vm: VmId, cg: CgroupId, file: FileId) -> SimTime {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.fsync(&mut env, now, cg, file)
    }

    /// Deletes a container file everywhere (page cache + cleancache).
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn delete_file(&mut self, vm: VmId, cg: CgroupId, file: FileId) {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.delete_file(&mut env, cg, file)
    }

    /// Drops a container's clean page-cache pages into the second-chance
    /// cache (the `drop_caches` administrative knob).
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn drop_caches(&mut self, now: SimTime, vm: VmId, cg: CgroupId) {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.drop_caches(&mut env, now, cg);
    }

    /// Reserves anonymous memory for a container.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn anon_reserve(&mut self, vm: VmId, cg: CgroupId, pages: u64) {
        self.guest_mut(vm).anon_reserve(cg, pages);
    }

    /// Touches one anonymous page of a container.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn anon_touch(&mut self, now: SimTime, vm: VmId, cg: CgroupId, page: u64) -> SimTime {
        let (guest, mut env) = Self::split(&mut self.vms, &mut self.cache, &mut self.disk, vm);
        guest.anon_touch(&mut env, now, cg, page)
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// Host-side view of one container's cache pool statistics.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn container_cache_stats(&self, vm: VmId, cg: CgroupId) -> Option<PoolStats> {
        let pool = self.guest(vm).cgroup(cg).pool()?;
        self.cache.pool_stats(vm, pool)
    }

    /// Guest-side memory statistics of one container.
    ///
    /// # Panics
    ///
    /// Panics if the VM or container does not exist.
    pub fn container_mem_stats(&self, vm: VmId, cg: CgroupId) -> CgroupMemStats {
        self.guest(vm).cgroup_mem_stats(cg)
    }

    /// Aggregate cache usage of one VM.
    pub fn vm_cache_usage(&self, vm: VmId) -> VmUsage {
        self.cache.vm_usage(vm)
    }

    /// Cache-wide totals (occupancy, capacities, evictions).
    pub fn cache_totals(&self) -> CacheTotals {
        self.cache.totals()
    }

    /// Immutable access to the hypervisor cache (for benches/tests).
    pub fn cache(&self) -> &DoubleDeckerCache {
        &self.cache
    }

    /// Immutable access to a guest.
    ///
    /// # Panics
    ///
    /// Panics if the VM does not exist; use [`Host::try_guest`] for a
    /// non-panicking variant.
    pub fn guest(&self, vm: VmId) -> &GuestOs {
        self.vms.get(&vm).unwrap_or_else(|| panic!("unknown {vm}"))
    }

    /// Immutable access to a guest, or `None` if the VM does not exist
    /// (e.g. it crashed).
    pub fn try_guest(&self, vm: VmId) -> Option<&GuestOs> {
        self.vms.get(&vm)
    }

    /// Mutable access to a guest, or `None` if the VM does not exist.
    pub fn try_guest_mut(&mut self, vm: VmId) -> Option<&mut GuestOs> {
        self.vms.get_mut(&vm)
    }

    /// Mutable access to a guest (for configuration not involving the
    /// hypervisor, e.g. disabling cleancache).
    ///
    /// # Panics
    ///
    /// Panics if the VM does not exist.
    pub fn guest_mut(&mut self, vm: VmId) -> &mut GuestOs {
        self.vms
            .get_mut(&vm)
            .unwrap_or_else(|| panic!("unknown {vm}"))
    }

    /// Shared-disk utilization over `[0, now]`.
    pub fn disk_utilization(&self, now: SimTime) -> f64 {
        self.disk.utilization(now)
    }

    /// Splits the host into one guest plus the environment it needs,
    /// keeping the borrows disjoint.
    fn split<'a>(
        vms: &'a mut BTreeMap<VmId, GuestOs>,
        cache: &'a mut DoubleDeckerCache,
        disk: &'a mut Device,
        vm: VmId,
    ) -> (&'a mut GuestOs, GuestEnv<'a>) {
        let guest = vms.get_mut(&vm).unwrap_or_else(|| panic!("unknown {vm}"));
        let env = GuestEnv {
            backend: cache as &mut dyn SecondChanceCache,
            disk,
        };
        (guest, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_guest::HitLevel;
    use ddc_hypercache::{PartitionMode, StoreKind, EVICTION_BATCH_PAGES};

    fn host_with_cache(pages: u64) -> Host {
        Host::new(HostConfig::new(CacheConfig::mem_only(pages)))
    }

    fn a(vm: VmId, inode: u64, block: u64) -> BlockAddr {
        BlockAddr::new(vm_file(vm, inode), block)
    }

    #[test]
    fn full_stack_read_path() {
        let mut host = host_with_cache(1024);
        let vm = host.boot_vm(1, 100); // 1 MiB guest: 16 blocks
        let cg = host.create_container(vm, "c", 8, CachePolicy::mem(100));
        let mut now = SimTime::ZERO;
        // Working set larger than the cgroup limit: pages cycle through
        // the page cache into the hypervisor cache.
        for b in 0..16 {
            now = host.read(now, vm, cg, a(vm, 1, b)).finish;
        }
        let r = host.read(now, vm, cg, a(vm, 1, 0));
        assert_eq!(r.level, HitLevel::Cleancache, "second-chance hit");
        let stats = host.container_cache_stats(vm, cg).unwrap();
        assert!(stats.puts > 0);
        assert!(stats.hits > 0);
    }

    #[test]
    fn two_vms_share_cache_with_isolation() {
        let mut host = host_with_cache(2 * EVICTION_BATCH_PAGES);
        let vm1 = host.boot_vm(1, 60);
        let vm2 = host.boot_vm(1, 40);
        let c1 = host.create_container(vm1, "a", 4, CachePolicy::mem(100));
        let c2 = host.create_container(vm2, "b", 4, CachePolicy::mem(100));
        let mut now = SimTime::ZERO;
        // Both fill well beyond capacity.
        for b in 0..(3 * EVICTION_BATCH_PAGES) {
            now = host.read(now, vm1, c1, a(vm1, 1, b)).finish;
            now = host.read(now, vm2, c2, a(vm2, 1, b)).finish;
        }
        let u1 = host.vm_cache_usage(vm1);
        let u2 = host.vm_cache_usage(vm2);
        let total = u1.mem_pages + u2.mem_pages;
        assert!(total <= 2 * EVICTION_BATCH_PAGES);
        // The 60-weight VM should end up with more cache than the 40.
        assert!(
            u1.mem_pages >= u2.mem_pages,
            "weight 60 ({}) should hold at least as much as weight 40 ({})",
            u1.mem_pages,
            u2.mem_pages
        );
    }

    #[test]
    fn shutdown_vm_releases_cache() {
        let mut host = host_with_cache(1024);
        let vm = host.boot_vm(1, 100);
        let cg = host.create_container(vm, "c", 4, CachePolicy::mem(100));
        let mut now = SimTime::ZERO;
        for b in 0..12 {
            now = host.read(now, vm, cg, a(vm, 1, b)).finish;
        }
        assert!(host.cache_totals().mem_used_pages > 0);
        host.shutdown_vm(vm);
        assert_eq!(host.cache_totals().mem_used_pages, 0);
        assert!(host.vm_ids().is_empty());
        assert!(!host.shutdown_vm(vm), "second shutdown is a safe no-op");
    }

    #[test]
    fn crash_and_reboot_with_same_id_sees_no_stale_data() {
        let mut host = host_with_cache(1024);
        let vm = host.boot_vm(1, 100);
        let cg = host.create_container(vm, "c", 4, CachePolicy::mem(100));
        let mut now = SimTime::ZERO;
        // Write then cycle through the page cache so versioned copies
        // land in the hypervisor cache.
        for b in 0..12 {
            now = host.write(now, vm, cg, a(vm, 1, b)).finish;
        }
        now = host.fsync(now, vm, cg, vm_file(vm, 1));
        for b in 0..12 {
            now = host.read(now, vm, cg, a(vm, 1, b)).finish;
        }
        assert!(host.cache_totals().mem_used_pages > 0);
        assert!(host.crash_vm(vm));
        assert_eq!(
            host.cache_totals().mem_used_pages,
            0,
            "crash reclaims every page the VM owned"
        );
        assert!(host.try_guest(vm).is_none());
        // Reboot under the same domain id and re-read the same blocks:
        // everything must come from the virtual disk, never from a
        // pre-crash cached copy. GuestOs::read asserts version coherence
        // internally, so a stale hit would abort the test.
        assert!(host.boot_vm_with_id(vm, 1, 100));
        assert!(!host.boot_vm_with_id(vm, 1, 100), "already running");
        let cg2 = host.create_container(vm, "c", 4, CachePolicy::mem(100));
        let r = host.read(now, vm, cg2, a(vm, 1, 0));
        assert_eq!(r.level, HitLevel::Disk, "cold after reboot");
        // Fresh ids from boot_vm never collide with the rebooted id.
        let other = host.boot_vm(1, 100);
        assert_ne!(other, vm);
    }

    #[test]
    fn fault_plane_reaches_cache_and_channel() {
        use ddc_sim::{FaultKind, FaultSchedule};
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(64, 256)));
        host.set_ssd_fault_schedule(Some(FaultSchedule::new(7).with_window(
            SimTime::ZERO,
            None,
            FaultKind::TransientErrors { rate: 1.0 },
        )));
        host.set_ssd_fallback_mode(ddc_hypercache::FallbackMode::Reject);
        assert!(!host.ssd_quarantined(), "quarantine waits for real IO");
        let vm = host.boot_vm(1, 100);
        assert!(host.set_channel_fault_schedule(
            vm,
            Some(FaultSchedule::new(8).with_window(
                SimTime::ZERO,
                None,
                FaultKind::TransientErrors { rate: 1.0 },
            ))
        ));
        assert!(!host.set_channel_fault_schedule(VmId(99), None));
        let cg = host.create_container(vm, "c", 4, CachePolicy::ssd(100));
        let mut now = SimTime::ZERO;
        for b in 0..12 {
            now = host.read(now, vm, cg, a(vm, 1, b)).finish;
        }
        let counters = host.guest(vm).channel().counters();
        assert!(
            counters.dropped_calls > 0,
            "channel schedule drops hypercalls"
        );
        let _ = now;
    }

    #[test]
    fn policy_change_propagates_to_cache() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(1024, 1024)));
        let vm = host.boot_vm(1, 100);
        let cg = host.create_container(vm, "c", 4, CachePolicy::mem(100));
        let mut now = SimTime::ZERO;
        for b in 0..12 {
            now = host.read(now, vm, cg, a(vm, 1, b)).finish;
        }
        let before = host.container_cache_stats(vm, cg).unwrap();
        assert!(before.mem_pages > 0);
        assert_eq!(before.ssd_pages, 0);
        host.set_container_policy(vm, cg, CachePolicy::ssd(100));
        let after = host.container_cache_stats(vm, cg).unwrap();
        assert_eq!(after.mem_pages, 0, "objects re-homed to SSD");
        assert_eq!(after.ssd_pages, before.mem_pages);
        let _ = now;
    }

    #[test]
    fn container_mem_limit_change() {
        let mut host = host_with_cache(1024);
        let vm = host.boot_vm(4, 100);
        let cg = host.create_container(vm, "c", 32, CachePolicy::mem(100));
        let mut now = SimTime::ZERO;
        for b in 0..32 {
            now = host.read(now, vm, cg, a(vm, 1, b)).finish;
        }
        host.set_container_mem_limit(now, vm, cg, 4);
        assert!(host.container_mem_stats(vm, cg).page_cache_pages <= 4);
    }

    #[test]
    fn write_fsync_delete_cycle() {
        let mut host = host_with_cache(1024);
        let vm = host.boot_vm(4, 100);
        let cg = host.create_container(vm, "mail", 32, CachePolicy::mem(100));
        let file = vm_file(vm, 7);
        let mut now = SimTime::ZERO;
        for b in 0..4 {
            now = host.write(now, vm, cg, BlockAddr::new(file, b)).finish;
        }
        now = host.fsync(now, vm, cg, file);
        assert_eq!(host.container_mem_stats(vm, cg).dirty_pages, 0);
        host.delete_file(vm, cg, file);
        let r = host.read(now, vm, cg, BlockAddr::new(file, 0));
        assert_eq!(r.level, HitLevel::Disk);
    }

    #[test]
    fn anon_path_through_host() {
        let mut host = host_with_cache(1024);
        let vm = host.boot_vm(1, 100); // 16 blocks of RAM
        let cg = host.create_container(vm, "redis", 64, CachePolicy::mem(100));
        host.anon_reserve(vm, cg, 32);
        let mut now = SimTime::ZERO;
        for p in 0..32 {
            now = host.anon_touch(now, vm, cg, p);
        }
        let stats = host.container_mem_stats(vm, cg);
        assert!(stats.swap_out_total > 0, "guest RAM too small, must swap");
        assert!(stats.anon_resident_pages < 32);
    }

    #[test]
    fn dynamic_vm_weight_and_capacity() {
        let mut host = host_with_cache(512);
        let vm1 = host.boot_vm(1, 100);
        host.set_vm_cache_weight(vm1, 60);
        host.set_mem_cache_capacity(SimTime::ZERO, 1024);
        assert_eq!(host.cache_totals().mem_capacity_pages, 1024);
        host.set_ssd_cache_capacity(SimTime::ZERO, 2048);
        assert_eq!(host.cache_totals().ssd_capacity_pages, 2048);
        assert_eq!(host.cache().mode(), PartitionMode::DoubleDecker);
    }

    #[test]
    fn per_store_vm_weights_through_host() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(1000, 1000)));
        let vm1 = host.boot_vm(16, 100);
        let vm2 = host.boot_vm(16, 100);
        host.set_vm_store_weights(vm1, 80, 20);
        host.set_vm_store_weights(vm2, 20, 80);
        let m1 = host.create_container(vm1, "m", 64, CachePolicy::mem(100));
        let s2 = host.create_container(vm2, "s", 64, CachePolicy::ssd(100));
        let e_m1 = host
            .container_cache_stats(vm1, m1)
            .unwrap()
            .entitlement_pages;
        let e_s2 = host
            .container_cache_stats(vm2, s2)
            .unwrap()
            .entitlement_pages;
        assert_eq!(e_m1, 1000, "vm1 is the only memory-store participant");
        assert_eq!(e_s2, 1000, "vm2 is the only SSD-store participant");
    }

    #[test]
    fn vm_file_namespacing() {
        let f1 = vm_file(VmId(1), 7);
        let f2 = vm_file(VmId(2), 7);
        assert_ne!(f1, f2);
        let f3 = vm_file(VmId(1), 8);
        assert_ne!(f1, f3);
    }

    #[test]
    fn disk_is_shared_across_vms() {
        let mut host = host_with_cache(0); // no hypervisor cache at all
        let vm1 = host.boot_vm(1, 100);
        let vm2 = host.boot_vm(1, 100);
        let c1 = host.create_container(vm1, "a", 8, CachePolicy::disabled());
        let c2 = host.create_container(vm2, "b", 8, CachePolicy::disabled());
        // Two simultaneous cold reads contend on the single spindle.
        let r1 = host.read(SimTime::ZERO, vm1, c1, a(vm1, 1, 0));
        let r2 = host.read(SimTime::ZERO, vm2, c2, a(vm2, 1, 0));
        assert!(r2.finish > r1.finish, "second read queues behind first");
        assert!(host.disk_utilization(r2.finish) > 0.5);
    }

    #[test]
    fn store_kind_is_exposed() {
        // Cheap compile-surface check that hypercache types re-export
        // cleanly through this crate's public deps.
        assert_eq!(StoreKind::Mem.to_string(), "Mem");
    }

    #[test]
    fn cache_crash_recover_continue() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(256, 256)));
        host.enable_cache_journal();
        let vm1 = host.boot_vm(1, 100);
        let vm2 = host.boot_vm(1, 100);
        let c1 = host.create_container(vm1, "a", 4, CachePolicy::mem(100));
        let c2 = host.create_container(vm2, "b", 4, CachePolicy::ssd(100));
        let mut now = SimTime::ZERO;
        // Writes create versions; fsync + re-reads churn copies into the
        // second-chance cache; more writes open invalidation windows.
        for round in 0..3 {
            for b in 0..12 {
                now = host.write(now, vm1, c1, a(vm1, 1, b)).finish;
                now = host.write(now, vm2, c2, a(vm2, 1, b)).finish;
            }
            now = host.fsync(now, vm1, c1, vm_file(vm1, 1));
            now = host.fsync(now, vm2, c2, vm_file(vm2, 1));
            for b in 0..12 {
                now = host.read(now, vm1, c1, a(vm1, 1, b)).finish;
                now = host.read(now, vm2, c2, a(vm2, 1, b)).finish;
            }
            let _ = round;
        }
        let image = host.cache_journal_image().expect("journaling on");
        let durable = host.cache_journal_durable_len().unwrap();
        assert!(durable <= image.len());
        // Crash the caching layer, losing everything past the durable
        // watermark plus a torn half-record.
        let cut = durable.saturating_sub(5);
        let report = host.crash_and_recover(&image[..cut]);
        assert!(report.records_replayed > 0);
        assert!(ddc_hypercache::audit(host.cache()).is_empty());
        // The recovered cache journals a checkpoint of its own.
        assert!(!host.cache_journal_image().unwrap().is_empty());
        // Guests keep running against the recovered cache; GuestOs::read
        // asserts version coherence, and the release-mode counter must
        // stay zero — recovery may lose entries, never serve stale ones.
        for b in 0..12 {
            now = host.read(now, vm1, c1, a(vm1, 1, b)).finish;
            now = host.read(now, vm2, c2, a(vm2, 1, b)).finish;
        }
        assert_eq!(host.guest(vm1).counters().stale_cleancache_hits, 0);
        assert_eq!(host.guest(vm2).counters().stale_cleancache_hits, 0);
        assert!(ddc_hypercache::audit(host.cache()).is_empty());
    }

    #[test]
    fn corrupt_recovered_entry_is_quarantined_not_served() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(128, 128)));
        host.enable_cache_journal();
        host.set_ssd_fallback_mode(FallbackMode::Reject);
        let vm = host.boot_vm(1, 100);
        let cg = host.create_container(vm, "c", 4, CachePolicy::ssd(100));
        let mut now = SimTime::ZERO;
        for b in 0..12 {
            now = host.read(now, vm, cg, a(vm, 1, b)).finish;
        }
        let image = host.cache_journal_image().unwrap();
        host.crash_and_recover(&image);
        // Bit-rot one recovered SSD entry; the damage must surface as a
        // failed get + quarantine, never as served data.
        let entries = host.cache().entries();
        assert!(!entries.is_empty(), "recovery restored SSD entries");
        let (evm, pool, addr, _) = entries[0];
        assert!(host.corrupt_cache_entry(evm, pool, addr));
        let r = host.read(now, evm, cg, addr);
        assert_eq!(r.level, HitLevel::Disk, "corrupt slot falls through");
        assert!(host.ssd_quarantined(), "verify-on-read quarantined SSD");
        assert_eq!(host.guest(evm).counters().stale_cleancache_hits, 0);
    }

    #[test]
    #[should_panic(expected = "unknown vm9")]
    fn unknown_vm_panics() {
        let host = host_with_cache(16);
        host.guest(VmId(9));
    }

    #[test]
    fn remote_tier_serves_cold_reads_and_writes_localize() {
        use ddc_storage::RemoteConfig;
        let mut host = host_with_cache(1024);
        let vm = host.boot_vm(1, 100);
        let cg = host.create_container(vm, "c", 8, CachePolicy::mem(100));
        let id = host
            .register_remote_store(ChunkStore::new(RemoteId(1), RemoteConfig::cdn(42)))
            .unwrap();
        assert!(host.container_remote_counters(vm, cg).is_none());
        host.bind_container_remote(vm, cg, id, RemoteFetchConfig::default())
            .unwrap();
        // Binding twice is a typed error, not a panic.
        assert!(matches!(
            host.bind_container_remote(vm, cg, id, RemoteFetchConfig::default()),
            Err(RemoteError::AlreadyBound { .. })
        ));
        // A cold read of a never-written block is served by the remote
        // (as a cleancache hit at the initial version), not the disk.
        let r = host.read(SimTime::ZERO, vm, cg, a(vm, 1, 0));
        assert_eq!(r.level, HitLevel::Cleancache, "remote served the miss");
        let c = host.container_remote_counters(vm, cg).unwrap();
        assert!(c.served >= 1);
        assert_eq!(host.remote_totals().served, c.served);
        assert_eq!(host.guest(vm).counters().stale_cleancache_hits, 0);
        // Writing a block invalidates its cleancache copy, which
        // localizes it: the remote may never serve it again.
        let mut now = r.finish;
        now = host.write(now, vm, cg, a(vm, 1, 1)).finish;
        now = host.fsync(now, vm, cg, vm_file(vm, 1));
        let pool = host.guest(vm).cgroup(cg).pool().unwrap();
        let binding = host.cache().remote_binding(vm, pool).unwrap();
        assert!(binding.is_localized(a(vm, 1, 1)), "write localized block");
        assert!(ddc_hypercache::audit(host.cache()).is_empty());
        let _ = now;
    }
}
