//! Serializable experiment reports.
//!
//! Reports mirror the measurement types in `ddc-metrics`/`ddc-sim` as
//! plain data with `serde` derives, so the `repro` harness can emit JSON
//! alongside the human-readable tables recorded in EXPERIMENTS.md.

use ddc_metrics::OpsRecorder;
use ddc_sim::{SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// Per-thread throughput/latency summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreadReport {
    /// The thread's label (e.g. `"web/t0"`).
    pub label: String,
    /// Operations completed.
    pub ops: u64,
    /// Operations per second of virtual time.
    pub ops_per_sec: f64,
    /// Megabytes per second of virtual time.
    pub mb_per_sec: f64,
    /// Mean operation latency, milliseconds.
    pub mean_latency_ms: f64,
    /// 99th-percentile operation latency, milliseconds.
    pub p99_latency_ms: f64,
}

impl ThreadReport {
    /// Summarizes a recorder over `[0, end]`, or over its marked
    /// steady-state window if one was opened.
    pub fn from_recorder(label: &str, recorder: &OpsRecorder, end: SimTime) -> ThreadReport {
        let r = recorder.window_report(end);
        ThreadReport {
            label: label.to_owned(),
            ops: r.ops,
            ops_per_sec: r.ops_per_sec,
            mb_per_sec: r.mb_per_sec,
            mean_latency_ms: r.mean_latency.as_millis_f64(),
            p99_latency_ms: r.p99_latency.as_millis_f64(),
        }
    }
}

/// One probe's samples as plain data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesReport {
    /// Probe name.
    pub name: String,
    /// `(seconds, value)` samples.
    pub points: Vec<(f64, f64)>,
}

impl SeriesReport {
    /// Converts a [`TimeSeries`].
    pub fn from_series(series: &TimeSeries) -> SeriesReport {
        SeriesReport {
            name: series.name().to_owned(),
            points: series
                .points()
                .iter()
                .map(|p| (p.at.as_secs_f64(), p.value))
                .collect(),
        }
    }

    /// Mean value over samples in `[from, to)` seconds.
    pub fn mean_in(&self, from: f64, to: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// The full result of one experiment run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Virtual end time, seconds.
    pub end: f64,
    /// Per-thread summaries.
    pub threads: Vec<ThreadReport>,
    /// Probe sample series.
    pub series: Vec<SeriesReport>,
    /// Final memory-store occupancy, pages.
    pub mem_cache_used_pages: u64,
    /// Final SSD-store occupancy, pages.
    pub ssd_cache_used_pages: u64,
    /// Total evictions performed by the hypervisor cache.
    pub evictions: u64,
}

impl ExperimentReport {
    /// Sums `ops_per_sec` across threads whose label starts with `prefix`
    /// — per-container throughput when threads are labelled
    /// `container/tN`.
    pub fn throughput_of(&self, prefix: &str) -> f64 {
        self.threads
            .iter()
            .filter(|t| t.label.starts_with(prefix))
            .map(|t| t.ops_per_sec)
            .sum()
    }

    /// Sums `mb_per_sec` across threads whose label starts with `prefix`.
    pub fn mb_per_sec_of(&self, prefix: &str) -> f64 {
        self.threads
            .iter()
            .filter(|t| t.label.starts_with(prefix))
            .map(|t| t.mb_per_sec)
            .sum()
    }

    /// Ops-weighted mean latency (ms) across threads with the prefix.
    pub fn mean_latency_of(&self, prefix: &str) -> f64 {
        let mut ops = 0u64;
        let mut weighted = 0.0;
        for t in self.threads.iter().filter(|t| t.label.starts_with(prefix)) {
            ops += t.ops;
            weighted += t.mean_latency_ms * t.ops as f64;
        }
        if ops == 0 {
            0.0
        } else {
            weighted / ops as f64
        }
    }

    /// The series with the given name, if probed.
    pub fn series(&self, name: &str) -> Option<&SeriesReport> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics: the report contains only serializable plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plain data serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_sim::SimDuration;

    #[test]
    fn thread_report_from_recorder() {
        let mut rec = OpsRecorder::new();
        rec.record(
            SimTime::from_secs(1),
            1_000_000,
            SimDuration::from_millis(2),
        );
        let tr = ThreadReport::from_recorder("x/t0", &rec, SimTime::from_secs(2));
        assert_eq!(tr.ops, 1);
        assert!((tr.ops_per_sec - 0.5).abs() < 1e-9);
        assert!((tr.mb_per_sec - 0.5).abs() < 1e-9);
        assert!((tr.mean_latency_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn series_report_roundtrip_and_mean() {
        let mut s = TimeSeries::new("occ");
        for sec in 0..10 {
            s.record(SimTime::from_secs(sec), sec as f64);
        }
        let sr = SeriesReport::from_series(&s);
        assert_eq!(sr.points.len(), 10);
        assert_eq!(sr.mean_in(2.0, 5.0), Some(3.0));
        assert_eq!(sr.mean_in(90.0, 99.0), None);
    }

    fn sample_report() -> ExperimentReport {
        ExperimentReport {
            end: 10.0,
            threads: vec![
                ThreadReport {
                    label: "web/t0".into(),
                    ops: 100,
                    ops_per_sec: 10.0,
                    mb_per_sec: 1.0,
                    mean_latency_ms: 2.0,
                    p99_latency_ms: 9.0,
                },
                ThreadReport {
                    label: "web/t1".into(),
                    ops: 300,
                    ops_per_sec: 30.0,
                    mb_per_sec: 3.0,
                    mean_latency_ms: 4.0,
                    p99_latency_ms: 9.0,
                },
                ThreadReport {
                    label: "mail/t0".into(),
                    ops: 50,
                    ops_per_sec: 5.0,
                    mb_per_sec: 0.5,
                    mean_latency_ms: 50.0,
                    p99_latency_ms: 200.0,
                },
            ],
            series: vec![],
            mem_cache_used_pages: 7,
            ssd_cache_used_pages: 0,
            evictions: 3,
        }
    }

    #[test]
    fn aggregations_by_prefix() {
        let r = sample_report();
        assert!((r.throughput_of("web") - 40.0).abs() < 1e-9);
        assert!((r.mb_per_sec_of("web") - 4.0).abs() < 1e-9);
        assert!((r.throughput_of("mail") - 5.0).abs() < 1e-9);
        assert_eq!(r.throughput_of("nope"), 0.0);
        // Ops-weighted: (2*100 + 4*300) / 400 = 3.5
        assert!((r.mean_latency_of("web") - 3.5).abs() < 1e-9);
        assert_eq!(r.mean_latency_of("nope"), 0.0);
    }

    #[test]
    fn json_serialization_roundtrips() {
        let r = sample_report();
        let json = r.to_json();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(json.contains("web/t0"));
    }
}
