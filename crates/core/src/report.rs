//! Serializable experiment reports.
//!
//! Reports mirror the measurement types in `ddc-metrics`/`ddc-sim` as
//! plain data with deterministic JSON emission (via `ddc-json`), so the
//! `repro` harness can emit JSON alongside the human-readable tables
//! recorded in EXPERIMENTS.md. Emission is byte-stable: two identical
//! runs render byte-identical reports, which the fault-injection
//! determinism tests assert.

use ddc_json::{Json, JsonError};
use ddc_metrics::{counter_snapshot, snapshot_from_json, snapshot_json, OpsRecorder};
use ddc_sim::{SimTime, TimeSeries};

/// Per-thread throughput/latency summary.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadReport {
    /// The thread's label (e.g. `"web/t0"`).
    pub label: String,
    /// Operations completed.
    pub ops: u64,
    /// Operations per second of virtual time.
    pub ops_per_sec: f64,
    /// Megabytes per second of virtual time.
    pub mb_per_sec: f64,
    /// Mean operation latency, milliseconds.
    pub mean_latency_ms: f64,
    /// 99th-percentile operation latency, milliseconds.
    pub p99_latency_ms: f64,
}

impl ThreadReport {
    /// Summarizes a recorder over `[0, end]`, or over its marked
    /// steady-state window if one was opened.
    pub fn from_recorder(label: &str, recorder: &OpsRecorder, end: SimTime) -> ThreadReport {
        let r = recorder.window_report(end);
        ThreadReport {
            label: label.to_owned(),
            ops: r.ops,
            ops_per_sec: r.ops_per_sec,
            mb_per_sec: r.mb_per_sec,
            mean_latency_ms: r.mean_latency.as_millis_f64(),
            p99_latency_ms: r.p99_latency.as_millis_f64(),
        }
    }
}

/// One probe's samples as plain data.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesReport {
    /// Probe name.
    pub name: String,
    /// `(seconds, value)` samples.
    pub points: Vec<(f64, f64)>,
}

impl SeriesReport {
    /// Converts a [`TimeSeries`].
    pub fn from_series(series: &TimeSeries) -> SeriesReport {
        SeriesReport {
            name: series.name().to_owned(),
            points: series
                .points()
                .iter()
                .map(|p| (p.at.as_secs_f64(), p.value))
                .collect(),
        }
    }

    /// Mean value over samples in `[from, to)` seconds.
    pub fn mean_in(&self, from: f64, to: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Fault-plane counters aggregated across the whole host: the cache's
/// degradation state machine plus every VM's hypercall channel. All zero
/// on a fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Times the SSD tier was quarantined after a faulted IO.
    pub ssd_quarantines: u64,
    /// Successful recovery probes that re-enabled the SSD tier.
    pub ssd_recoveries: u64,
    /// SSD pages invalidated when entering quarantine.
    pub quarantine_invalidated_pages: u64,
    /// Cache gets that failed on a faulted store read (served fail-open).
    pub failed_gets: u64,
    /// Cache puts that failed on a faulted store write.
    pub failed_puts: u64,
    /// Guest hypercalls served fail-open after a backend failure.
    pub channel_fail_opens: u64,
    /// Guest hypercalls dropped by the channel itself.
    pub channel_dropped_calls: u64,
    /// Times a guest's put circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Puts skipped locally while a breaker was open.
    pub breaker_skipped_puts: u64,
    /// Probes that closed a breaker again.
    pub breaker_recoveries: u64,
}

counter_snapshot!(FaultTotals, "faults", {
    ssd_quarantines,
    ssd_recoveries,
    quarantine_invalidated_pages,
    failed_gets,
    failed_puts,
    channel_fail_opens,
    channel_dropped_calls,
    breaker_trips,
    breaker_skipped_puts,
    breaker_recoveries,
});

/// The full result of one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Virtual end time, seconds.
    pub end: f64,
    /// Per-thread summaries.
    pub threads: Vec<ThreadReport>,
    /// Probe sample series.
    pub series: Vec<SeriesReport>,
    /// Final memory-store occupancy, pages.
    pub mem_cache_used_pages: u64,
    /// Final SSD-store occupancy, pages.
    pub ssd_cache_used_pages: u64,
    /// Total evictions performed by the hypervisor cache.
    pub evictions: u64,
    /// Fault-plane counters (all zero on a fault-free run).
    pub faults: FaultTotals,
}

impl ExperimentReport {
    /// Sums `ops_per_sec` across threads whose label starts with `prefix`
    /// — per-container throughput when threads are labelled
    /// `container/tN`.
    pub fn throughput_of(&self, prefix: &str) -> f64 {
        self.threads
            .iter()
            .filter(|t| t.label.starts_with(prefix))
            .map(|t| t.ops_per_sec)
            .sum()
    }

    /// Sums `mb_per_sec` across threads whose label starts with `prefix`.
    pub fn mb_per_sec_of(&self, prefix: &str) -> f64 {
        self.threads
            .iter()
            .filter(|t| t.label.starts_with(prefix))
            .map(|t| t.mb_per_sec)
            .sum()
    }

    /// Ops-weighted mean latency (ms) across threads with the prefix.
    pub fn mean_latency_of(&self, prefix: &str) -> f64 {
        let mut ops = 0u64;
        let mut weighted = 0.0;
        for t in self.threads.iter().filter(|t| t.label.starts_with(prefix)) {
            ops += t.ops;
            weighted += t.mean_latency_ms * t.ops as f64;
        }
        if ops == 0 {
            0.0
        } else {
            weighted / ops as f64
        }
    }

    /// The series with the given name, if probed.
    pub fn series(&self, name: &str) -> Option<&SeriesReport> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Serializes to pretty JSON (deterministic: byte-identical for
    /// identical reports).
    pub fn to_json(&self) -> String {
        let mut v = Json::object();
        v.set("end", self.end);
        let threads = self
            .threads
            .iter()
            .map(|t| {
                let mut tv = Json::object();
                tv.set("label", t.label.as_str());
                tv.set("ops", t.ops);
                tv.set("ops_per_sec", t.ops_per_sec);
                tv.set("mb_per_sec", t.mb_per_sec);
                tv.set("mean_latency_ms", t.mean_latency_ms);
                tv.set("p99_latency_ms", t.p99_latency_ms);
                tv
            })
            .collect::<Vec<_>>();
        v.set("threads", threads);
        let series = self
            .series
            .iter()
            .map(|s| {
                let mut sv = Json::object();
                sv.set("name", s.name.as_str());
                sv.set(
                    "points",
                    s.points
                        .iter()
                        .map(|&(t, val)| Json::Arr(vec![Json::Num(t), Json::Num(val)]))
                        .collect::<Vec<_>>(),
                );
                sv
            })
            .collect::<Vec<_>>();
        v.set("series", series);
        v.set("mem_cache_used_pages", self.mem_cache_used_pages);
        v.set("ssd_cache_used_pages", self.ssd_cache_used_pages);
        v.set("evictions", self.evictions);
        v.set("faults", snapshot_json(&self.faults));
        v.to_string_pretty()
    }

    /// Parses a report previously produced by [`ExperimentReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed or schema-mismatched input.
    pub fn from_json(json: &str) -> Result<ExperimentReport, JsonError> {
        let bad = |message: &str| JsonError {
            message: message.to_owned(),
            offset: 0,
        };
        let v = Json::parse(json)?;
        let num = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(&format!("missing number {key:?}")))
        };
        let int = |obj: &Json, key: &str| num(obj, key).map(|n| n as u64);
        let mut threads = Vec::new();
        for t in v.get("threads").and_then(Json::as_array).unwrap_or(&[]) {
            threads.push(ThreadReport {
                label: t
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("thread needs a label"))?
                    .to_owned(),
                ops: int(t, "ops")?,
                ops_per_sec: num(t, "ops_per_sec")?,
                mb_per_sec: num(t, "mb_per_sec")?,
                mean_latency_ms: num(t, "mean_latency_ms")?,
                p99_latency_ms: num(t, "p99_latency_ms")?,
            });
        }
        let mut series = Vec::new();
        for s in v.get("series").and_then(Json::as_array).unwrap_or(&[]) {
            let mut points = Vec::new();
            for p in s.get("points").and_then(Json::as_array).unwrap_or(&[]) {
                let pair = p
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| bad("series point must be a [t, v] pair"))?;
                points.push((
                    pair[0]
                        .as_f64()
                        .ok_or_else(|| bad("point t not a number"))?,
                    pair[1]
                        .as_f64()
                        .ok_or_else(|| bad("point v not a number"))?,
                ));
            }
            series.push(SeriesReport {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("series needs a name"))?
                    .to_owned(),
                points,
            });
        }
        // Reports from before the fault plane have no "faults" object;
        // treat them as fault-free.
        let faults = match v.get("faults") {
            None | Some(Json::Null) => FaultTotals::default(),
            Some(f) => {
                snapshot_from_json(f).ok_or_else(|| bad("faults block missing a counter"))?
            }
        };
        Ok(ExperimentReport {
            end: num(&v, "end")?,
            threads,
            series,
            mem_cache_used_pages: int(&v, "mem_cache_used_pages")?,
            ssd_cache_used_pages: int(&v, "ssd_cache_used_pages")?,
            evictions: int(&v, "evictions")?,
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_sim::SimDuration;

    #[test]
    fn thread_report_from_recorder() {
        let mut rec = OpsRecorder::new();
        rec.record(
            SimTime::from_secs(1),
            1_000_000,
            SimDuration::from_millis(2),
        );
        let tr = ThreadReport::from_recorder("x/t0", &rec, SimTime::from_secs(2));
        assert_eq!(tr.ops, 1);
        assert!((tr.ops_per_sec - 0.5).abs() < 1e-9);
        assert!((tr.mb_per_sec - 0.5).abs() < 1e-9);
        assert!((tr.mean_latency_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn series_report_roundtrip_and_mean() {
        let mut s = TimeSeries::new("occ");
        for sec in 0..10 {
            s.record(SimTime::from_secs(sec), sec as f64);
        }
        let sr = SeriesReport::from_series(&s);
        assert_eq!(sr.points.len(), 10);
        assert_eq!(sr.mean_in(2.0, 5.0), Some(3.0));
        assert_eq!(sr.mean_in(90.0, 99.0), None);
    }

    fn sample_report() -> ExperimentReport {
        ExperimentReport {
            end: 10.0,
            threads: vec![
                ThreadReport {
                    label: "web/t0".into(),
                    ops: 100,
                    ops_per_sec: 10.0,
                    mb_per_sec: 1.0,
                    mean_latency_ms: 2.0,
                    p99_latency_ms: 9.0,
                },
                ThreadReport {
                    label: "web/t1".into(),
                    ops: 300,
                    ops_per_sec: 30.0,
                    mb_per_sec: 3.0,
                    mean_latency_ms: 4.0,
                    p99_latency_ms: 9.0,
                },
                ThreadReport {
                    label: "mail/t0".into(),
                    ops: 50,
                    ops_per_sec: 5.0,
                    mb_per_sec: 0.5,
                    mean_latency_ms: 50.0,
                    p99_latency_ms: 200.0,
                },
            ],
            series: vec![],
            mem_cache_used_pages: 7,
            ssd_cache_used_pages: 0,
            evictions: 3,
            faults: FaultTotals {
                ssd_quarantines: 1,
                quarantine_invalidated_pages: 5,
                failed_gets: 2,
                channel_fail_opens: 2,
                ..FaultTotals::default()
            },
        }
    }

    #[test]
    fn aggregations_by_prefix() {
        let r = sample_report();
        assert!((r.throughput_of("web") - 40.0).abs() < 1e-9);
        assert!((r.mb_per_sec_of("web") - 4.0).abs() < 1e-9);
        assert!((r.throughput_of("mail") - 5.0).abs() < 1e-9);
        assert_eq!(r.throughput_of("nope"), 0.0);
        // Ops-weighted: (2*100 + 4*300) / 400 = 3.5
        assert!((r.mean_latency_of("web") - 3.5).abs() < 1e-9);
        assert_eq!(r.mean_latency_of("nope"), 0.0);
    }

    #[test]
    fn json_serialization_roundtrips() {
        let r = sample_report();
        let json = r.to_json();
        let back = ExperimentReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert!(json.contains("web/t0"));
        assert!(json.contains("ssd_quarantines"));
        assert_eq!(back.to_json(), json, "re-emission is byte-identical");
        assert!(ExperimentReport::from_json("not json").is_err());
    }

    #[test]
    fn reports_without_fault_counters_parse_as_fault_free() {
        let legacy = r#"{
            "end": 1.0, "threads": [], "series": [],
            "mem_cache_used_pages": 0, "ssd_cache_used_pages": 0,
            "evictions": 0
        }"#;
        let r = ExperimentReport::from_json(legacy).unwrap();
        assert_eq!(r.faults, FaultTotals::default());
    }
}
