//! DoubleDecker: a cooperative disk caching framework for derivative
//! clouds — simulation reproduction.
//!
//! This is the facade crate: it re-exports the full stack (simulation
//! engine, storage devices, guest OS model, cleancache interface, the
//! DoubleDecker hypervisor cache, host topology, workloads, metrics) and
//! provides the [`Experiment`] runner that every example and benchmark is
//! built on.
//!
//! # Architecture
//!
//! ```text
//!  workload threads (Filebench/YCSB models)        crates/workloads
//!        │ read/write/fsync/anon_touch
//!        ▼
//!  Host ── VMs ── containers (cgroups)             crates/hypervisor
//!        │          │ page cache / anon / swap     crates/guest
//!        │          ▼
//!        │   cleancache + hypercall channel        crates/cleancache
//!        ▼          ▼
//!  DoubleDecker hypervisor cache                   crates/hypercache
//!    (mem + SSD stores, 2-level weighted policy)
//!        ▼
//!  shared devices (RAM / SSD / HDD)                crates/storage
//!        ▼
//!  discrete-event substrate                        crates/sim
//! ```
//!
//! # Example
//!
//! ```
//! use ddc_core::prelude::*;
//!
//! let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(2048)));
//! let vm = host.boot_vm(32, 100);
//! let cg = host.create_container(vm, "web", 256, CachePolicy::mem(100));
//! let web = Webserver::new("web/t0", vm, cg, WebConfig { files: 100, ..WebConfig::default() }, 42);
//!
//! let mut exp = Experiment::new(host, SimDuration::from_secs(1));
//! exp.add_thread(Box::new(web));
//! let report = exp.run_until(SimTime::from_secs(10));
//! assert!(report.threads[0].ops > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod parallel;
mod report;
mod runner;
pub mod scenario;
pub mod sla;

pub use report::{ExperimentReport, FaultTotals, SeriesReport, ThreadReport};
pub use runner::{Experiment, ThreadPool};

/// Convenient glob-import surface for examples and benches.
pub mod prelude {
    pub use crate::{Experiment, ExperimentReport, FaultTotals, ThreadPool};
    pub use ddc_cleancache::{
        CachePolicy, GetOutcome, PageVersion, PoolId, PoolStats, PutOutcome, StoreKind, VmId,
    };
    pub use ddc_guest::{
        CgroupId, CgroupMemStats, GuestConfig, HitLevel, MissRatioCurve, MrcEstimator,
    };
    pub use ddc_hypercache::{
        AdmissionConfig, CacheConfig, CacheTotals, DoubleDeckerCache, FallbackMode, GhostFilter,
        PartitionMode, EVICTION_BATCH_PAGES,
    };
    pub use ddc_hypervisor::{vm_file, Host, HostConfig};
    pub use ddc_metrics::{
        CounterSnapshot, LatencyHistogram, OpsRecorder, TextTable, ThroughputReport,
    };
    pub use ddc_sim::{
        FaultKind, FaultSchedule, FaultWindow, SimDuration, SimRng, SimTime, TimeSeries,
    };
    pub use ddc_storage::{BlockAddr, Device, FileId, PAGE_SIZE};
    pub use ddc_workloads::{
        FileServer, FileServerConfig, MailConfig, MailServer, Oltp, OltpConfig, ProxyConfig,
        Proxycache, ReplayPacing, StoreModel, Trace, TraceOp, TraceRecord, TraceReplayer,
        VideoConfig, VideoServer, WebConfig, Webserver, WorkloadThread, YcsbClient, YcsbConfig,
    };
}

// Re-export the component crates for users who want the full paths.
pub use ddc_cleancache as cleancache;
pub use ddc_concurrent as concurrent;
pub use ddc_guest as guest;
pub use ddc_hypercache as hypercache;
pub use ddc_hypervisor as hypervisor;
pub use ddc_metrics as metrics;
pub use ddc_sim as sim;
pub use ddc_storage as storage;
pub use ddc_workloads as workloads;
