//! SLA-floor feedback control over DoubleDecker weights.
//!
//! The paper frames DoubleDecker as the enabler of "resource-based SLA
//! business model enhancements for derivative clouds" (§6 Related work)
//! and evaluates against per-application throughput SLAs in Table 4.
//! This module supplies the feedback loop a derivative-cloud operator
//! would run: measure each container's throughput over a control window,
//! and when a container misses its floor, move cache weight to it from
//! the most-over-target container.
//!
//! Unlike [`crate::adaptive`] (which optimizes an aggregate objective
//! from miss-ratio curves), this controller enforces *per-container
//! minimums* — the two compose naturally: floors first, surplus by
//! marginal benefit.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ddc_cleancache::{CachePolicy, StoreKind, VmId};
use ddc_guest::CgroupId;
use ddc_hypervisor::Host;
use ddc_sim::{SimDuration, SimTime};

use crate::{Experiment, ThreadPool};

/// One container's SLA: threads labelled `prefix/*` must sustain at
/// least `min_ops_per_sec` over each control window.
#[derive(Clone, Debug, PartialEq)]
pub struct SlaTarget {
    /// Thread-label prefix identifying the container's workload.
    pub prefix: String,
    /// The container whose cache weight is adjusted.
    pub cg: CgroupId,
    /// Throughput floor, operations per second.
    pub min_ops_per_sec: f64,
}

/// The feedback controller. Keep it in an `Rc<RefCell<_>>` and let
/// [`schedule`] wire it into an experiment.
#[derive(Debug)]
pub struct SlaManager {
    vm: VmId,
    targets: Vec<SlaTarget>,
    /// Weight points moved per control round.
    pub step: u32,
    /// Weight floor per container.
    pub min_weight: u32,
    last_ops: BTreeMap<String, u64>,
    last_at: SimTime,
    /// Rounds in which a weight transfer happened.
    pub adjustments: u32,
}

impl SlaManager {
    /// Creates a manager for `vm` with the given targets.
    pub fn new(vm: VmId, targets: Vec<SlaTarget>) -> SlaManager {
        SlaManager {
            vm,
            targets,
            step: 10,
            min_weight: 5,
            last_ops: BTreeMap::new(),
            last_at: SimTime::ZERO,
            adjustments: 0,
        }
    }

    /// Runs one control round at `now`: measures per-target throughput
    /// since the previous round and, if any target is under its floor,
    /// moves `step` weight from the container with the largest relative
    /// surplus to the one with the largest relative deficit. Returns the
    /// `(donor, recipient)` container pair if a transfer happened.
    pub fn control(
        &mut self,
        host: &mut Host,
        pool: &ThreadPool,
        now: SimTime,
    ) -> Option<(CgroupId, CgroupId)> {
        let window = now.saturating_since(self.last_at).as_secs_f64();
        if window <= 0.0 {
            return None;
        }
        // Measured rate per target over the window.
        let mut rates = Vec::with_capacity(self.targets.len());
        for t in &self.targets {
            let total = pool.total_ops(&t.prefix);
            let prev = self.last_ops.insert(t.prefix.clone(), total).unwrap_or(0);
            rates.push((total - prev) as f64 / window);
        }
        self.last_at = now;

        // Relative attainment: rate / floor (1.0 = exactly on target).
        let attainment: Vec<f64> = self
            .targets
            .iter()
            .zip(&rates)
            .map(|(t, &r)| {
                if t.min_ops_per_sec <= 0.0 {
                    f64::INFINITY
                } else {
                    r / t.min_ops_per_sec
                }
            })
            .collect();

        let worst = attainment
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)?;
        if attainment[worst] >= 1.0 {
            return None; // every floor is met
        }
        // Donor: the most-over-target container that can still give and
        // whose policy is a weighted memory policy.
        let donor = attainment
            .iter()
            .enumerate()
            .filter(|&(i, &a)| {
                i != worst && a > 1.0 && {
                    let p = host.guest(self.vm).cgroup(self.targets[i].cg).policy();
                    p.store == StoreKind::Mem && p.weight >= self.min_weight + self.step
                }
            })
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)?;

        let donor_cg = self.targets[donor].cg;
        let worst_cg = self.targets[worst].cg;
        let donor_w = host.guest(self.vm).cgroup(donor_cg).policy().weight;
        let worst_w = host.guest(self.vm).cgroup(worst_cg).policy().weight;
        host.set_container_policy(self.vm, donor_cg, CachePolicy::mem(donor_w - self.step));
        host.set_container_policy(self.vm, worst_cg, CachePolicy::mem(worst_w + self.step));
        self.adjustments += 1;
        Some((donor_cg, worst_cg))
    }
}

/// Schedules periodic control rounds of `manager` on an experiment,
/// every `interval` until `end`.
pub fn schedule(
    exp: &mut Experiment,
    manager: Rc<RefCell<SlaManager>>,
    interval: SimDuration,
    end: SimTime,
) {
    let mut at = SimTime::ZERO + interval;
    while at <= end {
        let m = Rc::clone(&manager);
        exp.schedule(at, move |host, pool, now| {
            m.borrow_mut().control(host, pool, now);
        });
        at += interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn web(files: usize, think_us: u64) -> WebConfig {
        WebConfig {
            files,
            mean_file_blocks: 2,
            zipf_theta: 0.4,
            think_time: SimDuration::from_micros(think_us),
            ..WebConfig::default()
        }
    }

    /// A starved container with a demanding SLA steals weight from an
    /// over-achieving one until its floor is met (or weights bottom out).
    #[test]
    fn starved_container_gains_weight() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(768)));
        let vm = host.boot_vm(64, 100);
        // "starved" has the bigger working set but starts with low weight.
        let starved = host.create_container(vm, "starved", 128, CachePolicy::mem(20));
        let rich = host.create_container(vm, "rich", 128, CachePolicy::mem(80));
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        exp.add_thread(Box::new(Webserver::new(
            "starved/t0",
            vm,
            starved,
            web(900, 200),
            1,
        )));
        exp.add_thread(Box::new(Webserver::new(
            "rich/t0",
            vm,
            rich,
            web(300, 200),
            2,
        )));
        let manager = Rc::new(RefCell::new(SlaManager::new(
            vm,
            vec![
                SlaTarget {
                    prefix: "starved".into(),
                    cg: starved,
                    min_ops_per_sec: 1_000_000.0, // unreachable: always pulls
                },
                SlaTarget {
                    prefix: "rich".into(),
                    cg: rich,
                    min_ops_per_sec: 1.0, // trivially satisfied: donor
                },
            ],
        )));
        schedule(
            &mut exp,
            Rc::clone(&manager),
            SimDuration::from_secs(10),
            SimTime::from_secs(80),
        );
        exp.run_until(SimTime::from_secs(80));
        let w_starved = exp.host().guest(vm).cgroup(starved).policy().weight;
        let w_rich = exp.host().guest(vm).cgroup(rich).policy().weight;
        assert!(
            w_starved > 20 && w_rich < 80,
            "weight must flow to the starved container ({w_starved}/{w_rich})"
        );
        assert!(manager.borrow().adjustments > 0);
        assert!(w_rich >= 5, "donor floor respected");
    }

    /// With every floor met, the controller never moves weight.
    #[test]
    fn satisfied_slas_leave_weights_alone() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(768)));
        let vm = host.boot_vm(64, 100);
        let a = host.create_container(vm, "a", 128, CachePolicy::mem(50));
        let b = host.create_container(vm, "b", 128, CachePolicy::mem(50));
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        exp.add_thread(Box::new(Webserver::new("a/t0", vm, a, web(100, 500), 3)));
        exp.add_thread(Box::new(Webserver::new("b/t0", vm, b, web(100, 500), 4)));
        let manager = Rc::new(RefCell::new(SlaManager::new(
            vm,
            vec![
                SlaTarget {
                    prefix: "a".into(),
                    cg: a,
                    min_ops_per_sec: 1.0,
                },
                SlaTarget {
                    prefix: "b".into(),
                    cg: b,
                    min_ops_per_sec: 1.0,
                },
            ],
        )));
        schedule(
            &mut exp,
            Rc::clone(&manager),
            SimDuration::from_secs(10),
            SimTime::from_secs(40),
        );
        exp.run_until(SimTime::from_secs(40));
        assert_eq!(manager.borrow().adjustments, 0);
        assert_eq!(exp.host().guest(vm).cgroup(a).policy().weight, 50);
    }

    /// Without any donor above target, the controller does nothing (it
    /// never robs one violator to pay another).
    #[test]
    fn no_donor_no_transfer() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(256)));
        let vm = host.boot_vm(16, 100);
        let a = host.create_container(vm, "a", 64, CachePolicy::mem(50));
        let b = host.create_container(vm, "b", 64, CachePolicy::mem(50));
        let pool = ThreadPool::default();
        let mut manager = SlaManager::new(
            vm,
            vec![
                SlaTarget {
                    prefix: "a".into(),
                    cg: a,
                    min_ops_per_sec: 1000.0,
                },
                SlaTarget {
                    prefix: "b".into(),
                    cg: b,
                    min_ops_per_sec: 1000.0,
                },
            ],
        );
        // No threads ran: both rates are zero, both violate, no donor.
        assert_eq!(
            manager.control(&mut host, &pool, SimTime::from_secs(10)),
            None
        );
        assert_eq!(manager.adjustments, 0);
    }
}
