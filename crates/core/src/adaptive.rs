//! Adaptive cache provisioning driven by in-guest miss-ratio curves.
//!
//! The paper leaves policy *design* open: DoubleDecker supplies the
//! mechanism (dynamic `<T, W>` reconfiguration) and suggests driving it
//! with "MRC, WSS estimation, SHARDS" measured from within the VM
//! (§5.2.1). This module is that closed loop: each container runs a
//! sampled [`MrcEstimator`](ddc_guest::MrcEstimator); the controller
//! periodically moves cache weight from the container with the smallest
//! marginal miss-ratio benefit to the one with the largest.
//!
//! The controller is deliberately simple (greedy hill climbing on the
//! rate-weighted miss-ratio objective); it demonstrates the paper's
//! claim that the *guest* is the right place for such policies, because
//! only the guest sees the raw access stream.

use ddc_cleancache::{CachePolicy, StoreKind, VmId};
use ddc_guest::CgroupId;
use ddc_hypervisor::Host;

/// Configuration of one adaptive-provisioning control loop instance.
///
/// `Copy` so scheduled control closures can each carry their own.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// The VM whose containers are managed.
    pub vm: VmId,
    /// Weight points moved per adjustment round.
    pub step: u32,
    /// No container's weight drops below this floor.
    pub min_weight: u32,
    /// Minimum predicted improvement (in rate-weighted miss ratio) to
    /// act; hysteresis against oscillation.
    pub min_gain: f64,
}

impl AdaptiveConfig {
    /// A controller for `vm` with the default step (5 points), floor (5)
    /// and hysteresis.
    pub fn new(vm: VmId) -> AdaptiveConfig {
        AdaptiveConfig {
            vm,
            step: 5,
            min_weight: 5,
            min_gain: 1e-4,
        }
    }
}

/// Turns on MRC estimation (sampling one in `sample_rate` addresses) for
/// every container of the VM. Call once before the workload starts.
///
/// # Panics
///
/// Panics if the VM does not exist or `sample_rate` is zero.
pub fn enable_estimation(host: &mut Host, vm: VmId, sample_rate: u64) {
    let cgs = host.guest(vm).cgroup_ids();
    for cg in cgs {
        host.guest_mut(vm).enable_mrc(cg, sample_rate);
    }
}

/// One decision of the control loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Adjustment {
    /// Weight moved *from* this container...
    pub donor: CgroupId,
    /// ...*to* this container.
    pub recipient: CgroupId,
    /// Weight points moved.
    pub step: u32,
    /// Predicted drop in the rate-weighted miss ratio.
    pub predicted_gain: f64,
}

/// Runs one adjustment round: evaluates every donor→recipient weight
/// shift of `config.step` points and applies the best one if it clears
/// the hysteresis threshold. Returns the applied adjustment, if any.
///
/// Only memory-store containers participate; SSD and disabled containers
/// are left alone.
///
/// # Panics
///
/// Panics if the VM does not exist.
pub fn adjust_once(host: &mut Host, config: AdaptiveConfig) -> Option<Adjustment> {
    let vm = config.vm;
    let cgs: Vec<CgroupId> = host
        .guest(vm)
        .cgroup_ids()
        .into_iter()
        .filter(|&cg| {
            let p = host.guest(vm).cgroup(cg).policy();
            p.store == StoreKind::Mem && p.is_enabled()
        })
        .collect();
    if cgs.len() < 2 {
        return None;
    }

    // Snapshot: weight, cgroup limit, access rate and curve per container.
    struct Snap {
        cg: CgroupId,
        weight: u32,
        limit: u64,
        rate: f64,
        curve: ddc_guest::MissRatioCurve,
    }
    let mut snaps = Vec::with_capacity(cgs.len());
    let mut total_rate = 0.0;
    for &cg in &cgs {
        let curve = host.guest(vm).mrc_curve(cg)?;
        let rate = curve.accesses() as f64;
        total_rate += rate;
        snaps.push(Snap {
            cg,
            weight: host.guest(vm).cgroup(cg).policy().weight,
            limit: host.guest(vm).cgroup(cg).mem_limit_pages(),
            rate,
            curve,
        });
    }
    if total_rate == 0.0 {
        return None;
    }

    // The memory the weights carve up: this VM's share of the store.
    // (Single-VM assumption for the entitlement math; with several VMs
    // the same objective applies within the VM's share.)
    let capacity = host.cache_totals().mem_capacity_pages;
    let objective = |weights: &[u32]| -> f64 {
        let total_w: u64 = weights.iter().map(|&w| w as u64).sum();
        if total_w == 0 {
            return f64::INFINITY;
        }
        snaps
            .iter()
            .zip(weights)
            .map(|(s, &w)| {
                let entitlement = capacity * w as u64 / total_w;
                let effective = s.limit + entitlement;
                s.rate / total_rate * s.curve.miss_ratio_at(effective)
            })
            .sum()
    };

    let current: Vec<u32> = snaps.iter().map(|s| s.weight).collect();
    let baseline = objective(&current);
    let mut best: Option<(usize, usize, f64)> = None;
    for donor in 0..snaps.len() {
        if current[donor] < config.min_weight + config.step {
            continue;
        }
        for recipient in 0..snaps.len() {
            if donor == recipient {
                continue;
            }
            let mut candidate = current.clone();
            candidate[donor] -= config.step;
            candidate[recipient] += config.step;
            let value = objective(&candidate);
            let gain = baseline - value;
            if gain > config.min_gain && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((donor, recipient, gain));
            }
        }
    }

    let (donor, recipient, predicted_gain) = best?;
    let donor_cg = snaps[donor].cg;
    let recipient_cg = snaps[recipient].cg;
    let donor_policy = CachePolicy::mem(current[donor] - config.step);
    let recipient_policy = CachePolicy::mem(current[recipient] + config.step);
    host.set_container_policy(vm, donor_cg, donor_policy);
    host.set_container_policy(vm, recipient_cg, recipient_policy);
    Some(Adjustment {
        donor: donor_cg,
        recipient: recipient_cg,
        step: config.step,
        predicted_gain,
    })
}

/// Schedules periodic adjustment rounds on an experiment, every
/// `interval` from `interval` until `end`.
pub fn schedule(
    exp: &mut crate::Experiment,
    config: AdaptiveConfig,
    interval: ddc_sim::SimDuration,
    end: ddc_sim::SimTime,
) {
    let mut at = ddc_sim::SimTime::ZERO + interval;
    while at <= end {
        exp.schedule(at, move |host, _pool, _now| {
            adjust_once(host, config);
        });
        at += interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    /// Two containers with identical limits and weights, but the first
    /// has a far larger working set: the controller must shift weight
    /// toward it.
    #[test]
    fn weight_flows_to_the_larger_working_set() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(512)));
        let vm = host.boot_vm(16, 100);
        let big = host.create_container(vm, "big", 64, CachePolicy::mem(50));
        let small = host.create_container(vm, "small", 64, CachePolicy::mem(50));
        enable_estimation(&mut host, vm, 1);

        // Drive both with skewed random access: big over 1200 blocks,
        // small over 24 — smooth curves with very different gradients.
        let mut rng = SimRng::new(5);
        let mut now = SimTime::ZERO;
        for _ in 0..20_000 {
            let b = rng.range_u64(0, 1200);
            now = host
                .read(now, vm, big, BlockAddr::new(vm_file(vm, 1), b))
                .finish;
            let s = rng.range_u64(0, 24);
            now = host
                .read(now, vm, small, BlockAddr::new(vm_file(vm, 2), s))
                .finish;
        }

        let config = AdaptiveConfig::new(vm);
        let mut moved_to_big = 0u32;
        for _ in 0..8 {
            if let Some(adj) = adjust_once(&mut host, config) {
                assert_eq!(adj.recipient, big, "weight must flow to the big set");
                assert_eq!(adj.donor, small);
                assert!(adj.predicted_gain > 0.0);
                moved_to_big += adj.step;
            }
        }
        assert!(moved_to_big > 0, "at least one adjustment must fire");
        let wb = host.guest(vm).cgroup(big).policy().weight;
        let ws = host.guest(vm).cgroup(small).policy().weight;
        assert!(
            wb > ws,
            "final weights favour the big container ({wb} vs {ws})"
        );
        assert!(ws >= config.min_weight, "floor respected");
    }

    #[test]
    fn no_adjustment_without_estimation_or_pressure() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(512)));
        let vm = host.boot_vm(16, 100);
        let _a = host.create_container(vm, "a", 64, CachePolicy::mem(50));
        let _b = host.create_container(vm, "b", 64, CachePolicy::mem(50));
        // Estimation not enabled: controller declines.
        assert_eq!(adjust_once(&mut host, AdaptiveConfig::new(vm)), None);
        // Enabled but no traffic: still declines.
        enable_estimation(&mut host, vm, 1);
        assert_eq!(adjust_once(&mut host, AdaptiveConfig::new(vm)), None);
    }

    #[test]
    fn single_container_is_left_alone() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(512)));
        let vm = host.boot_vm(16, 100);
        let _only = host.create_container(vm, "only", 64, CachePolicy::mem(100));
        enable_estimation(&mut host, vm, 1);
        assert_eq!(adjust_once(&mut host, AdaptiveConfig::new(vm)), None);
    }

    #[test]
    fn ssd_containers_excluded() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(512, 512)));
        let vm = host.boot_vm(16, 100);
        let _mem = host.create_container(vm, "m", 64, CachePolicy::mem(50));
        let _ssd = host.create_container(vm, "s", 64, CachePolicy::ssd(100));
        enable_estimation(&mut host, vm, 1);
        // Only one memory container participates -> no pair to trade.
        assert_eq!(adjust_once(&mut host, AdaptiveConfig::new(vm)), None);
    }

    #[test]
    fn scheduled_rounds_fire_in_experiments() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
        let vm = host.boot_vm(32, 100);
        let big = host.create_container(vm, "big", 64, CachePolicy::mem(50));
        let small = host.create_container(vm, "small", 64, CachePolicy::mem(50));
        enable_estimation(&mut host, vm, 4);
        let big_cfg = WebConfig {
            files: 900,
            mean_file_blocks: 2,
            zipf_theta: 0.8, // smooth, long-tailed curve
            think_time: SimDuration::from_micros(100),
            ..WebConfig::default()
        };
        let small_cfg = WebConfig {
            files: 30,
            mean_file_blocks: 2,
            zipf_theta: 0.0,
            think_time: SimDuration::from_micros(100),
            ..WebConfig::default()
        };
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        exp.add_thread(Box::new(Webserver::new("big/t0", vm, big, big_cfg, 1)));
        exp.add_thread(Box::new(Webserver::new(
            "small/t0", vm, small, small_cfg, 2,
        )));
        schedule(
            &mut exp,
            AdaptiveConfig::new(vm),
            SimDuration::from_secs(5),
            SimTime::from_secs(60),
        );
        exp.run_until(SimTime::from_secs(60));
        let wb = exp.host().guest(vm).cgroup(big).policy().weight;
        let ws = exp.host().guest(vm).cgroup(small).policy().weight;
        assert!(
            wb > ws,
            "after adaptive rounds the demanding container holds more weight ({wb} vs {ws})"
        );
    }
}
