//! Work-stealing parallel execution of independent experiment cells.
//!
//! Every paper experiment decomposes into *cells* — one scenario ×
//! policy × seed combination, each a self-contained deterministic
//! simulation with no shared mutable state. [`run_cells`] fans a batch
//! of such cells across OS threads and returns their results **in input
//! order**, so a parallel sweep produces byte-identical reports to a
//! serial one: determinism lives inside each cell, ordering is restored
//! at the join.
//!
//! The scheduler is a single shared atomic cursor over the cell list
//! (a "global queue" work-stealing design): each worker claims the next
//! unclaimed index, runs it, and loops. Cells of a sweep differ wildly
//! in cost (a 600-virtual-second DoubleDecker run vs a 40-second strict
//! one), so dynamic claiming beats static chunking — a worker that
//! finishes early steals the remaining indices instead of idling.
//!
//! No thread pool is kept alive between calls: scoped threads are
//! spawned per batch. Cell bodies dominate runtime by orders of
//! magnitude (each is a full simulation), so spawn cost is noise.
//!
//! ```
//! let squares = ddc_core::parallel::run_cells(vec![1u64, 2, 3], |n| n * n);
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (`1` forces the
/// serial path; useful for A/B-ing parallel against serial output).
pub const THREADS_ENV: &str = "DDC_THREADS";

/// The number of workers [`run_cells`] uses: `DDC_THREADS` if set and
/// positive, otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over every cell on up to [`num_threads`] workers, returning
/// results in input order (index `i` of the output is `f(cells[i])`).
///
/// Worker threads claim cells dynamically from a shared cursor, so
/// uneven cell costs balance automatically. With one worker (or one
/// cell) no threads are spawned and the cells run inline — the two
/// paths are observably identical because cells are independent and
/// results are reordered by index.
///
/// # Panics
///
/// Panics if `f` panics in any cell (the panic is propagated after all
/// workers stop claiming new cells).
pub fn run_cells<I, T, F>(cells: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    run_cells_with(num_threads(), cells, f)
}

/// [`run_cells`] with an explicit worker count (primarily for the
/// parallel-vs-serial determinism tests).
pub fn run_cells_with<I, T, F>(threads: usize, cells: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = cells.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return cells.into_iter().map(f).collect();
    }

    // Cells are handed out by index; each worker takes the Option out of
    // its claimed slot, so no two workers ever touch the same cell.
    let slots: Vec<Mutex<Option<I>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = slots[i]
                    .lock()
                    .expect("cell slot poisoned")
                    .take()
                    .expect("cell claimed twice");
                let out = f(cell);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            }));
        }
        // Propagate the first panic (if any) after every worker exits.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("cell {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let cells: Vec<u64> = (0..100).collect();
        let out = run_cells_with(8, cells, |n| n * 2);
        assert_eq!(out, (0..100).map(|n| n * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |n: u64| -> u64 {
            // Uneven per-cell cost to exercise dynamic claiming.
            (0..(n % 7) * 1000 + 1).fold(n, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
        let serial = run_cells_with(1, (0..50).collect(), work);
        let parallel = run_cells_with(4, (0..50).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<u64> = run_cells_with(4, Vec::<u64>::new(), |n| n);
        assert!(empty.is_empty());
        assert_eq!(run_cells_with(4, vec![9u64], |n| n + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        assert_eq!(run_cells_with(64, vec![1u64, 2, 3], |n| n), vec![1, 2, 3]);
    }

    #[test]
    fn non_copy_cells_move_into_workers() {
        let cells: Vec<String> = (0..20).map(|i| format!("cell-{i}")).collect();
        let out = run_cells_with(4, cells, |s| s.len());
        assert_eq!(out.len(), 20);
        assert_eq!(out[7], "cell-7".len());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        run_cells_with(4, vec![1u64, 2, 3, 4], |n| {
            if n == 3 {
                panic!("boom");
            }
            n
        });
    }
}
