//! The deterministic experiment runner.
//!
//! Every paper experiment is a composition of the same three ingredients:
//! a set of closed-loop workload threads, a script of control actions at
//! fixed virtual times (boot a container at t=900 s, change weights at
//! t=1800 s, …), and periodic occupancy probes. [`Experiment`] drives all
//! three over a [`Host`] in strict virtual-time order, so runs are exactly
//! reproducible.

use ddc_hypervisor::Host;
use ddc_sim::{EventQueue, Sampler, SimDuration, SimTime, TimeSeries};
use ddc_workloads::WorkloadThread;

use crate::report::{ExperimentReport, FaultTotals, SeriesReport, ThreadReport};

/// A scheduled control action: arbitrary reconfiguration of the host
/// and/or the thread pool at a fixed virtual time.
type Control = Box<dyn FnOnce(&mut Host, &mut ThreadPool, SimTime)>;

/// A periodic measurement of some host quantity.
struct Probe {
    series: TimeSeries,
    f: Box<dyn Fn(&Host) -> f64>,
}

struct ThreadSlot {
    thread: Box<dyn WorkloadThread>,
    next_ready: SimTime,
    stopped: bool,
}

/// The set of live workload threads. Control actions receive `&mut
/// ThreadPool` so they can spawn or stop threads mid-experiment.
#[derive(Default)]
pub struct ThreadPool {
    slots: Vec<ThreadSlot>,
}

impl ThreadPool {
    /// Adds a thread that becomes runnable at `at`.
    pub fn spawn_at(&mut self, at: SimTime, thread: Box<dyn WorkloadThread>) {
        self.slots.push(ThreadSlot {
            thread,
            next_ready: at,
            stopped: false,
        });
    }

    /// Stops every thread whose label starts with `prefix` (it keeps its
    /// recorded metrics but never runs again).
    pub fn stop_matching(&mut self, prefix: &str) {
        for slot in &mut self.slots {
            if slot.thread.label().starts_with(prefix) {
                slot.stopped = true;
            }
        }
    }

    /// Number of live (non-stopped) threads.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| !s.stopped).count()
    }

    /// Opens a steady-state measurement window on every thread's
    /// recorder: subsequent reports cover `[at, end]` only.
    pub fn mark_all(&mut self, at: SimTime) {
        for slot in &mut self.slots {
            slot.thread.recorder_mut().mark(at);
        }
    }

    /// Cumulative completed operations across threads whose label starts
    /// with `prefix` (for feedback controllers).
    pub fn total_ops(&self, prefix: &str) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.thread.label().starts_with(prefix))
            .map(|s| s.thread.recorder().ops())
            .sum()
    }

    /// The earliest ready time among live threads.
    fn next_ready(&self) -> Option<(usize, SimTime)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.stopped)
            .map(|(i, s)| (i, s.next_ready))
            .min_by_key(|&(_, t)| t)
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.slots.len())
            .field("live", &self.live_count())
            .finish()
    }
}

/// A deterministic virtual-time experiment over a [`Host`].
///
/// See the [crate-level example](crate).
pub struct Experiment {
    host: Host,
    pool: ThreadPool,
    controls: EventQueue<Control>,
    probes: Vec<Probe>,
    sampler: Sampler,
    now: SimTime,
}

impl Experiment {
    /// Creates an experiment over `host`, sampling probes every
    /// `sample_interval`.
    pub fn new(host: Host, sample_interval: SimDuration) -> Experiment {
        Experiment {
            host,
            pool: ThreadPool::default(),
            controls: EventQueue::new(),
            probes: Vec::new(),
            sampler: Sampler::new(sample_interval),
            now: SimTime::ZERO,
        }
    }

    /// The host under test.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable host access for setup before `run_until`.
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adds a workload thread, runnable immediately.
    pub fn add_thread(&mut self, thread: Box<dyn WorkloadThread>) {
        let at = self.now;
        self.pool.spawn_at(at, thread);
    }

    /// Adds a workload thread that first runs at `at`.
    pub fn add_thread_at(&mut self, at: SimTime, thread: Box<dyn WorkloadThread>) {
        self.pool.spawn_at(at, thread);
    }

    /// Schedules a control action at virtual time `at`.
    pub fn schedule(
        &mut self,
        at: SimTime,
        control: impl FnOnce(&mut Host, &mut ThreadPool, SimTime) + 'static,
    ) {
        self.controls.push(at, Box::new(control));
    }

    /// Schedules a steady-state window: at `at`, every thread's recorder
    /// is marked, so the final report measures `[at, end]` (warm-up
    /// excluded) — the way the paper reports after its ramp phase.
    pub fn mark_steady_state_at(&mut self, at: SimTime) {
        self.schedule(at, |_host, pool, when| pool.mark_all(when));
    }

    /// Registers a probe sampled on every tick; the samples become a named
    /// series in the report.
    pub fn add_probe(&mut self, name: impl Into<String>, f: impl Fn(&Host) -> f64 + 'static) {
        self.probes.push(Probe {
            series: TimeSeries::new(name),
            f: Box::new(f),
        });
    }

    /// Runs until virtual time `end`, then returns the report.
    ///
    /// Order at equal instants: control actions, then probe samples, then
    /// workload steps — so a reconfiguration at t is visible to the sample
    /// at t and to every operation from t on.
    pub fn run_until(&mut self, end: SimTime) -> ExperimentReport {
        loop {
            let t_ctrl = self.controls.peek_time().unwrap_or(SimTime::MAX);
            let t_sample = self.sampler.next_due();
            let (thread_idx, t_thread) = match self.pool.next_ready() {
                Some((i, t)) => (Some(i), t),
                None => (None, SimTime::MAX),
            };

            let t = t_ctrl.min(t_sample).min(t_thread);
            if t > end {
                break;
            }
            self.now = self.now.max(t);

            if t_ctrl <= t_sample && t_ctrl <= t_thread {
                let (at, control) = self.controls.pop().expect("peeked");
                control(&mut self.host, &mut self.pool, at);
            } else if t_sample <= t_thread {
                let due = self.sampler.tick(t_sample).expect("due");
                for probe in &mut self.probes {
                    probe.series.record(due, (probe.f)(&self.host));
                }
            } else {
                let idx = thread_idx.expect("a thread was earliest");
                let slot = &mut self.pool.slots[idx];
                let next = slot.thread.step(&mut self.host, t_thread);
                debug_assert!(
                    next > t_thread,
                    "workload step must advance virtual time ({})",
                    slot.thread.label()
                );
                slot.next_ready = next;
            }
        }
        self.now = end;
        self.report()
    }

    /// Builds a report for the current state (also called by
    /// [`run_until`](Self::run_until)).
    pub fn report(&self) -> ExperimentReport {
        let threads = self
            .pool
            .slots
            .iter()
            .map(|s| ThreadReport::from_recorder(s.thread.label(), s.thread.recorder(), self.now))
            .collect();
        let series = self
            .probes
            .iter()
            .map(|p| SeriesReport::from_series(&p.series))
            .collect();
        let totals = self.host.cache_totals();
        let mut faults = FaultTotals {
            ssd_quarantines: totals.ssd_quarantines,
            ssd_recoveries: totals.ssd_recoveries,
            quarantine_invalidated_pages: totals.quarantine_invalidated_pages,
            failed_gets: totals.failed_gets,
            failed_puts: totals.failed_puts,
            ..FaultTotals::default()
        };
        for vm in self.host.vm_ids() {
            let c = self.host.guest(vm).channel().counters();
            faults.channel_fail_opens += c.fail_opens;
            faults.channel_dropped_calls += c.dropped_calls;
            faults.breaker_trips += c.breaker_trips;
            faults.breaker_skipped_puts += c.breaker_skipped_puts;
            faults.breaker_recoveries += c.breaker_recoveries;
        }
        ExperimentReport {
            end: self.now.as_secs_f64(),
            threads,
            series,
            mem_cache_used_pages: totals.mem_used_pages,
            ssd_cache_used_pages: totals.ssd_used_pages,
            evictions: totals.evictions,
            faults,
        }
    }

    /// The raw sample series of a probe by name (for tests and plots).
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.probes
            .iter()
            .map(|p| &p.series)
            .find(|s| s.name() == name)
    }
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("now", &self.now)
            .field("threads", &self.pool.slots.len())
            .field("probes", &self.probes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::CachePolicy;
    use ddc_hypercache::CacheConfig;
    use ddc_hypervisor::HostConfig;
    use ddc_workloads::{WebConfig, Webserver};

    fn small_web_experiment() -> Experiment {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(2048)));
        let vm = host.boot_vm(32, 100);
        let cg = host.create_container(vm, "web", 256, CachePolicy::mem(100));
        let web = Webserver::new(
            "web/t0",
            vm,
            cg,
            WebConfig {
                files: 100,
                ..WebConfig::default()
            },
            1,
        );
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        exp.add_thread(Box::new(web));
        exp
    }

    #[test]
    fn run_produces_progress_and_report() {
        let mut exp = small_web_experiment();
        let report = exp.run_until(SimTime::from_secs(5));
        assert_eq!(report.end, 5.0);
        assert_eq!(report.threads.len(), 1);
        assert!(report.threads[0].ops > 0);
        assert!(report.threads[0].ops_per_sec > 0.0);
        assert_eq!(exp.now(), SimTime::from_secs(5));
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = small_web_experiment().run_until(SimTime::from_secs(5));
        let r2 = small_web_experiment().run_until(SimTime::from_secs(5));
        assert_eq!(r1.threads[0].ops, r2.threads[0].ops);
        assert_eq!(r1.evictions, r2.evictions);
    }

    #[test]
    fn probes_sample_periodically() {
        let mut exp = small_web_experiment();
        exp.add_probe("cache-used", |h| h.cache_totals().mem_used_pages as f64);
        let report = exp.run_until(SimTime::from_secs(5));
        assert_eq!(report.series.len(), 1);
        assert_eq!(report.series[0].name, "cache-used");
        assert_eq!(report.series[0].points.len(), 5, "one sample per second");
        assert!(exp.series("cache-used").is_some());
        assert!(exp.series("nope").is_none());
    }

    #[test]
    fn scheduled_control_fires_in_order() {
        let mut exp = small_web_experiment();
        exp.schedule(SimTime::from_secs(2), |host, _pool, at| {
            assert_eq!(at, SimTime::from_secs(2));
            host.set_mem_cache_capacity(at, 4096);
        });
        exp.add_probe("capacity", |h| h.cache_totals().mem_capacity_pages as f64);
        exp.run_until(SimTime::from_secs(4));
        let series = exp.series("capacity").unwrap();
        assert_eq!(series.value_at(SimTime::from_secs(1)), Some(2048.0));
        assert_eq!(series.value_at(SimTime::from_secs(2)), Some(4096.0));
    }

    #[test]
    fn control_can_spawn_threads() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(2048)));
        let vm = host.boot_vm(32, 100);
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        exp.schedule(SimTime::from_secs(2), move |host, pool, at| {
            let cg = host.create_container(vm, "late", 128, CachePolicy::mem(100));
            let web = Webserver::new(
                "late/t0",
                vm,
                cg,
                WebConfig {
                    files: 20,
                    ..WebConfig::default()
                },
                9,
            );
            pool.spawn_at(at, Box::new(web));
        });
        let report = exp.run_until(SimTime::from_secs(4));
        assert_eq!(report.threads.len(), 1);
        assert!(report.threads[0].ops > 0, "late thread ran");
        assert!(report.threads[0].label.starts_with("late"));
    }

    #[test]
    fn stop_matching_halts_threads() {
        let mut exp = small_web_experiment();
        exp.schedule(SimTime::from_secs(2), |_host, pool, _at| {
            pool.stop_matching("web");
        });
        let mid = exp.run_until(SimTime::from_secs(2));
        let ops_at_2 = mid.threads[0].ops;
        let fin = exp.run_until(SimTime::from_secs(5));
        assert_eq!(fin.threads[0].ops, ops_at_2, "no ops after stop");
        assert_eq!(exp.host().vm_ids().len(), 1);
    }

    #[test]
    fn empty_experiment_terminates() {
        let host = Host::new(HostConfig::new(CacheConfig::mem_only(16)));
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        let report = exp.run_until(SimTime::from_secs(3));
        assert!(report.threads.is_empty());
        assert_eq!(report.end, 3.0);
    }
}
