//! Declarative experiment scenarios.
//!
//! A [`ScenarioSpec`] describes a complete experiment — cache
//! configuration, VMs, containers, workloads, timed reconfiguration
//! actions and probes — as plain serializable data, so experiments can be
//! defined in JSON and run with the `scenario` binary (or embedded via
//! [`build`]): the no-code path for exploring DoubleDecker policies.
//!
//! ```json
//! {
//!   "name": "web-pair",
//!   "cache": { "mem_mb": 128, "mode": "doubledecker" },
//!   "duration_secs": 60,
//!   "vms": [ { "mem_mb": 64, "weight": 100, "containers": [
//!     { "name": "web", "limit_mb": 32,
//!       "policy": { "store": "mem", "weight": 60 },
//!       "threads": 2,
//!       "workload": { "kind": "webserver", "files": 1200 } }
//!   ] } ]
//! }
//! ```

use ddc_cleancache::{CachePolicy, VmId};
use ddc_guest::CgroupId;
use ddc_hypercache::{AdmissionConfig, CacheConfig, FallbackMode, PartitionMode};
use ddc_hypervisor::{Host, HostConfig};
use ddc_json::Json;
use ddc_sim::{FaultKind, FaultSchedule, SimDuration, SimTime};
use ddc_workloads::{
    FileServer, FileServerConfig, MailConfig, MailServer, Oltp, OltpConfig, ProxyConfig,
    Proxycache, StoreModel, VideoConfig, VideoServer, WebConfig, Webserver, WorkloadThread,
    YcsbClient, YcsbConfig,
};
use std::collections::BTreeMap;
use std::fmt;

use crate::{Experiment, ExperimentReport};

/// Error building or validating a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn err(msg: impl Into<String>) -> ScenarioError {
    ScenarioError(msg.into())
}

/// Cache store configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheSpec {
    /// Memory store capacity, MiB.
    pub mem_mb: u64,
    /// SSD store capacity, MiB (default 0 = no SSD store).
    pub ssd_mb: u64,
    /// `"doubledecker"` (default), `"global"` or `"strict"`.
    pub mode: Option<String>,
    /// Optional zcache-style compression `(millipages per object,
    /// codec µs)`.
    pub compression: Option<(u64, u64)>,
}

/// A container's `<T, W>` policy.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicySpec {
    /// `"mem"`, `"ssd"`, `"hybrid"` or `"disabled"`.
    pub store: String,
    /// Weight (ignored for `"disabled"`).
    pub weight: u32,
}

impl PolicySpec {
    fn to_policy(&self) -> Result<CachePolicy, ScenarioError> {
        Ok(match self.store.as_str() {
            "mem" => CachePolicy::mem(self.weight),
            "ssd" => CachePolicy::ssd(self.weight),
            "hybrid" => CachePolicy::hybrid(self.weight),
            "disabled" => CachePolicy::disabled(),
            other => return Err(err(format!("unknown store kind {other:?}"))),
        })
    }
}

/// Workload selection with per-kind parameters (all optional, falling
/// back to the library defaults).
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Filebench webserver.
    Webserver {
        /// Number of files.
        files: Option<usize>,
        /// Popularity skew.
        zipf_theta: Option<f64>,
        /// Think time per loop, microseconds.
        think_us: Option<u64>,
    },
    /// Filebench webproxy.
    Proxycache {
        /// Number of cached objects.
        files: Option<usize>,
    },
    /// Filebench varmail.
    Mail {
        /// Number of mail files.
        files: Option<usize>,
    },
    /// Filebench videoserver.
    Videoserver {
        /// Active videos.
        videos: Option<usize>,
        /// Mean video size in blocks.
        video_blocks: Option<u32>,
    },
    /// Filebench fileserver.
    Fileserver {
        /// Number of files in the share.
        files: Option<usize>,
    },
    /// Filebench OLTP.
    Oltp {
        /// Database size in blocks.
        data_blocks: Option<u64>,
        /// Writing-transaction fraction.
        write_fraction: Option<f64>,
    },
    /// YCSB-like client.
    Ycsb {
        /// `"redis"`, `"mongodb"` or `"mysql"`.
        store: String,
        /// Dataset size in blocks.
        dataset_blocks: u64,
        /// Update fraction (default 0.05).
        update_fraction: Option<f64>,
    },
}

/// One container of a VM.
#[derive(Clone, Debug, PartialEq)]
pub struct ContainerSpec {
    /// Name; also the thread-label prefix and action-reference key.
    pub name: String,
    /// Cgroup hard limit, MiB.
    pub limit_mb: u64,
    /// Hypervisor cache policy.
    pub policy: PolicySpec,
    /// Workload to run.
    pub workload: WorkloadSpec,
    /// Number of closed-loop threads (default 1).
    pub threads: Option<u32>,
    /// Delay before the workload starts, seconds (default 0).
    pub start_secs: Option<u64>,
}

/// One VM.
#[derive(Clone, Debug, PartialEq)]
pub struct VmSpec {
    /// Guest RAM, MiB.
    pub mem_mb: u64,
    /// Hypervisor cache weight (both stores).
    pub weight: u64,
    /// Containers hosted in the VM.
    pub containers: Vec<ContainerSpec>,
}

/// A timed reconfiguration action, referencing containers by name.
#[derive(Clone, Debug, PartialEq)]
pub enum ActionSpec {
    /// SET_CG_WEIGHT: change a container's `<T, W>` policy.
    SetContainerPolicy {
        /// Virtual time, seconds.
        at_secs: u64,
        /// Container name.
        container: String,
        /// New policy.
        policy: PolicySpec,
    },
    /// Change a VM's cache weight (VM index in declaration order).
    SetVmWeight {
        /// Virtual time, seconds.
        at_secs: u64,
        /// VM index (0-based, declaration order).
        vm: usize,
        /// New weight.
        weight: u64,
    },
    /// Resize the memory store.
    SetMemCapacityMb {
        /// Virtual time, seconds.
        at_secs: u64,
        /// New capacity, MiB.
        mem_mb: u64,
    },
    /// Change a container's cgroup limit.
    SetContainerLimitMb {
        /// Virtual time, seconds.
        at_secs: u64,
        /// Container name.
        container: String,
        /// New limit, MiB.
        limit_mb: u64,
    },
    /// Drop a container's clean page cache.
    DropCaches {
        /// Virtual time, seconds.
        at_secs: u64,
        /// Container name.
        container: String,
    },
}

/// One fault window of a [`FaultSpec`] schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultWindowSpec {
    /// Window start, virtual seconds.
    pub from_secs: u64,
    /// Window end (exclusive), virtual seconds; `None` = never ends.
    pub until_secs: Option<u64>,
    /// `"transient_errors"`, `"latency_spike"`, `"brownout"` or
    /// `"death"`.
    pub kind: String,
    /// Failure probability per operation (required for
    /// `transient_errors` and `brownout`).
    pub error_rate: Option<f64>,
    /// Added latency per surviving operation, microseconds (required for
    /// `latency_spike` and `brownout`).
    pub extra_latency_us: Option<u64>,
}

impl FaultWindowSpec {
    fn to_kind(&self) -> Result<FaultKind, ScenarioError> {
        let rate = || {
            self.error_rate
                .ok_or_else(|| err(format!("fault kind {:?} needs \"error_rate\"", self.kind)))
        };
        let extra = || {
            self.extra_latency_us
                .map(SimDuration::from_micros)
                .ok_or_else(|| {
                    err(format!(
                        "fault kind {:?} needs \"extra_latency_us\"",
                        self.kind
                    ))
                })
        };
        Ok(match self.kind.as_str() {
            "transient_errors" => FaultKind::TransientErrors { rate: rate()? },
            "latency_spike" => FaultKind::LatencySpike { extra: extra()? },
            "brownout" => FaultKind::Brownout {
                rate: rate()?,
                extra: extra()?,
            },
            "death" => FaultKind::Death,
            other => return Err(err(format!("unknown fault kind {other:?}"))),
        })
    }

    fn add_to(&self, schedule: &mut FaultSchedule) -> Result<(), ScenarioError> {
        schedule.add_window(
            SimTime::from_secs(self.from_secs),
            self.until_secs.map(SimTime::from_secs),
            self.to_kind()?,
        );
        Ok(())
    }
}

/// Declarative fault-injection plan: seeded schedules on the cache's SSD
/// store and on every VM's hypercall channel.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// RNG seed for the fault schedules (per-VM channel schedules derive
    /// distinct sub-seeds from it).
    pub seed: u64,
    /// Where SSD-bound puts go while the tier is quarantined: `"to_mem"`
    /// (default) or `"reject"`.
    pub ssd_fallback: Option<String>,
    /// Fault windows on the SSD store.
    pub ssd: Vec<FaultWindowSpec>,
    /// Fault windows applied to each VM's hypercall channel.
    pub channel: Vec<FaultWindowSpec>,
}

/// A complete experiment description.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Display name.
    pub name: String,
    /// Cache configuration.
    pub cache: CacheSpec,
    /// Virtual run length, seconds.
    pub duration_secs: u64,
    /// Probe sampling interval, seconds (default 1).
    pub sample_secs: Option<u64>,
    /// Open the steady-state measurement window at this time (default:
    /// half the duration).
    pub warmup_secs: Option<u64>,
    /// The VMs.
    pub vms: Vec<VmSpec>,
    /// Timed reconfigurations.
    pub schedule: Vec<ActionSpec>,
    /// Optional fault-injection plan.
    pub faults: Option<FaultSpec>,
}

impl ScenarioSpec {
    /// Parses a JSON scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the parse failure.
    pub fn from_json(json: &str) -> Result<ScenarioSpec, ScenarioError> {
        let root = Json::parse(json).map_err(|e| err(e.to_string()))?;
        parse::scenario(&root)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        emit::scenario(self).to_string_pretty()
    }
}

/// JSON → spec conversion (hand-rolled; the workspace builds offline
/// without serde).
mod parse {
    use super::*;

    fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, ScenarioError> {
        obj.get(key)
            .ok_or_else(|| err(format!("missing field {key:?}")))
    }

    fn u64_field(obj: &Json, key: &str) -> Result<u64, ScenarioError> {
        field(obj, key)?
            .as_u64()
            .ok_or_else(|| err(format!("field {key:?} must be a non-negative integer")))
    }

    fn str_field(obj: &Json, key: &str) -> Result<String, ScenarioError> {
        Ok(field(obj, key)?
            .as_str()
            .ok_or_else(|| err(format!("field {key:?} must be a string")))?
            .to_owned())
    }

    fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, ScenarioError> {
        match obj.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| err(format!("field {key:?} must be a non-negative integer"))),
        }
    }

    fn opt_f64(obj: &Json, key: &str) -> Result<Option<f64>, ScenarioError> {
        match obj.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| err(format!("field {key:?} must be a number"))),
        }
    }

    fn list<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], ScenarioError> {
        match obj.get(key) {
            None | Some(Json::Null) => Ok(&[]),
            Some(v) => v
                .as_array()
                .ok_or_else(|| err(format!("field {key:?} must be an array"))),
        }
    }

    fn cache(v: &Json) -> Result<CacheSpec, ScenarioError> {
        let compression = match v.get("compression") {
            None | Some(Json::Null) => None,
            Some(c) => {
                let pair = c
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| err("\"compression\" must be a [millipages, codec_us] pair"))?;
                Some((
                    pair[0]
                        .as_u64()
                        .ok_or_else(|| err("compression millipages must be an integer"))?,
                    pair[1]
                        .as_u64()
                        .ok_or_else(|| err("compression codec_us must be an integer"))?,
                ))
            }
        };
        Ok(CacheSpec {
            mem_mb: u64_field(v, "mem_mb")?,
            ssd_mb: opt_u64(v, "ssd_mb")?.unwrap_or(0),
            mode: match v.get("mode") {
                None | Some(Json::Null) => None,
                Some(m) => Some(
                    m.as_str()
                        .ok_or_else(|| err("\"mode\" must be a string"))?
                        .to_owned(),
                ),
            },
            compression,
        })
    }

    fn policy(v: &Json) -> Result<PolicySpec, ScenarioError> {
        Ok(PolicySpec {
            store: str_field(v, "store")?,
            weight: opt_u64(v, "weight")?.unwrap_or(0) as u32,
        })
    }

    fn workload(v: &Json) -> Result<WorkloadSpec, ScenarioError> {
        let opt_usize = |key: &str| -> Result<Option<usize>, ScenarioError> {
            Ok(opt_u64(v, key)?.map(|n| n as usize))
        };
        Ok(match field(v, "kind")?.as_str() {
            Some("webserver") => WorkloadSpec::Webserver {
                files: opt_usize("files")?,
                zipf_theta: opt_f64(v, "zipf_theta")?,
                think_us: opt_u64(v, "think_us")?,
            },
            Some("proxycache") => WorkloadSpec::Proxycache {
                files: opt_usize("files")?,
            },
            Some("mail") => WorkloadSpec::Mail {
                files: opt_usize("files")?,
            },
            Some("videoserver") => WorkloadSpec::Videoserver {
                videos: opt_usize("videos")?,
                video_blocks: opt_u64(v, "video_blocks")?.map(|n| n as u32),
            },
            Some("fileserver") => WorkloadSpec::Fileserver {
                files: opt_usize("files")?,
            },
            Some("oltp") => WorkloadSpec::Oltp {
                data_blocks: opt_u64(v, "data_blocks")?,
                write_fraction: opt_f64(v, "write_fraction")?,
            },
            Some("ycsb") => WorkloadSpec::Ycsb {
                store: str_field(v, "store")?,
                dataset_blocks: u64_field(v, "dataset_blocks")?,
                update_fraction: opt_f64(v, "update_fraction")?,
            },
            Some(other) => return Err(err(format!("unknown workload kind {other:?}"))),
            None => return Err(err("workload needs a string \"kind\"")),
        })
    }

    fn container(v: &Json) -> Result<ContainerSpec, ScenarioError> {
        Ok(ContainerSpec {
            name: str_field(v, "name")?,
            limit_mb: u64_field(v, "limit_mb")?,
            policy: policy(field(v, "policy")?)?,
            workload: workload(field(v, "workload")?)?,
            threads: opt_u64(v, "threads")?.map(|n| n as u32),
            start_secs: opt_u64(v, "start_secs")?,
        })
    }

    fn vm(v: &Json) -> Result<VmSpec, ScenarioError> {
        Ok(VmSpec {
            mem_mb: u64_field(v, "mem_mb")?,
            weight: u64_field(v, "weight")?,
            containers: list(v, "containers")?
                .iter()
                .map(container)
                .collect::<Result<_, _>>()?,
        })
    }

    fn action(v: &Json) -> Result<ActionSpec, ScenarioError> {
        let at_secs = u64_field(v, "at_secs")?;
        Ok(match field(v, "action")?.as_str() {
            Some("set_container_policy") => ActionSpec::SetContainerPolicy {
                at_secs,
                container: str_field(v, "container")?,
                policy: policy(field(v, "policy")?)?,
            },
            Some("set_vm_weight") => ActionSpec::SetVmWeight {
                at_secs,
                vm: u64_field(v, "vm")? as usize,
                weight: u64_field(v, "weight")?,
            },
            Some("set_mem_capacity_mb") => ActionSpec::SetMemCapacityMb {
                at_secs,
                mem_mb: u64_field(v, "mem_mb")?,
            },
            Some("set_container_limit_mb") => ActionSpec::SetContainerLimitMb {
                at_secs,
                container: str_field(v, "container")?,
                limit_mb: u64_field(v, "limit_mb")?,
            },
            Some("drop_caches") => ActionSpec::DropCaches {
                at_secs,
                container: str_field(v, "container")?,
            },
            Some(other) => return Err(err(format!("unknown action {other:?}"))),
            None => return Err(err("schedule entry needs a string \"action\"")),
        })
    }

    fn fault_window(v: &Json) -> Result<FaultWindowSpec, ScenarioError> {
        Ok(FaultWindowSpec {
            from_secs: u64_field(v, "from_secs")?,
            until_secs: opt_u64(v, "until_secs")?,
            kind: str_field(v, "kind")?,
            error_rate: opt_f64(v, "error_rate")?,
            extra_latency_us: opt_u64(v, "extra_latency_us")?,
        })
    }

    fn faults(v: &Json) -> Result<FaultSpec, ScenarioError> {
        Ok(FaultSpec {
            seed: u64_field(v, "seed")?,
            ssd_fallback: match v.get("ssd_fallback") {
                None | Some(Json::Null) => None,
                Some(m) => Some(
                    m.as_str()
                        .ok_or_else(|| err("\"ssd_fallback\" must be a string"))?
                        .to_owned(),
                ),
            },
            ssd: list(v, "ssd")?
                .iter()
                .map(fault_window)
                .collect::<Result<_, _>>()?,
            channel: list(v, "channel")?
                .iter()
                .map(fault_window)
                .collect::<Result<_, _>>()?,
        })
    }

    pub(super) fn scenario(v: &Json) -> Result<ScenarioSpec, ScenarioError> {
        Ok(ScenarioSpec {
            name: str_field(v, "name")?,
            cache: cache(field(v, "cache")?)?,
            duration_secs: u64_field(v, "duration_secs")?,
            sample_secs: opt_u64(v, "sample_secs")?,
            warmup_secs: opt_u64(v, "warmup_secs")?,
            vms: list(v, "vms")?.iter().map(vm).collect::<Result<_, _>>()?,
            schedule: list(v, "schedule")?
                .iter()
                .map(action)
                .collect::<Result<_, _>>()?,
            faults: match v.get("faults") {
                None | Some(Json::Null) => None,
                Some(f) => Some(faults(f)?),
            },
        })
    }
}

/// Spec → JSON conversion. Optional fields are emitted only when set, so
/// `from_json(to_json(spec)) == spec` and emission is deterministic.
mod emit {
    use super::*;

    fn policy(p: &PolicySpec) -> Json {
        let mut v = Json::object();
        v.set("store", p.store.as_str());
        v.set("weight", p.weight);
        v
    }

    fn set_opt(v: &mut Json, key: &str, value: Option<impl Into<Json>>) {
        if let Some(value) = value {
            v.set(key, value);
        }
    }

    fn workload(w: &WorkloadSpec) -> Json {
        let mut v = Json::object();
        match w {
            WorkloadSpec::Webserver {
                files,
                zipf_theta,
                think_us,
            } => {
                v.set("kind", "webserver");
                set_opt(&mut v, "files", *files);
                set_opt(&mut v, "zipf_theta", *zipf_theta);
                set_opt(&mut v, "think_us", *think_us);
            }
            WorkloadSpec::Proxycache { files } => {
                v.set("kind", "proxycache");
                set_opt(&mut v, "files", *files);
            }
            WorkloadSpec::Mail { files } => {
                v.set("kind", "mail");
                set_opt(&mut v, "files", *files);
            }
            WorkloadSpec::Videoserver {
                videos,
                video_blocks,
            } => {
                v.set("kind", "videoserver");
                set_opt(&mut v, "videos", *videos);
                set_opt(&mut v, "video_blocks", *video_blocks);
            }
            WorkloadSpec::Fileserver { files } => {
                v.set("kind", "fileserver");
                set_opt(&mut v, "files", *files);
            }
            WorkloadSpec::Oltp {
                data_blocks,
                write_fraction,
            } => {
                v.set("kind", "oltp");
                set_opt(&mut v, "data_blocks", *data_blocks);
                set_opt(&mut v, "write_fraction", *write_fraction);
            }
            WorkloadSpec::Ycsb {
                store,
                dataset_blocks,
                update_fraction,
            } => {
                v.set("kind", "ycsb");
                v.set("store", store.as_str());
                v.set("dataset_blocks", *dataset_blocks);
                set_opt(&mut v, "update_fraction", *update_fraction);
            }
        }
        v
    }

    fn container(c: &ContainerSpec) -> Json {
        let mut v = Json::object();
        v.set("name", c.name.as_str());
        v.set("limit_mb", c.limit_mb);
        v.set("policy", policy(&c.policy));
        v.set("workload", workload(&c.workload));
        set_opt(&mut v, "threads", c.threads);
        set_opt(&mut v, "start_secs", c.start_secs);
        v
    }

    fn action(a: &ActionSpec) -> Json {
        let mut v = Json::object();
        match a {
            ActionSpec::SetContainerPolicy {
                at_secs,
                container,
                policy: p,
            } => {
                v.set("action", "set_container_policy");
                v.set("at_secs", *at_secs);
                v.set("container", container.as_str());
                v.set("policy", policy(p));
            }
            ActionSpec::SetVmWeight {
                at_secs,
                vm,
                weight,
            } => {
                v.set("action", "set_vm_weight");
                v.set("at_secs", *at_secs);
                v.set("vm", *vm);
                v.set("weight", *weight);
            }
            ActionSpec::SetMemCapacityMb { at_secs, mem_mb } => {
                v.set("action", "set_mem_capacity_mb");
                v.set("at_secs", *at_secs);
                v.set("mem_mb", *mem_mb);
            }
            ActionSpec::SetContainerLimitMb {
                at_secs,
                container,
                limit_mb,
            } => {
                v.set("action", "set_container_limit_mb");
                v.set("at_secs", *at_secs);
                v.set("container", container.as_str());
                v.set("limit_mb", *limit_mb);
            }
            ActionSpec::DropCaches { at_secs, container } => {
                v.set("action", "drop_caches");
                v.set("at_secs", *at_secs);
                v.set("container", container.as_str());
            }
        }
        v
    }

    pub(super) fn scenario(s: &ScenarioSpec) -> Json {
        let mut v = Json::object();
        v.set("name", s.name.as_str());
        let mut cache = Json::object();
        cache.set("mem_mb", s.cache.mem_mb);
        cache.set("ssd_mb", s.cache.ssd_mb);
        set_opt(&mut cache, "mode", s.cache.mode.as_deref());
        if let Some((millipages, codec_us)) = s.cache.compression {
            cache.set(
                "compression",
                vec![Json::from(millipages), Json::from(codec_us)],
            );
        }
        v.set("cache", cache);
        v.set("duration_secs", s.duration_secs);
        set_opt(&mut v, "sample_secs", s.sample_secs);
        set_opt(&mut v, "warmup_secs", s.warmup_secs);
        v.set("vms", s.vms.iter().map(container_list).collect::<Vec<_>>());
        v.set(
            "schedule",
            s.schedule.iter().map(action).collect::<Vec<_>>(),
        );
        if let Some(f) = &s.faults {
            v.set("faults", faults(f));
        }
        v
    }

    fn fault_window(w: &FaultWindowSpec) -> Json {
        let mut v = Json::object();
        v.set("from_secs", w.from_secs);
        set_opt(&mut v, "until_secs", w.until_secs);
        v.set("kind", w.kind.as_str());
        set_opt(&mut v, "error_rate", w.error_rate);
        set_opt(&mut v, "extra_latency_us", w.extra_latency_us);
        v
    }

    fn faults(f: &FaultSpec) -> Json {
        let mut v = Json::object();
        v.set("seed", f.seed);
        set_opt(&mut v, "ssd_fallback", f.ssd_fallback.as_deref());
        v.set("ssd", f.ssd.iter().map(fault_window).collect::<Vec<_>>());
        v.set(
            "channel",
            f.channel.iter().map(fault_window).collect::<Vec<_>>(),
        );
        v
    }

    fn container_list(vm: &VmSpec) -> Json {
        let mut v = Json::object();
        v.set("mem_mb", vm.mem_mb);
        v.set("weight", vm.weight);
        v.set(
            "containers",
            vm.containers.iter().map(container).collect::<Vec<_>>(),
        );
        v
    }
}

fn mb(mib: u64) -> u64 {
    CacheConfig::pages_from_mb(mib)
}

fn make_thread(
    spec: &WorkloadSpec,
    label: String,
    vm: VmId,
    cg: CgroupId,
    seed: u64,
) -> Result<Box<dyn WorkloadThread>, ScenarioError> {
    Ok(match spec {
        WorkloadSpec::Webserver {
            files,
            zipf_theta,
            think_us,
        } => {
            let mut cfg = WebConfig::default();
            if let Some(f) = files {
                cfg.files = *f;
            }
            if let Some(z) = zipf_theta {
                cfg.zipf_theta = *z;
            }
            if let Some(us) = think_us {
                cfg.think_time = SimDuration::from_micros(*us);
            }
            Box::new(Webserver::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Proxycache { files } => {
            let mut cfg = ProxyConfig::default();
            if let Some(f) = files {
                cfg.files = *f;
            }
            Box::new(Proxycache::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Mail { files } => {
            let mut cfg = MailConfig::default();
            if let Some(f) = files {
                cfg.files = *f;
            }
            Box::new(MailServer::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Videoserver {
            videos,
            video_blocks,
        } => {
            let mut cfg = VideoConfig::default();
            if let Some(v) = videos {
                cfg.active_videos = *v;
            }
            if let Some(b) = video_blocks {
                cfg.mean_video_blocks = *b;
            }
            Box::new(VideoServer::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Fileserver { files } => {
            let mut cfg = FileServerConfig::default();
            if let Some(f) = files {
                cfg.files = *f;
            }
            Box::new(FileServer::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Oltp {
            data_blocks,
            write_fraction,
        } => {
            let mut cfg = OltpConfig::default();
            if let Some(d) = data_blocks {
                cfg.data_blocks = *d;
            }
            if let Some(w) = write_fraction {
                cfg.write_fraction = *w;
            }
            Box::new(Oltp::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Ycsb {
            store,
            dataset_blocks,
            update_fraction,
        } => {
            let model = match store.as_str() {
                "redis" => StoreModel::RedisLike,
                "mongodb" => StoreModel::MongoLike,
                "mysql" => StoreModel::MySqlLike,
                other => return Err(err(format!("unknown ycsb store {other:?}"))),
            };
            let mut cfg = YcsbConfig::read_mostly(model, *dataset_blocks);
            if let Some(u) = update_fraction {
                cfg.update_fraction = *u;
            }
            Box::new(YcsbClient::new(label, vm, cg, cfg, seed))
        }
    })
}

/// Builds a runnable [`Experiment`] from a scenario. Occupancy probes are
/// registered automatically, one per container (`"{name} (MB)"`).
///
/// # Errors
///
/// Returns a [`ScenarioError`] for unknown store kinds, duplicate or
/// unknown container names, or out-of-range VM references.
pub fn build(spec: &ScenarioSpec) -> Result<Experiment, ScenarioError> {
    let mode = match spec.cache.mode.as_deref() {
        None | Some("doubledecker") => PartitionMode::DoubleDecker,
        Some("global") => PartitionMode::Global,
        Some("strict") => PartitionMode::Strict,
        Some(other) => return Err(err(format!("unknown mode {other:?}"))),
    };
    let cache = CacheConfig {
        mem_capacity_pages: mb(spec.cache.mem_mb),
        ssd_capacity_pages: mb(spec.cache.ssd_mb),
        mode,
        admission: AdmissionConfig::off(),
    };
    let mut host = Host::new(HostConfig::new(cache));
    if let Some((millipages, codec_us)) = spec.cache.compression {
        host.set_mem_cache_compression(millipages, SimDuration::from_micros(codec_us));
    }

    let mut containers: BTreeMap<String, (VmId, CgroupId)> = BTreeMap::new();
    // Spec-order view of the container names: probes must be registered
    // in a deterministic order (HashMap iteration order varies run to
    // run, which would reshuffle report series between otherwise
    // identical runs).
    let mut container_order: Vec<String> = Vec::new();
    let mut vm_ids = Vec::new();
    let mut threads: Vec<(SimTime, Box<dyn WorkloadThread>)> = Vec::new();
    let mut seed = 1u64;
    for vm_spec in &spec.vms {
        let vm = host.boot_vm(vm_spec.mem_mb, vm_spec.weight);
        vm_ids.push(vm);
        for c in &vm_spec.containers {
            if containers.contains_key(&c.name) {
                return Err(err(format!("duplicate container name {:?}", c.name)));
            }
            let cg = host.create_container(vm, &c.name, mb(c.limit_mb), c.policy.to_policy()?);
            containers.insert(c.name.clone(), (vm, cg));
            container_order.push(c.name.clone());
            let start = SimTime::from_secs(c.start_secs.unwrap_or(0));
            for t in 0..c.threads.unwrap_or(1) {
                seed += 1;
                let label = format!("{}/t{t}", c.name);
                threads.push((start, make_thread(&c.workload, label, vm, cg, seed)?));
            }
        }
    }

    if let Some(f) = &spec.faults {
        match f.ssd_fallback.as_deref() {
            None | Some("to_mem") => host.set_ssd_fallback_mode(FallbackMode::ToMem),
            Some("reject") => host.set_ssd_fallback_mode(FallbackMode::Reject),
            Some(other) => return Err(err(format!("unknown ssd_fallback {other:?}"))),
        }
        if !f.ssd.is_empty() {
            let mut schedule = FaultSchedule::new(f.seed);
            for w in &f.ssd {
                w.add_to(&mut schedule)?;
            }
            host.set_ssd_fault_schedule(Some(schedule));
        }
        if !f.channel.is_empty() {
            for (i, vm) in vm_ids.iter().enumerate() {
                // Distinct deterministic sub-seed per VM so channels
                // don't fault in lockstep.
                let sub_seed = f
                    .seed
                    .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut schedule = FaultSchedule::new(sub_seed);
                for w in &f.channel {
                    w.add_to(&mut schedule)?;
                }
                host.set_channel_fault_schedule(*vm, Some(schedule));
            }
        }
    }

    let sample = SimDuration::from_secs(spec.sample_secs.unwrap_or(1).max(1));
    let mut exp = Experiment::new(host, sample);
    for (start, thread) in threads {
        exp.add_thread_at(start, thread);
    }
    for name in &container_order {
        let (vm, cg) = containers[name];
        let label = format!("{name} (MB)");
        exp.add_probe(label, move |h| {
            h.container_cache_stats(vm, cg).map_or(0.0, |s| {
                s.mem_pages as f64 * ddc_storage::PAGE_SIZE as f64 / 1e6
            })
        });
    }

    for action in &spec.schedule {
        match action.clone() {
            ActionSpec::SetContainerPolicy {
                at_secs,
                container,
                policy,
            } => {
                let &(vm, cg) = containers
                    .get(&container)
                    .ok_or_else(|| err(format!("unknown container {container:?}")))?;
                let policy = policy.to_policy()?;
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, _at| {
                    host.set_container_policy(vm, cg, policy);
                });
            }
            ActionSpec::SetVmWeight {
                at_secs,
                vm,
                weight,
            } => {
                let id = *vm_ids
                    .get(vm)
                    .ok_or_else(|| err(format!("vm index {vm} out of range")))?;
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, _at| {
                    host.set_vm_cache_weight(id, weight);
                });
            }
            ActionSpec::SetMemCapacityMb { at_secs, mem_mb } => {
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, at| {
                    host.set_mem_cache_capacity(at, mb(mem_mb));
                });
            }
            ActionSpec::SetContainerLimitMb {
                at_secs,
                container,
                limit_mb,
            } => {
                let &(vm, cg) = containers
                    .get(&container)
                    .ok_or_else(|| err(format!("unknown container {container:?}")))?;
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, at| {
                    host.set_container_mem_limit(at, vm, cg, mb(limit_mb));
                });
            }
            ActionSpec::DropCaches { at_secs, container } => {
                let &(vm, cg) = containers
                    .get(&container)
                    .ok_or_else(|| err(format!("unknown container {container:?}")))?;
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, at| {
                    host.drop_caches(at, vm, cg);
                });
            }
        }
    }

    let warmup = spec
        .warmup_secs
        .unwrap_or(spec.duration_secs / 2)
        .min(spec.duration_secs);
    if warmup > 0 {
        exp.mark_steady_state_at(SimTime::from_secs(warmup));
    }
    Ok(exp)
}

/// Builds and runs a scenario to completion.
///
/// # Errors
///
/// Returns a [`ScenarioError`] if the spec fails validation.
pub fn run(spec: &ScenarioSpec) -> Result<ExperimentReport, ScenarioError> {
    let mut exp = build(spec)?;
    Ok(exp.run_until(SimTime::from_secs(spec.duration_secs)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> &'static str {
        r#"{
            "name": "web-pair",
            "cache": { "mem_mb": 64, "mode": "doubledecker" },
            "duration_secs": 10,
            "vms": [ { "mem_mb": 32, "weight": 100, "containers": [
                { "name": "web", "limit_mb": 16,
                  "policy": { "store": "mem", "weight": 60 },
                  "threads": 2,
                  "workload": { "kind": "webserver", "files": 400 } },
                { "name": "proxy", "limit_mb": 16,
                  "policy": { "store": "mem", "weight": 40 },
                  "workload": { "kind": "proxycache", "files": 300 } }
            ] } ],
            "schedule": [
                { "action": "set_container_policy", "at_secs": 5,
                  "container": "web",
                  "policy": { "store": "mem", "weight": 80 } }
            ]
        }"#
    }

    #[test]
    fn parse_build_run_roundtrip() {
        let spec = ScenarioSpec::from_json(minimal_json()).unwrap();
        assert_eq!(spec.name, "web-pair");
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let report = run(&spec).unwrap();
        assert_eq!(report.end, 10.0);
        assert!(report.throughput_of("web") > 0.0);
        assert!(report.throughput_of("proxy") > 0.0);
        assert!(report.series("web (MB)").is_some());
    }

    #[test]
    fn schedule_actions_apply() {
        let spec = ScenarioSpec::from_json(minimal_json()).unwrap();
        let mut exp = build(&spec).unwrap();
        exp.run_until(SimTime::from_secs(10));
        // After the scheduled action, web's weight is 80.
        let host = exp.host();
        let vm = host.vm_ids()[0];
        let cgs = host.guest(vm).cgroup_ids();
        assert_eq!(host.guest(vm).cgroup(cgs[0]).policy().weight, 80);
    }

    #[test]
    fn every_workload_kind_builds() {
        let json = r#"{
            "name": "zoo",
            "cache": { "mem_mb": 64, "ssd_mb": 256 },
            "duration_secs": 2,
            "vms": [ { "mem_mb": 64, "weight": 100, "containers": [
                { "name": "w", "limit_mb": 8, "policy": { "store": "mem", "weight": 20 },
                  "workload": { "kind": "webserver" } },
                { "name": "p", "limit_mb": 8, "policy": { "store": "mem", "weight": 20 },
                  "workload": { "kind": "proxycache" } },
                { "name": "m", "limit_mb": 8, "policy": { "store": "mem", "weight": 20 },
                  "workload": { "kind": "mail" } },
                { "name": "v", "limit_mb": 8, "policy": { "store": "ssd", "weight": 100 },
                  "workload": { "kind": "videoserver", "videos": 8, "video_blocks": 16 } },
                { "name": "f", "limit_mb": 8, "policy": { "store": "hybrid", "weight": 20 },
                  "workload": { "kind": "fileserver" } },
                { "name": "o", "limit_mb": 8, "policy": { "store": "mem", "weight": 20 },
                  "workload": { "kind": "oltp", "data_blocks": 64 } },
                { "name": "y", "limit_mb": 8, "policy": { "store": "disabled" },
                  "workload": { "kind": "ycsb", "store": "mongodb", "dataset_blocks": 64 } }
            ] } ]
        }"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        let report = run(&spec).unwrap();
        assert_eq!(report.threads.len(), 7);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(ScenarioSpec::from_json("{").is_err());

        let bad_store =
            minimal_json().replace("\"mem\", \"weight\": 60", "\"floppy\", \"weight\": 60");
        let spec = ScenarioSpec::from_json(&bad_store).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("floppy"), "{e}");

        let bad_mode = minimal_json().replace("doubledecker", "roundrobin");
        let spec = ScenarioSpec::from_json(&bad_mode).unwrap();
        assert!(build(&spec).is_err());

        let dup = minimal_json().replace("\"proxy\"", "\"web\"");
        let spec = ScenarioSpec::from_json(&dup).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");

        let bad_ref = minimal_json().replace("\"container\": \"web\"", "\"container\": \"nope\"");
        let spec = ScenarioSpec::from_json(&bad_ref).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
    }

    #[test]
    fn fault_plan_roundtrips_and_degrades_gracefully() {
        let json = r#"{
            "name": "brownout",
            "cache": { "mem_mb": 4, "ssd_mb": 64 },
            "duration_secs": 8,
            "warmup_secs": 0,
            "vms": [ { "mem_mb": 8, "weight": 100, "containers": [
                { "name": "web", "limit_mb": 2,
                  "policy": { "store": "ssd", "weight": 100 },
                  "workload": { "kind": "webserver", "files": 400 } }
            ] } ],
            "faults": {
                "seed": 42,
                "ssd_fallback": "to_mem",
                "ssd": [ { "from_secs": 2, "until_secs": 5,
                           "kind": "brownout", "error_rate": 0.5,
                           "extra_latency_us": 500 } ],
                "channel": [ { "from_secs": 3, "until_secs": 4,
                               "kind": "transient_errors",
                               "error_rate": 0.2 } ]
            }
        }"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec, "fault plan survives the JSON roundtrip");
        let report = run(&spec).unwrap();
        assert!(report.faults.ssd_quarantines > 0, "SSD faults observed");
        assert!(report.faults.failed_puts + report.faults.failed_gets > 0);
        assert!(report.faults.channel_dropped_calls > 0);
        assert!(
            report.threads[0].ops > 0,
            "workload survives the fault window"
        );
        // Determinism: the identical spec reruns to a byte-identical
        // report.
        let again = run(&spec).unwrap();
        assert_eq!(again.to_json(), report.to_json());
    }

    #[test]
    fn fault_plan_validation_errors() {
        let base = r#"{
            "name": "bad",
            "cache": { "mem_mb": 4, "ssd_mb": 16 },
            "duration_secs": 1,
            "vms": [],
            "faults": { "seed": 1, "ssd": [ WINDOW ] }
        }"#;
        let bad_kind = base.replace("WINDOW", r#"{ "from_secs": 0, "kind": "gremlins" }"#);
        let spec = ScenarioSpec::from_json(&bad_kind).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("gremlins"), "{e}");

        let missing_rate = base.replace(
            "WINDOW",
            r#"{ "from_secs": 0, "kind": "transient_errors" }"#,
        );
        let spec = ScenarioSpec::from_json(&missing_rate).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("error_rate"), "{e}");

        let bad_fallback = r#"{
            "name": "bad",
            "cache": { "mem_mb": 4, "ssd_mb": 16 },
            "duration_secs": 1,
            "vms": [],
            "faults": { "seed": 1, "ssd_fallback": "panic" }
        }"#;
        let spec = ScenarioSpec::from_json(bad_fallback).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("panic"), "{e}");
    }

    #[test]
    fn delayed_start_and_compression() {
        let json = r#"{
            "name": "late",
            "cache": { "mem_mb": 32, "compression": [500, 5] },
            "duration_secs": 6,
            "warmup_secs": 0,
            "vms": [ { "mem_mb": 32, "weight": 100, "containers": [
                { "name": "late", "limit_mb": 8,
                  "policy": { "store": "mem", "weight": 100 },
                  "start_secs": 4,
                  "workload": { "kind": "webserver", "files": 100 } }
            ] } ]
        }"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        let report = run(&spec).unwrap();
        let series = report.series("late (MB)").unwrap();
        let before = series.mean_in(1.0, 4.0).unwrap_or(0.0);
        assert_eq!(before, 0.0, "no activity before the delayed start");
        assert!(report.threads[0].ops > 0, "workload ran after its start");
    }
}
