//! Declarative experiment scenarios.
//!
//! A [`ScenarioSpec`] describes a complete experiment — cache
//! configuration, VMs, containers, workloads, timed reconfiguration
//! actions and probes — as plain serializable data, so experiments can be
//! defined in JSON and run with the `scenario` binary (or embedded via
//! [`build`]): the no-code path for exploring DoubleDecker policies.
//!
//! ```json
//! {
//!   "name": "web-pair",
//!   "cache": { "mem_mb": 128, "mode": "doubledecker" },
//!   "duration_secs": 60,
//!   "vms": [ { "mem_mb": 64, "weight": 100, "containers": [
//!     { "name": "web", "limit_mb": 32,
//!       "policy": { "store": "mem", "weight": 60 },
//!       "threads": 2,
//!       "workload": { "kind": "webserver", "files": 1200 } }
//!   ] } ]
//! }
//! ```

use ddc_cleancache::{CachePolicy, VmId};
use ddc_guest::CgroupId;
use ddc_hypercache::{CacheConfig, PartitionMode};
use ddc_hypervisor::{Host, HostConfig};
use ddc_sim::{SimDuration, SimTime};
use ddc_workloads::{
    FileServer, FileServerConfig, MailConfig, MailServer, Oltp, OltpConfig, ProxyConfig,
    Proxycache, StoreModel, VideoConfig, VideoServer, WebConfig, Webserver, WorkloadThread,
    YcsbClient, YcsbConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::{Experiment, ExperimentReport};

/// Error building or validating a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn err(msg: impl Into<String>) -> ScenarioError {
    ScenarioError(msg.into())
}

/// Cache store configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Memory store capacity, MiB.
    pub mem_mb: u64,
    /// SSD store capacity, MiB (default 0 = no SSD store).
    #[serde(default)]
    pub ssd_mb: u64,
    /// `"doubledecker"` (default), `"global"` or `"strict"`.
    #[serde(default)]
    pub mode: Option<String>,
    /// Optional zcache-style compression `(millipages per object,
    /// codec µs)`.
    #[serde(default)]
    pub compression: Option<(u64, u64)>,
}

/// A container's `<T, W>` policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicySpec {
    /// `"mem"`, `"ssd"`, `"hybrid"` or `"disabled"`.
    pub store: String,
    /// Weight (ignored for `"disabled"`).
    #[serde(default)]
    pub weight: u32,
}

impl PolicySpec {
    fn to_policy(&self) -> Result<CachePolicy, ScenarioError> {
        Ok(match self.store.as_str() {
            "mem" => CachePolicy::mem(self.weight),
            "ssd" => CachePolicy::ssd(self.weight),
            "hybrid" => CachePolicy::hybrid(self.weight),
            "disabled" => CachePolicy::disabled(),
            other => return Err(err(format!("unknown store kind {other:?}"))),
        })
    }
}

/// Workload selection with per-kind parameters (all optional, falling
/// back to the library defaults).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "lowercase")]
pub enum WorkloadSpec {
    /// Filebench webserver.
    Webserver {
        /// Number of files.
        #[serde(default)]
        files: Option<usize>,
        /// Popularity skew.
        #[serde(default)]
        zipf_theta: Option<f64>,
        /// Think time per loop, microseconds.
        #[serde(default)]
        think_us: Option<u64>,
    },
    /// Filebench webproxy.
    Proxycache {
        /// Number of cached objects.
        #[serde(default)]
        files: Option<usize>,
    },
    /// Filebench varmail.
    Mail {
        /// Number of mail files.
        #[serde(default)]
        files: Option<usize>,
    },
    /// Filebench videoserver.
    Videoserver {
        /// Active videos.
        #[serde(default)]
        videos: Option<usize>,
        /// Mean video size in blocks.
        #[serde(default)]
        video_blocks: Option<u32>,
    },
    /// Filebench fileserver.
    Fileserver {
        /// Number of files in the share.
        #[serde(default)]
        files: Option<usize>,
    },
    /// Filebench OLTP.
    Oltp {
        /// Database size in blocks.
        #[serde(default)]
        data_blocks: Option<u64>,
        /// Writing-transaction fraction.
        #[serde(default)]
        write_fraction: Option<f64>,
    },
    /// YCSB-like client.
    Ycsb {
        /// `"redis"`, `"mongodb"` or `"mysql"`.
        store: String,
        /// Dataset size in blocks.
        dataset_blocks: u64,
        /// Update fraction (default 0.05).
        #[serde(default)]
        update_fraction: Option<f64>,
    },
}

/// One container of a VM.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContainerSpec {
    /// Name; also the thread-label prefix and action-reference key.
    pub name: String,
    /// Cgroup hard limit, MiB.
    pub limit_mb: u64,
    /// Hypervisor cache policy.
    pub policy: PolicySpec,
    /// Workload to run.
    pub workload: WorkloadSpec,
    /// Number of closed-loop threads (default 1).
    #[serde(default)]
    pub threads: Option<u32>,
    /// Delay before the workload starts, seconds (default 0).
    #[serde(default)]
    pub start_secs: Option<u64>,
}

/// One VM.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Guest RAM, MiB.
    pub mem_mb: u64,
    /// Hypervisor cache weight (both stores).
    pub weight: u64,
    /// Containers hosted in the VM.
    pub containers: Vec<ContainerSpec>,
}

/// A timed reconfiguration action, referencing containers by name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "action", rename_all = "snake_case")]
pub enum ActionSpec {
    /// SET_CG_WEIGHT: change a container's `<T, W>` policy.
    SetContainerPolicy {
        /// Virtual time, seconds.
        at_secs: u64,
        /// Container name.
        container: String,
        /// New policy.
        policy: PolicySpec,
    },
    /// Change a VM's cache weight (VM index in declaration order).
    SetVmWeight {
        /// Virtual time, seconds.
        at_secs: u64,
        /// VM index (0-based, declaration order).
        vm: usize,
        /// New weight.
        weight: u64,
    },
    /// Resize the memory store.
    SetMemCapacityMb {
        /// Virtual time, seconds.
        at_secs: u64,
        /// New capacity, MiB.
        mem_mb: u64,
    },
    /// Change a container's cgroup limit.
    SetContainerLimitMb {
        /// Virtual time, seconds.
        at_secs: u64,
        /// Container name.
        container: String,
        /// New limit, MiB.
        limit_mb: u64,
    },
    /// Drop a container's clean page cache.
    DropCaches {
        /// Virtual time, seconds.
        at_secs: u64,
        /// Container name.
        container: String,
    },
}

/// A complete experiment description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Display name.
    pub name: String,
    /// Cache configuration.
    pub cache: CacheSpec,
    /// Virtual run length, seconds.
    pub duration_secs: u64,
    /// Probe sampling interval, seconds (default 1).
    #[serde(default)]
    pub sample_secs: Option<u64>,
    /// Open the steady-state measurement window at this time (default:
    /// half the duration).
    #[serde(default)]
    pub warmup_secs: Option<u64>,
    /// The VMs.
    pub vms: Vec<VmSpec>,
    /// Timed reconfigurations.
    #[serde(default)]
    pub schedule: Vec<ActionSpec>,
}

impl ScenarioSpec {
    /// Parses a JSON scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the parse failure.
    pub fn from_json(json: &str) -> Result<ScenarioSpec, ScenarioError> {
        serde_json::from_str(json).map_err(|e| err(e.to_string()))
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plain data serializes")
    }
}

fn mb(mib: u64) -> u64 {
    CacheConfig::pages_from_mb(mib)
}

fn make_thread(
    spec: &WorkloadSpec,
    label: String,
    vm: VmId,
    cg: CgroupId,
    seed: u64,
) -> Result<Box<dyn WorkloadThread>, ScenarioError> {
    Ok(match spec {
        WorkloadSpec::Webserver {
            files,
            zipf_theta,
            think_us,
        } => {
            let mut cfg = WebConfig::default();
            if let Some(f) = files {
                cfg.files = *f;
            }
            if let Some(z) = zipf_theta {
                cfg.zipf_theta = *z;
            }
            if let Some(us) = think_us {
                cfg.think_time = SimDuration::from_micros(*us);
            }
            Box::new(Webserver::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Proxycache { files } => {
            let mut cfg = ProxyConfig::default();
            if let Some(f) = files {
                cfg.files = *f;
            }
            Box::new(Proxycache::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Mail { files } => {
            let mut cfg = MailConfig::default();
            if let Some(f) = files {
                cfg.files = *f;
            }
            Box::new(MailServer::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Videoserver {
            videos,
            video_blocks,
        } => {
            let mut cfg = VideoConfig::default();
            if let Some(v) = videos {
                cfg.active_videos = *v;
            }
            if let Some(b) = video_blocks {
                cfg.mean_video_blocks = *b;
            }
            Box::new(VideoServer::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Fileserver { files } => {
            let mut cfg = FileServerConfig::default();
            if let Some(f) = files {
                cfg.files = *f;
            }
            Box::new(FileServer::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Oltp {
            data_blocks,
            write_fraction,
        } => {
            let mut cfg = OltpConfig::default();
            if let Some(d) = data_blocks {
                cfg.data_blocks = *d;
            }
            if let Some(w) = write_fraction {
                cfg.write_fraction = *w;
            }
            Box::new(Oltp::new(label, vm, cg, cfg, seed))
        }
        WorkloadSpec::Ycsb {
            store,
            dataset_blocks,
            update_fraction,
        } => {
            let model = match store.as_str() {
                "redis" => StoreModel::RedisLike,
                "mongodb" => StoreModel::MongoLike,
                "mysql" => StoreModel::MySqlLike,
                other => return Err(err(format!("unknown ycsb store {other:?}"))),
            };
            let mut cfg = YcsbConfig::read_mostly(model, *dataset_blocks);
            if let Some(u) = update_fraction {
                cfg.update_fraction = *u;
            }
            Box::new(YcsbClient::new(label, vm, cg, cfg, seed))
        }
    })
}

/// Builds a runnable [`Experiment`] from a scenario. Occupancy probes are
/// registered automatically, one per container (`"{name} (MB)"`).
///
/// # Errors
///
/// Returns a [`ScenarioError`] for unknown store kinds, duplicate or
/// unknown container names, or out-of-range VM references.
pub fn build(spec: &ScenarioSpec) -> Result<Experiment, ScenarioError> {
    let mode = match spec.cache.mode.as_deref() {
        None | Some("doubledecker") => PartitionMode::DoubleDecker,
        Some("global") => PartitionMode::Global,
        Some("strict") => PartitionMode::Strict,
        Some(other) => return Err(err(format!("unknown mode {other:?}"))),
    };
    let cache = CacheConfig {
        mem_capacity_pages: mb(spec.cache.mem_mb),
        ssd_capacity_pages: mb(spec.cache.ssd_mb),
        mode,
    };
    let mut host = Host::new(HostConfig::new(cache));
    if let Some((millipages, codec_us)) = spec.cache.compression {
        host.set_mem_cache_compression(millipages, SimDuration::from_micros(codec_us));
    }

    let mut containers: HashMap<String, (VmId, CgroupId)> = HashMap::new();
    let mut vm_ids = Vec::new();
    let mut threads: Vec<(SimTime, Box<dyn WorkloadThread>)> = Vec::new();
    let mut seed = 1u64;
    for vm_spec in &spec.vms {
        let vm = host.boot_vm(vm_spec.mem_mb, vm_spec.weight);
        vm_ids.push(vm);
        for c in &vm_spec.containers {
            if containers.contains_key(&c.name) {
                return Err(err(format!("duplicate container name {:?}", c.name)));
            }
            let cg = host.create_container(vm, &c.name, mb(c.limit_mb), c.policy.to_policy()?);
            containers.insert(c.name.clone(), (vm, cg));
            let start = SimTime::from_secs(c.start_secs.unwrap_or(0));
            for t in 0..c.threads.unwrap_or(1) {
                seed += 1;
                let label = format!("{}/t{t}", c.name);
                threads.push((start, make_thread(&c.workload, label, vm, cg, seed)?));
            }
        }
    }

    let sample = SimDuration::from_secs(spec.sample_secs.unwrap_or(1).max(1));
    let mut exp = Experiment::new(host, sample);
    for (start, thread) in threads {
        exp.add_thread_at(start, thread);
    }
    for (name, (vm, cg)) in &containers {
        let (vm, cg, label) = (*vm, *cg, format!("{name} (MB)"));
        exp.add_probe(label, move |h| {
            h.container_cache_stats(vm, cg).map_or(0.0, |s| {
                s.mem_pages as f64 * ddc_storage::PAGE_SIZE as f64 / 1e6
            })
        });
    }

    for action in &spec.schedule {
        match action.clone() {
            ActionSpec::SetContainerPolicy {
                at_secs,
                container,
                policy,
            } => {
                let &(vm, cg) = containers
                    .get(&container)
                    .ok_or_else(|| err(format!("unknown container {container:?}")))?;
                let policy = policy.to_policy()?;
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, _at| {
                    host.set_container_policy(vm, cg, policy);
                });
            }
            ActionSpec::SetVmWeight {
                at_secs,
                vm,
                weight,
            } => {
                let id = *vm_ids
                    .get(vm)
                    .ok_or_else(|| err(format!("vm index {vm} out of range")))?;
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, _at| {
                    host.set_vm_cache_weight(id, weight);
                });
            }
            ActionSpec::SetMemCapacityMb { at_secs, mem_mb } => {
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, at| {
                    host.set_mem_cache_capacity(at, mb(mem_mb));
                });
            }
            ActionSpec::SetContainerLimitMb {
                at_secs,
                container,
                limit_mb,
            } => {
                let &(vm, cg) = containers
                    .get(&container)
                    .ok_or_else(|| err(format!("unknown container {container:?}")))?;
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, at| {
                    host.set_container_mem_limit(at, vm, cg, mb(limit_mb));
                });
            }
            ActionSpec::DropCaches { at_secs, container } => {
                let &(vm, cg) = containers
                    .get(&container)
                    .ok_or_else(|| err(format!("unknown container {container:?}")))?;
                exp.schedule(SimTime::from_secs(at_secs), move |host, _pool, at| {
                    host.drop_caches(at, vm, cg);
                });
            }
        }
    }

    let warmup = spec
        .warmup_secs
        .unwrap_or(spec.duration_secs / 2)
        .min(spec.duration_secs);
    if warmup > 0 {
        exp.mark_steady_state_at(SimTime::from_secs(warmup));
    }
    Ok(exp)
}

/// Builds and runs a scenario to completion.
///
/// # Errors
///
/// Returns a [`ScenarioError`] if the spec fails validation.
pub fn run(spec: &ScenarioSpec) -> Result<ExperimentReport, ScenarioError> {
    let mut exp = build(spec)?;
    Ok(exp.run_until(SimTime::from_secs(spec.duration_secs)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> &'static str {
        r#"{
            "name": "web-pair",
            "cache": { "mem_mb": 64, "mode": "doubledecker" },
            "duration_secs": 10,
            "vms": [ { "mem_mb": 32, "weight": 100, "containers": [
                { "name": "web", "limit_mb": 16,
                  "policy": { "store": "mem", "weight": 60 },
                  "threads": 2,
                  "workload": { "kind": "webserver", "files": 400 } },
                { "name": "proxy", "limit_mb": 16,
                  "policy": { "store": "mem", "weight": 40 },
                  "workload": { "kind": "proxycache", "files": 300 } }
            ] } ],
            "schedule": [
                { "action": "set_container_policy", "at_secs": 5,
                  "container": "web",
                  "policy": { "store": "mem", "weight": 80 } }
            ]
        }"#
    }

    #[test]
    fn parse_build_run_roundtrip() {
        let spec = ScenarioSpec::from_json(minimal_json()).unwrap();
        assert_eq!(spec.name, "web-pair");
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let report = run(&spec).unwrap();
        assert_eq!(report.end, 10.0);
        assert!(report.throughput_of("web") > 0.0);
        assert!(report.throughput_of("proxy") > 0.0);
        assert!(report.series("web (MB)").is_some());
    }

    #[test]
    fn schedule_actions_apply() {
        let spec = ScenarioSpec::from_json(minimal_json()).unwrap();
        let mut exp = build(&spec).unwrap();
        exp.run_until(SimTime::from_secs(10));
        // After the scheduled action, web's weight is 80.
        let host = exp.host();
        let vm = host.vm_ids()[0];
        let cgs = host.guest(vm).cgroup_ids();
        assert_eq!(host.guest(vm).cgroup(cgs[0]).policy().weight, 80);
    }

    #[test]
    fn every_workload_kind_builds() {
        let json = r#"{
            "name": "zoo",
            "cache": { "mem_mb": 64, "ssd_mb": 256 },
            "duration_secs": 2,
            "vms": [ { "mem_mb": 64, "weight": 100, "containers": [
                { "name": "w", "limit_mb": 8, "policy": { "store": "mem", "weight": 20 },
                  "workload": { "kind": "webserver" } },
                { "name": "p", "limit_mb": 8, "policy": { "store": "mem", "weight": 20 },
                  "workload": { "kind": "proxycache" } },
                { "name": "m", "limit_mb": 8, "policy": { "store": "mem", "weight": 20 },
                  "workload": { "kind": "mail" } },
                { "name": "v", "limit_mb": 8, "policy": { "store": "ssd", "weight": 100 },
                  "workload": { "kind": "videoserver", "videos": 8, "video_blocks": 16 } },
                { "name": "f", "limit_mb": 8, "policy": { "store": "hybrid", "weight": 20 },
                  "workload": { "kind": "fileserver" } },
                { "name": "o", "limit_mb": 8, "policy": { "store": "mem", "weight": 20 },
                  "workload": { "kind": "oltp", "data_blocks": 64 } },
                { "name": "y", "limit_mb": 8, "policy": { "store": "disabled" },
                  "workload": { "kind": "ycsb", "store": "mongodb", "dataset_blocks": 64 } }
            ] } ]
        }"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        let report = run(&spec).unwrap();
        assert_eq!(report.threads.len(), 7);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(ScenarioSpec::from_json("{").is_err());

        let bad_store =
            minimal_json().replace("\"mem\", \"weight\": 60", "\"floppy\", \"weight\": 60");
        let spec = ScenarioSpec::from_json(&bad_store).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("floppy"), "{e}");

        let bad_mode = minimal_json().replace("doubledecker", "roundrobin");
        let spec = ScenarioSpec::from_json(&bad_mode).unwrap();
        assert!(build(&spec).is_err());

        let dup = minimal_json().replace("\"proxy\"", "\"web\"");
        let spec = ScenarioSpec::from_json(&dup).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");

        let bad_ref = minimal_json().replace("\"container\": \"web\"", "\"container\": \"nope\"");
        let spec = ScenarioSpec::from_json(&bad_ref).unwrap();
        let e = build(&spec).unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
    }

    #[test]
    fn delayed_start_and_compression() {
        let json = r#"{
            "name": "late",
            "cache": { "mem_mb": 32, "compression": [500, 5] },
            "duration_secs": 6,
            "warmup_secs": 0,
            "vms": [ { "mem_mb": 32, "weight": 100, "containers": [
                { "name": "late", "limit_mb": 8,
                  "policy": { "store": "mem", "weight": 100 },
                  "start_secs": 4,
                  "workload": { "kind": "webserver", "files": 100 } }
            ] } ]
        }"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        let report = run(&spec).unwrap();
        let series = report.series("late (MB)").unwrap();
        let before = series.mean_in(1.0, 4.0).unwrap_or(0.0);
        assert_eq!(before, 0.0, "no activity before the delayed start");
        assert!(report.threads[0].ops > 0, "workload ran after its start");
    }
}
