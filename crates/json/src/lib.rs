//! Dependency-free JSON parsing and emission.
//!
//! The workspace builds in fully offline environments, so the scenario,
//! report and trace layers serialize through this small hand-rolled JSON
//! module instead of an external crate. It supports the complete JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) and preserves object key order, so emission is deterministic:
//! the same value always renders to byte-identical text — a property the
//! fault-injection acceptance tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Object members keep their insertion order (a `Vec` of pairs, not a
/// map), so `parse` → `to_string` round-trips preserve layout and
/// emission is reproducible.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered members).
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document. Trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset for malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Builds an empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object. No-op on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        if let Json::Obj(members) = self {
            members.push((key.into(), value.into()));
        }
    }

    /// The member with the given key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (key, value) = &members[i];
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null like serde_json's
        // lossy modes rather than emitting an invalid document.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip float display re-parses exactly.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl From<BTreeMap<String, Json>> for Json {
    fn from(map: BTreeMap<String, Json>) -> Json {
        Json::Obj(map.into_iter().collect())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("unterminated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{ "a": [1, 2, {"b": null}], "c": "d" }"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("d"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash \u{1f600} \u{7}";
        let mut obj = Json::object();
        obj.set("s", original);
        let text = obj.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("s").and_then(Json::as_str), Some(original));
        // Explicit surrogate-pair escape.
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"open",
            "1 2",
            "",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = Json::parse("[1, x]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for n in [
            0.0,
            1.0,
            -7.0,
            0.1,
            1e-9,
            123456789.25,
            9.007199254740991e15,
        ] {
            let text = Json::Num(n).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap(), Json::Num(n), "{text}");
        }
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
    }

    #[test]
    fn emission_is_deterministic_and_pretty_parses() {
        let mut obj = Json::object();
        obj.set("b", 1u64);
        obj.set("a", vec![Json::from(true), Json::Null]);
        let pretty = obj.to_string_pretty();
        assert_eq!(
            pretty,
            "{\n  \"b\": 1,\n  \"a\": [\n    true,\n    null\n  ]\n}"
        );
        assert_eq!(Json::parse(&pretty).unwrap(), obj);
        assert_eq!(obj.to_string_pretty(), pretty, "byte-identical re-emission");
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = Json::parse(r#"{"n": 1.5, "neg": -1}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.as_str(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
