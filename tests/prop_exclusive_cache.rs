//! Property-based tests over the full stack: arbitrary operation
//! sequences must preserve the system's core invariants.
//!
//! * **Exclusivity** — a block is never resident in the guest page cache
//!   and the hypervisor cache at once (observed via hit levels).
//! * **Coherence** — reads never return stale data (enforced by the
//!   version check inside the guest read path; these tests run it under
//!   random schedules).
//! * **Accounting** — store occupancy always equals the sum of pool
//!   occupancies and never exceeds capacity; guest charges never exceed
//!   limits.

use ddc_core::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Read { cg: u8, file: u8, block: u8 },
    Write { cg: u8, file: u8, block: u8 },
    Fsync { cg: u8, file: u8 },
    Delete { cg: u8, file: u8 },
    AnonTouch { cg: u8, page: u8 },
    SetWeight { cg: u8, weight: u8 },
    SwitchStore { cg: u8, to_ssd: bool },
    ResizeCache { pages: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u8..2, 0u8..4, 0u8..32).prop_map(|(cg, file, block)| Op::Read { cg, file, block }),
        4 => (0u8..2, 0u8..4, 0u8..32).prop_map(|(cg, file, block)| Op::Write { cg, file, block }),
        1 => (0u8..2, 0u8..4).prop_map(|(cg, file)| Op::Fsync { cg, file }),
        1 => (0u8..2, 0u8..4).prop_map(|(cg, file)| Op::Delete { cg, file }),
        2 => (0u8..2, 0u8..16).prop_map(|(cg, page)| Op::AnonTouch { cg, page }),
        1 => (0u8..2, 1u8..100).prop_map(|(cg, weight)| Op::SetWeight { cg, weight }),
        1 => (0u8..2, any::<bool>()).prop_map(|(cg, to_ssd)| Op::SwitchStore { cg, to_ssd }),
        1 => (16u16..256).prop_map(|pages| Op::ResizeCache { pages }),
    ]
}

fn build_host() -> (Host, VmId, [CgroupId; 2]) {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(64, 256)));
    let vm = host.boot_vm(2, 100); // tiny guest: 32 blocks
    let c0 = host.create_container(vm, "c0", 12, CachePolicy::mem(60));
    let c1 = host.create_container(vm, "c1", 12, CachePolicy::mem(40));
    host.anon_reserve(vm, c0, 16);
    host.anon_reserve(vm, c1, 16);
    (host, vm, [c0, c1])
}

fn check_invariants(host: &Host, vm: VmId, cgs: &[CgroupId; 2]) {
    let totals = host.cache_totals();
    let mut mem_sum = 0;
    let mut ssd_sum = 0;
    for &cg in cgs {
        let s = host.container_cache_stats(vm, cg).expect("pool exists");
        mem_sum += s.mem_pages;
        ssd_sum += s.ssd_pages;
        let m = host.container_mem_stats(vm, cg);
        assert!(
            m.charged_pages() <= m.mem_limit_pages,
            "cgroup charge {} exceeds its limit {}",
            m.charged_pages(),
            m.mem_limit_pages
        );
        assert_eq!(
            m.anon_resident_pages + m.swapped_pages,
            m.anon_allocated_pages
        );
    }
    assert_eq!(
        totals.mem_used_pages, mem_sum,
        "store/pool accounting (mem)"
    );
    assert_eq!(
        totals.ssd_used_pages, ssd_sum,
        "store/pool accounting (ssd)"
    );
    assert!(totals.mem_used_pages <= totals.mem_capacity_pages);
    assert!(totals.ssd_used_pages <= totals.ssd_capacity_pages);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences preserve accounting and never read stale data
    /// (the coherence `debug_assert` in the guest read path fires under
    /// any violation; this binary is built with debug assertions in test
    /// profile).
    #[test]
    fn random_schedules_preserve_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let (mut host, vm, cgs) = build_host();
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Read { cg, file, block } => {
                    let addr = BlockAddr::new(vm_file(vm, file as u64 + 1), block as u64);
                    now = host.read(now, vm, cgs[cg as usize], addr).finish;
                }
                Op::Write { cg, file, block } => {
                    let addr = BlockAddr::new(vm_file(vm, file as u64 + 1), block as u64);
                    now = host.write(now, vm, cgs[cg as usize], addr).finish;
                }
                Op::Fsync { cg, file } => {
                    now = host.fsync(now, vm, cgs[cg as usize], vm_file(vm, file as u64 + 1));
                }
                Op::Delete { cg, file } => {
                    host.delete_file(vm, cgs[cg as usize], vm_file(vm, file as u64 + 1));
                }
                Op::AnonTouch { cg, page } => {
                    now = host.anon_touch(now, vm, cgs[cg as usize], page as u64);
                }
                Op::SetWeight { cg, weight } => {
                    host.set_container_policy(vm, cgs[cg as usize], CachePolicy::mem(weight as u32));
                }
                Op::SwitchStore { cg, to_ssd } => {
                    let policy = if to_ssd { CachePolicy::ssd(50) } else { CachePolicy::mem(50) };
                    host.set_container_policy(vm, cgs[cg as usize], policy);
                }
                Op::ResizeCache { pages } => {
                    host.set_mem_cache_capacity(now, pages as u64);
                }
            }
            check_invariants(&host, vm, &cgs);
        }
    }

    /// Exclusivity, observed behaviourally: immediately after any read, a
    /// repeat read of the same block is a page-cache hit (the block can
    /// only be in one cache, and it just moved to the first chance).
    #[test]
    fn repeat_read_is_first_chance(
        blocks in proptest::collection::vec((0u8..4, 0u8..32), 1..60)
    ) {
        let (mut host, vm, cgs) = build_host();
        let mut now = SimTime::ZERO;
        for (file, block) in blocks {
            let addr = BlockAddr::new(vm_file(vm, file as u64 + 1), block as u64);
            let r1 = host.read(now, vm, cgs[0], addr);
            let r2 = host.read(r1.finish, vm, cgs[0], addr);
            prop_assert_eq!(r2.level, HitLevel::PageCache);
            now = r2.finish;
        }
    }

    /// Written data survives arbitrary eviction pressure: after writing a
    /// marker block and fsyncing, any amount of churn followed by a read
    /// of the marker never panics the coherence check and always succeeds.
    #[test]
    fn durability_under_churn(
        churn in proptest::collection::vec((0u8..4, 0u8..32), 0..150),
        marker_block in 0u8..32,
    ) {
        let (mut host, vm, cgs) = build_host();
        let marker = BlockAddr::new(vm_file(vm, 99), marker_block as u64);
        let mut now = SimTime::ZERO;
        now = host.write(now, vm, cgs[0], marker).finish;
        now = host.fsync(now, vm, cgs[0], vm_file(vm, 99));
        for (file, block) in churn {
            let addr = BlockAddr::new(vm_file(vm, file as u64 + 1), block as u64);
            now = host.read(now, vm, cgs[1], addr).finish;
        }
        // The coherence assertion inside read() validates the version.
        let r = host.read(now, vm, cgs[0], marker);
        prop_assert!(r.finish > now);
    }
}
