//! Randomized-schedule tests over the full stack: arbitrary operation
//! sequences must preserve the system's core invariants. (Seeded SimRng
//! schedules — the in-tree replacement for proptest, which is
//! unavailable offline; the shrunk regression cases proptest found are
//! kept as explicit tests.)
//!
//! * **Exclusivity** — a block is never resident in the guest page cache
//!   and the hypervisor cache at once (observed via hit levels).
//! * **Coherence** — reads never return stale data (enforced by the
//!   version check inside the guest read path; these tests run it under
//!   random schedules).
//! * **Accounting** — store occupancy always equals the sum of pool
//!   occupancies and never exceeds capacity; guest charges never exceed
//!   limits.

use ddc_core::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Read { cg: u8, file: u8, block: u8 },
    Write { cg: u8, file: u8, block: u8 },
    Fsync { cg: u8, file: u8 },
    Delete { cg: u8, file: u8 },
    AnonTouch { cg: u8, page: u8 },
    SetWeight { cg: u8, weight: u8 },
    SwitchStore { cg: u8, to_ssd: bool },
    ResizeCache { pages: u16 },
}

fn gen_op(r: &mut SimRng) -> Op {
    let cg = r.range_u64(0, 2) as u8;
    let file = r.range_u64(0, 4) as u8;
    let block = r.range_u64(0, 32) as u8;
    // Weighted mix mirroring the original proptest strategy.
    match r.range_u64(0, 19) {
        0..=7 => Op::Read { cg, file, block },
        8..=11 => Op::Write { cg, file, block },
        12 => Op::Fsync { cg, file },
        13 => Op::Delete { cg, file },
        14..=15 => Op::AnonTouch {
            cg,
            page: r.range_u64(0, 16) as u8,
        },
        16 => Op::SetWeight {
            cg,
            weight: r.range_u64(1, 100) as u8,
        },
        17 => Op::SwitchStore {
            cg,
            to_ssd: r.chance(0.5),
        },
        _ => Op::ResizeCache {
            pages: r.range_u64(16, 256) as u16,
        },
    }
}

fn build_host() -> (Host, VmId, [CgroupId; 2]) {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(64, 256)));
    let vm = host.boot_vm(2, 100); // tiny guest: 32 blocks
    let c0 = host.create_container(vm, "c0", 12, CachePolicy::mem(60));
    let c1 = host.create_container(vm, "c1", 12, CachePolicy::mem(40));
    host.anon_reserve(vm, c0, 16);
    host.anon_reserve(vm, c1, 16);
    (host, vm, [c0, c1])
}

fn check_invariants(host: &Host, vm: VmId, cgs: &[CgroupId; 2]) {
    let totals = host.cache_totals();
    let mut mem_sum = 0;
    let mut ssd_sum = 0;
    for &cg in cgs {
        let s = host.container_cache_stats(vm, cg).expect("pool exists");
        mem_sum += s.mem_pages;
        ssd_sum += s.ssd_pages;
        let m = host.container_mem_stats(vm, cg);
        assert!(
            m.charged_pages() <= m.mem_limit_pages,
            "cgroup charge {} exceeds its limit {}",
            m.charged_pages(),
            m.mem_limit_pages
        );
        assert_eq!(
            m.anon_resident_pages + m.swapped_pages,
            m.anon_allocated_pages
        );
    }
    assert_eq!(
        totals.mem_used_pages, mem_sum,
        "store/pool accounting (mem)"
    );
    assert_eq!(
        totals.ssd_used_pages, ssd_sum,
        "store/pool accounting (ssd)"
    );
    assert!(totals.mem_used_pages <= totals.mem_capacity_pages);
    assert!(totals.ssd_used_pages <= totals.ssd_capacity_pages);
}

/// Applies one op; returns the advanced clock.
fn apply_op(host: &mut Host, vm: VmId, cgs: &[CgroupId; 2], now: SimTime, op: &Op) -> SimTime {
    let mut now = now;
    match *op {
        Op::Read { cg, file, block } => {
            let addr = BlockAddr::new(vm_file(vm, file as u64 + 1), block as u64);
            now = host.read(now, vm, cgs[cg as usize], addr).finish;
        }
        Op::Write { cg, file, block } => {
            let addr = BlockAddr::new(vm_file(vm, file as u64 + 1), block as u64);
            now = host.write(now, vm, cgs[cg as usize], addr).finish;
        }
        Op::Fsync { cg, file } => {
            now = host.fsync(now, vm, cgs[cg as usize], vm_file(vm, file as u64 + 1));
        }
        Op::Delete { cg, file } => {
            host.delete_file(vm, cgs[cg as usize], vm_file(vm, file as u64 + 1));
        }
        Op::AnonTouch { cg, page } => {
            now = host.anon_touch(now, vm, cgs[cg as usize], page as u64);
        }
        Op::SetWeight { cg, weight } => {
            host.set_container_policy(vm, cgs[cg as usize], CachePolicy::mem(weight as u32));
        }
        Op::SwitchStore { cg, to_ssd } => {
            let policy = if to_ssd {
                CachePolicy::ssd(50)
            } else {
                CachePolicy::mem(50)
            };
            host.set_container_policy(vm, cgs[cg as usize], policy);
        }
        Op::ResizeCache { pages } => {
            host.set_mem_cache_capacity(now, pages as u64);
        }
    }
    now
}

/// Random op sequences preserve accounting and never read stale data
/// (the coherence `debug_assert` in the guest read path fires under
/// any violation; this binary is built with debug assertions in test
/// profile).
#[test]
fn random_schedules_preserve_invariants() {
    let mut rng = SimRng::new(0xE8C1);
    for case in 0..64 {
        let mut r = rng.fork(case);
        let (mut host, vm, cgs) = build_host();
        let mut now = SimTime::ZERO;
        for _ in 0..r.range_u64(1, 300) {
            let op = gen_op(&mut r);
            now = apply_op(&mut host, vm, &cgs, now, &op);
            check_invariants(&host, vm, &cgs);
        }
    }
}

/// The shrunk counterexample proptest found historically (see git
/// history of `prop_exclusive_cache.proptest-regressions`), kept as an
/// explicit regression case.
#[test]
fn regression_write_then_cross_cgroup_churn() {
    #[rustfmt::skip]
    let ops = [
        Op::Write { cg: 0, file: 0, block: 18 },
        Op::Read { cg: 1, file: 0, block: 18 },
        Op::Read { cg: 1, file: 0, block: 1 },
        Op::Read { cg: 1, file: 0, block: 2 },
        Op::Read { cg: 1, file: 0, block: 3 },
        Op::Read { cg: 1, file: 0, block: 4 },
        Op::Read { cg: 0, file: 1, block: 3 },
        Op::Read { cg: 0, file: 0, block: 6 },
        Op::AnonTouch { cg: 0, page: 0 },
        Op::AnonTouch { cg: 1, page: 0 },
        Op::Read { cg: 0, file: 1, block: 0 },
        Op::Read { cg: 0, file: 0, block: 1 },
        Op::Read { cg: 0, file: 0, block: 2 },
        Op::Write { cg: 0, file: 0, block: 4 },
        Op::Read { cg: 0, file: 3, block: 13 },
        Op::Read { cg: 0, file: 0, block: 0 },
        Op::Read { cg: 1, file: 0, block: 0 },
        Op::AnonTouch { cg: 0, page: 12 },
        Op::Write { cg: 1, file: 3, block: 9 },
        Op::Read { cg: 1, file: 2, block: 16 },
        Op::Write { cg: 0, file: 0, block: 5 },
        Op::Read { cg: 1, file: 3, block: 17 },
        Op::Read { cg: 1, file: 1, block: 16 },
        Op::Read { cg: 0, file: 1, block: 12 },
        Op::Read { cg: 1, file: 2, block: 0 },
        Op::Read { cg: 1, file: 0, block: 9 },
        Op::Read { cg: 1, file: 0, block: 18 },
    ];
    let (mut host, vm, cgs) = build_host();
    let mut now = SimTime::ZERO;
    for op in &ops {
        now = apply_op(&mut host, vm, &cgs, now, op);
        check_invariants(&host, vm, &cgs);
    }
}

/// Exclusivity, observed behaviourally: immediately after any read, a
/// repeat read of the same block is a page-cache hit (the block can
/// only be in one cache, and it just moved to the first chance).
#[test]
fn repeat_read_is_first_chance() {
    let mut rng = SimRng::new(0xE8C2);
    for case in 0..64 {
        let mut r = rng.fork(case);
        let (mut host, vm, cgs) = build_host();
        let mut now = SimTime::ZERO;
        for _ in 0..r.range_u64(1, 60) {
            let file = r.range_u64(0, 4);
            let block = r.range_u64(0, 32);
            let addr = BlockAddr::new(vm_file(vm, file + 1), block);
            let r1 = host.read(now, vm, cgs[0], addr);
            let r2 = host.read(r1.finish, vm, cgs[0], addr);
            assert_eq!(r2.level, HitLevel::PageCache);
            now = r2.finish;
        }
    }
}

/// A random fault schedule mixing every kind over the first ~3 virtual
/// seconds (where the op sequences spend their time).
fn random_fault_schedule(r: &mut SimRng) -> FaultSchedule {
    let mut s = FaultSchedule::new(r.next_u64());
    for _ in 0..r.range_u64(1, 4) {
        let from = SimTime::from_nanos(r.range_u64(0, 3_000_000_000));
        let until = if r.chance(0.8) {
            Some(from + SimDuration::from_nanos(r.range_u64(1_000_000, 1_500_000_000)))
        } else {
            None
        };
        let kind = match r.range_u64(0, 10) {
            0..=4 => FaultKind::TransientErrors {
                rate: r.next_f64().max(0.05),
            },
            5..=6 => FaultKind::LatencySpike {
                extra: SimDuration::from_micros(r.range_u64(100, 5_000)),
            },
            7..=8 => FaultKind::Brownout {
                rate: r.next_f64().max(0.05),
                extra: SimDuration::from_micros(r.range_u64(100, 5_000)),
            },
            _ => FaultKind::Death,
        };
        s.add_window(from, until, kind);
    }
    s
}

/// Random op sequences under random SSD and hypercall-channel fault
/// schedules: the stack degrades (quarantine, fail-open, breakers) but
/// accounting never leaks a page and no read is ever stale (the
/// coherence `debug_assert` in the guest read path is the oracle).
#[test]
fn random_schedules_with_faults_preserve_invariants() {
    let mut rng = SimRng::new(0xE8C4);
    for case in 0..48 {
        let mut r = rng.fork(case);
        let (mut host, vm, cgs) = build_host();
        // Give the SSD store first-class traffic alongside SwitchStore.
        host.set_container_policy(vm, cgs[1], CachePolicy::ssd(40));
        host.set_ssd_fault_schedule(Some(random_fault_schedule(&mut r)));
        host.set_ssd_fallback_mode(if r.chance(0.5) {
            FallbackMode::ToMem
        } else {
            FallbackMode::Reject
        });
        if r.chance(0.5) {
            let schedule = random_fault_schedule(&mut r);
            assert!(host.set_channel_fault_schedule(vm, Some(schedule)));
        }
        let mut now = SimTime::ZERO;
        for _ in 0..r.range_u64(1, 300) {
            let op = gen_op(&mut r);
            now = apply_op(&mut host, vm, &cgs, now, &op);
            check_invariants(&host, vm, &cgs);
        }
    }
}

/// Crash/reboot cycles under random workloads: an abrupt crash reclaims
/// every cache page the VM owned, and a reboot under the very same VM
/// and cgroup ids never observes stale pre-crash data (again policed by
/// the in-path version oracle).
#[test]
fn crash_reboot_cycles_reclaim_pages_and_never_serve_stale() {
    let mut rng = SimRng::new(0xE8C5);
    for case in 0..32 {
        let mut r = rng.fork(case);
        let (mut host, vm, mut cgs) = build_host();
        let mut now = SimTime::ZERO;
        for _round in 0..r.range_u64(1, 4) {
            for _ in 0..r.range_u64(1, 80) {
                let op = gen_op(&mut r);
                now = apply_op(&mut host, vm, &cgs, now, &op);
            }
            assert!(host.crash_vm(vm));
            let totals = host.cache_totals();
            assert_eq!(totals.mem_used_pages, 0, "crash reclaims memory pages");
            assert_eq!(totals.ssd_used_pages, 0, "crash reclaims SSD pages");
            // Reboot under the same domain id; the fresh guest hands out
            // the same cgroup (and thus pool-facing) ids again.
            assert!(host.boot_vm_with_id(vm, 2, 100));
            let c0 = host.create_container(vm, "c0", 12, CachePolicy::mem(60));
            let c1 = host.create_container(vm, "c1", 12, CachePolicy::mem(40));
            host.anon_reserve(vm, c0, 16);
            host.anon_reserve(vm, c1, 16);
            assert_eq!([c0, c1], cgs, "reboot reuses the same cgroup ids");
            cgs = [c0, c1];
            // Blocks written before the crash must never be served from
            // a pre-crash cached copy.
            for _ in 0..8 {
                let file = r.range_u64(0, 4);
                let block = r.range_u64(0, 32);
                let addr = BlockAddr::new(vm_file(vm, file + 1), block);
                now = host.read(now, vm, cgs[0], addr).finish;
            }
            check_invariants(&host, vm, &cgs);
        }
    }
}

/// Written data survives arbitrary eviction pressure: after writing a
/// marker block and fsyncing, any amount of churn followed by a read
/// of the marker never panics the coherence check and always succeeds.
#[test]
fn durability_under_churn() {
    let mut rng = SimRng::new(0xE8C3);
    for case in 0..64 {
        let mut r = rng.fork(case);
        let (mut host, vm, cgs) = build_host();
        let marker_block = r.range_u64(0, 32);
        let marker = BlockAddr::new(vm_file(vm, 99), marker_block);
        let mut now = SimTime::ZERO;
        now = host.write(now, vm, cgs[0], marker).finish;
        now = host.fsync(now, vm, cgs[0], vm_file(vm, 99));
        for _ in 0..r.range_u64(0, 150) {
            let file = r.range_u64(0, 4);
            let block = r.range_u64(0, 32);
            let addr = BlockAddr::new(vm_file(vm, file + 1), block);
            now = host.read(now, vm, cgs[1], addr).finish;
        }
        // The coherence assertion inside read() validates the version.
        let res = host.read(now, vm, cgs[0], marker);
        assert!(res.finish > now);
    }
}
