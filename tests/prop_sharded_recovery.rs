//! Every-prefix crash properties for the *sharded* plane's per-shard
//! journal segments (DESIGN.md §14).
//!
//! The serial plane's sweep (`prop_crash_recovery.rs`) cuts one journal
//! at every boundary; here each shard owns a segment and a crash can
//! cut **each segment independently** — the recovery contract must hold
//! for every combination the sweep reaches:
//!
//! * cutting any single shard's segment at *every* record boundary,
//!   and mid-record (torn), and with a flipped bit (corrupt), while the
//!   other shards keep their full images;
//! * seeded *joint* cuts of several segments at once;
//! * flush epochs from the future (a guest that outlived a journal the
//!   cache lost) — recovery must discard, never serve.
//!
//! Soundness after every recovery means: zero stale entries against the
//! guests' authoritative disk models (the cache may forget, never lie)
//! and zero findings from the cross-shard auditor — including its
//! journal-health invariant over the re-journaled checkpoint.

use ddc_core::concurrent::{audit, CrashHarness, ShardedCache, StressConfig};
use ddc_core::prelude::*;
use ddc_core::storage::Journal;

/// A tight configuration: small stores and working set keep eviction
/// hot so the segments carry every record kind, while the short drive
/// keeps the boundary sweep affordable.
fn harness(seed: u64) -> (CrashHarness, StressConfig) {
    let mut cfg = StressConfig::smoke(seed);
    cfg.cache = CacheConfig::mem_and_ssd(96, 128);
    cfg.working_set = 64;
    cfg.shards = 4;
    let h = CrashHarness::new(&cfg);
    (h, cfg)
}

/// Recover from `segments` and assert the full soundness contract.
fn check(h: &CrashHarness, cfg: &StressConfig, segments: &[Vec<u8>], what: &str) {
    let (cache, report) = ShardedCache::recover(cfg.cache, segments, &h.guest_epochs());
    assert_eq!(
        h.stale_entries_in(&cache),
        0,
        "{what}: recovery resurrected a stale version ({report:?})"
    );
    let findings = audit(&cache);
    assert!(findings.is_empty(), "{what}: auditor found {findings:?}");
}

#[test]
fn every_single_shard_prefix_recovers_sound() {
    let (mut h, cfg) = harness(0xDD61);
    h.drive(0, 18);
    // Die mid-tick: VM 1's stream stops mid-`put_many`, VMs 2-3 and the
    // tick's group commit never run.
    h.drive_killed_tick(18, 1, 4);
    let segments = h.segment_images();

    let mut cuts = 0u64;
    for shard in 0..segments.len() {
        let bounds = Journal::record_boundaries(&segments[shard]);
        for i in 0..=bounds.len() {
            let cut = if i == 0 { 0 } else { bounds[i - 1] };
            let mut segs = segments.to_vec();
            segs[shard].truncate(cut);
            check(&h, &cfg, &segs, &format!("shard {shard} cut at {cut}"));
            cuts += 1;
        }
    }
    assert!(cuts >= 100, "sweep too small to mean anything: {cuts} cuts");
}

#[test]
fn torn_and_corrupt_single_shard_tails_recover_sound() {
    let (mut h, cfg) = harness(0xDD62);
    h.drive(0, 18);
    h.drive_killed_tick(18, 2, 7);
    let segments = h.segment_images();
    let mut rng = SimRng::new(0xDD62_0001);

    for shard in 0..segments.len() {
        let bounds = Journal::record_boundaries(&segments[shard]);
        if bounds.is_empty() {
            continue;
        }
        // Torn: cut strictly inside every 3rd record.
        for i in (0..bounds.len()).step_by(3) {
            let lo = if i == 0 { 0 } else { bounds[i - 1] };
            let cut = rng.range_usize(lo + 1, bounds[i]);
            let mut segs = segments.to_vec();
            segs[shard].truncate(cut);
            check(&h, &cfg, &segs, &format!("shard {shard} torn at {cut}"));
        }
        // Corrupt: flip one bit at a stride of seeded positions.
        for k in 0..8 {
            let pos = rng.range_usize(0, segments[shard].len());
            let mut segs = segments.to_vec();
            segs[shard][pos] ^= 1 << (k % 8);
            check(&h, &cfg, &segs, &format!("shard {shard} bit-flip at {pos}"));
        }
    }
}

#[test]
fn independent_joint_cuts_across_shards_recover_sound() {
    let (mut h, cfg) = harness(0xDD63);
    h.drive(0, 18);
    h.drive_killed_tick(18, 0, 9);
    let segments = h.segment_images();
    let mut rng = SimRng::new(0xDD63_0001);

    for round in 0..120 {
        let mut segs = segments.to_vec();
        for seg in &mut segs {
            // Each shard independently: keep whole, cut at a boundary,
            // or tear mid-record.
            let bounds = Journal::record_boundaries(seg);
            if bounds.is_empty() {
                continue;
            }
            match rng.range_u64(0, 3) {
                0 => {}
                1 => seg.truncate(bounds[rng.range_usize(0, bounds.len())]),
                _ => {
                    let i = rng.range_usize(0, bounds.len());
                    let lo = if i == 0 { 0 } else { bounds[i - 1] };
                    seg.truncate(rng.range_usize(lo + 1, bounds[i]));
                }
            }
        }
        check(&h, &cfg, &segs, &format!("joint cut round {round}"));
    }
}

#[test]
fn future_epochs_discard_rather_than_serve() {
    let (mut h, cfg) = harness(0xDD64);
    h.drive(0, 15);
    let segments = h.segment_images();
    // A guest that outlived a journal the cache lost: its epochs point
    // past everything any segment holds. Everything suspect must go.
    let inflated: Vec<(VmId, u64)> = h
        .guest_epochs()
        .into_iter()
        .map(|(vm, e)| (vm, e + 1_000_000))
        .collect();
    let (cache, report) = ShardedCache::recover(cfg.cache, &segments, &inflated);
    assert_eq!(
        report.recovered_entries, 0,
        "future epochs must empty the cache (forget, never lie)"
    );
    assert_eq!(h.stale_entries_in(&cache), 0);
    assert!(audit(&cache).is_empty(), "{:?}", audit(&cache));
}
