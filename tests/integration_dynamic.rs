//! Integration tests for dynamic reconfiguration: weight changes, store
//! switches, VM/container lifecycle and cache resizing at runtime —
//! miniatures of the paper's Figs. 12 and 13 with tight assertions.

use ddc_core::prelude::*;

fn web_cfg(files: usize) -> WebConfig {
    WebConfig {
        files,
        mean_file_blocks: 2,
        zipf_theta: 0.0,
        think_time: SimDuration::from_micros(100),
        ..WebConfig::default()
    }
}

/// Changing container weights mid-run redistributes the cache.
#[test]
fn weight_change_redistributes() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(512)));
    let vm = host.boot_vm(16, 100);
    let c1 = host.create_container(vm, "c1", 64, CachePolicy::mem(50));
    let c2 = host.create_container(vm, "c2", 64, CachePolicy::mem(50));
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    exp.add_thread(Box::new(Webserver::new("c1/t0", vm, c1, web_cfg(600), 1)));
    exp.add_thread(Box::new(Webserver::new("c2/t0", vm, c2, web_cfg(600), 2)));
    exp.add_probe("c1", move |h| {
        h.container_cache_stats(vm, c1).unwrap().mem_pages as f64
    });
    exp.add_probe("c2", move |h| {
        h.container_cache_stats(vm, c2).unwrap().mem_pages as f64
    });
    // At t=20s flip the weights to 80/20 (SET_CG_WEIGHT through the guest).
    exp.schedule(SimTime::from_secs(20), move |host, _pool, _at| {
        host.set_container_policy(vm, c1, CachePolicy::mem(80));
        host.set_container_policy(vm, c2, CachePolicy::mem(20));
    });
    exp.run_until(SimTime::from_secs(40));
    let c1_before = exp
        .series("c1")
        .unwrap()
        .mean_in(SimTime::from_secs(15), SimTime::from_secs(20))
        .unwrap();
    let c1_after = exp
        .series("c1")
        .unwrap()
        .mean_in(SimTime::from_secs(35), SimTime::from_secs(40))
        .unwrap();
    let c2_after = exp
        .series("c2")
        .unwrap()
        .mean_in(SimTime::from_secs(35), SimTime::from_secs(40))
        .unwrap();
    assert!(
        c1_after > c1_before * 1.3,
        "raising c1's weight must grow its share ({c1_before:.0} -> {c1_after:.0})"
    );
    let share1 = c1_after / (c1_after + c2_after);
    assert!(
        (share1 - 0.8).abs() < 0.12,
        "post-change split should approach 80/20, got {share1:.2}"
    );
}

/// Switching a container from the memory to the SSD store vacates its
/// memory share immediately and keeps its data readable.
#[test]
fn store_switch_vacates_memory() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(512, 4096)));
    let vm = host.boot_vm(16, 100);
    let cg = host.create_container(vm, "c", 64, CachePolicy::mem(100));
    let mut now = SimTime::ZERO;
    for b in 0..256 {
        now = host
            .read(now, vm, cg, BlockAddr::new(vm_file(vm, 1), b))
            .finish;
    }
    let before = host.container_cache_stats(vm, cg).unwrap();
    assert!(before.mem_pages > 0);
    host.set_container_policy(vm, cg, CachePolicy::ssd(100));
    let after = host.container_cache_stats(vm, cg).unwrap();
    assert_eq!(after.mem_pages, 0, "memory share released");
    assert_eq!(after.ssd_pages, before.mem_pages, "objects moved to SSD");
    // Data still served from the (SSD) second chance.
    let r = host.read(now, vm, cg, BlockAddr::new(vm_file(vm, 1), 0));
    assert_eq!(r.level, HitLevel::Cleancache);
}

/// Booting a VM mid-run and re-weighting shifts cache between VMs; a
/// late VM with an SSD-only container leaves the memory split untouched
/// (Fig. 13's key observation).
#[test]
fn vm_lifecycle_and_ssd_only_vm() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(512, 4096)));
    let vm1 = host.boot_vm(16, 100);
    let c1 = host.create_container(vm1, "v1", 64, CachePolicy::mem(100));
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    exp.add_thread(Box::new(Webserver::new("v1/t0", vm1, c1, web_cfg(600), 3)));
    exp.add_probe("vm1", move |h| h.vm_cache_usage(vm1).mem_pages as f64);
    // t=15s: VM2 boots with weight 40 (vm1 -> 60), runs the same load.
    exp.schedule(SimTime::from_secs(15), move |host, pool, at| {
        let vm2 = host.boot_vm(16, 40);
        host.set_vm_cache_weight(vm1, 60);
        let c2 = host.create_container(vm2, "v2", 64, CachePolicy::mem(100));
        pool.spawn_at(
            at,
            Box::new(Webserver::new("v2/t0", vm2, c2, web_cfg(600), 4)),
        );
    });
    // t=30s: an SSD-only VM3 boots; memory weights untouched.
    exp.schedule(SimTime::from_secs(30), move |host, pool, at| {
        let vm3 = host.boot_vm(16, 100);
        let c3 = host.create_container(vm3, "v3", 64, CachePolicy::ssd(100));
        pool.spawn_at(
            at,
            Box::new(Webserver::new("v3/t0", vm3, c3, web_cfg(600), 5)),
        );
    });
    exp.run_until(SimTime::from_secs(45));
    let host = exp.host();
    let ids = host.vm_ids();
    assert_eq!(ids.len(), 3);
    let u1 = host.vm_cache_usage(ids[0]).mem_pages;
    let u2 = host.vm_cache_usage(ids[1]).mem_pages;
    let u3 = host.vm_cache_usage(ids[2]);
    let share1 = u1 as f64 / (u1 + u2) as f64;
    assert!(
        (share1 - 0.6).abs() < 0.15,
        "memory split should approach 60/40, got {share1:.2}"
    );
    assert_eq!(u3.mem_pages, 0, "SSD-only VM holds no memory store");
    assert!(u3.ssd_pages > 0, "but does use the SSD store");
}

/// Growing the memory store mid-run is absorbed without evictions;
/// shrinking it evicts the excess promptly.
#[test]
fn cache_resize_in_both_directions() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(256)));
    let vm = host.boot_vm(16, 100);
    let cg = host.create_container(vm, "c", 64, CachePolicy::mem(100));
    let mut now = SimTime::ZERO;
    for b in 0..512 {
        now = host
            .read(now, vm, cg, BlockAddr::new(vm_file(vm, 1), b))
            .finish;
    }
    assert_eq!(host.cache_totals().mem_used_pages, 256);
    host.set_mem_cache_capacity(now, 512);
    for b in 512..800 {
        now = host
            .read(now, vm, cg, BlockAddr::new(vm_file(vm, 1), b))
            .finish;
    }
    assert!(host.cache_totals().mem_used_pages > 256, "growth absorbed");
    host.set_mem_cache_capacity(now, 128);
    assert!(
        host.cache_totals().mem_used_pages <= 128,
        "shrink evicts the excess"
    );
}

/// Container churn: containers created and destroyed in a loop never leak
/// cache pages or guest memory.
#[test]
fn container_churn_does_not_leak() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(512)));
    let vm = host.boot_vm(16, 100);
    let mut now = SimTime::ZERO;
    for round in 0..10 {
        let cg = host.create_container(vm, "tmp", 32, CachePolicy::mem(100));
        for b in 0..64 {
            now = host
                .read(now, vm, cg, BlockAddr::new(vm_file(vm, 100 + round), b))
                .finish;
        }
        host.destroy_container(vm, cg);
        assert_eq!(
            host.cache_totals().mem_used_pages,
            0,
            "round {round}: destroy must free the pool"
        );
    }
    assert_eq!(
        host.guest(vm).used_pages(),
        host.guest(vm).config().kernel_reserved_pages
    );
}

/// Raising and lowering a container's cgroup limit at runtime moves its
/// page-cache/hypervisor-cache boundary.
#[test]
fn cgroup_limit_resize_shifts_the_boundary() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(32, 100);
    let cg = host.create_container(vm, "c", 256, CachePolicy::mem(100));
    let mut now = SimTime::ZERO;
    for b in 0..256 {
        now = host
            .read(now, vm, cg, BlockAddr::new(vm_file(vm, 1), b))
            .finish;
    }
    assert_eq!(host.container_mem_stats(vm, cg).page_cache_pages, 256);
    // Squeeze the cgroup: pages spill to the hypervisor cache.
    host.set_container_mem_limit(now, vm, cg, 64);
    let mem = host.container_mem_stats(vm, cg);
    let hc = host.container_cache_stats(vm, cg).unwrap();
    assert!(mem.page_cache_pages <= 64);
    assert!(hc.mem_pages >= 180, "squeezed pages moved to the cache");
    // And everything is still readable without disk IO.
    let r = host.read(now, vm, cg, BlockAddr::new(vm_file(vm, 1), 0));
    assert_ne!(r.level, HitLevel::Disk);
}
