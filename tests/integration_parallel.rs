//! Parallel-vs-serial determinism: fanning experiment cells across
//! worker threads must not change a single byte of any report.
//!
//! Each cell is a self-contained simulation, so correctness rests on two
//! properties the parallel engine guarantees: no shared mutable state
//! between cells, and results re-ordered by input index at the join.
//! These tests run the same cell batches serially (`threads = 1`) and in
//! parallel (`threads = 4`, more workers than this machine may have
//! cores — oversubscription is the harder case) and compare full report
//! JSON bytes.

use ddc_core::parallel::run_cells_with;
use ddc_core::scenario::{self, ScenarioSpec};

fn spec(name: &str, mode: &str, duration_secs: u64, threads: u64) -> String {
    format!(
        r#"{{
            "name": "{name}",
            "duration_secs": {duration_secs},
            "cache": {{ "mem_mb": 24, "ssd_mb": 32, "mode": "{mode}" }},
            "vms": [
                {{ "mem_mb": 24, "weight": 100, "containers": [
                    {{ "name": "{name}-web", "limit_mb": 12, "policy": {{ "store": "mem", "weight": 100 }},
                       "workload": {{ "kind": "webserver", "files": 40 }}, "threads": {threads} }},
                    {{ "name": "{name}-db", "limit_mb": 12, "policy": {{ "store": "ssd", "weight": 50 }},
                       "workload": {{ "kind": "oltp", "data_blocks": 256 }} }}
                ] }},
                {{ "mem_mb": 16, "weight": 50, "containers": [
                    {{ "name": "{name}-mail", "limit_mb": 8, "policy": {{ "store": "hybrid", "weight": 100 }},
                       "workload": {{ "kind": "mail", "files": 30 }} }}
                ] }}
            ]
        }}"#
    )
}

fn sweep() -> Vec<ScenarioSpec> {
    [
        spec("a", "doubledecker", 20, 2),
        spec("b", "global", 15, 1),
        spec("c", "strict", 10, 1),
        spec("d", "doubledecker", 5, 3),
        spec("e", "global", 25, 2),
        spec("f", "strict", 15, 2),
    ]
    .iter()
    .map(|s| ScenarioSpec::from_json(s).expect("valid spec"))
    .collect()
}

fn run_reports(threads: usize) -> Vec<String> {
    run_cells_with(threads, sweep(), |spec| {
        scenario::run(&spec).expect("scenario runs").to_json()
    })
}

#[test]
fn parallel_scenario_sweep_is_byte_identical_to_serial() {
    let serial = run_reports(1);
    let parallel = run_reports(4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "report {i} differs between serial and parallel runs");
    }
}

#[test]
fn parallel_runs_are_stable_across_repeats() {
    // Two parallel executions race differently but must still agree:
    // determinism lives inside each cell, not in scheduling order.
    assert_eq!(run_reports(4), run_reports(4));
}

#[test]
fn results_keep_input_order_under_parallelism() {
    // Cell costs are deliberately uneven (5..25 virtual seconds), so a
    // naive completion-order collection would reorder them.
    let specs = sweep();
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let reports = run_cells_with(4, specs, |spec| {
        let report = scenario::run(&spec).expect("scenario runs");
        (spec.name.clone(), report)
    });
    let got: Vec<String> = reports.iter().map(|(n, _)| n.clone()).collect();
    assert_eq!(got, names);
}
