//! Integration tests for the partitioning policies: DoubleDecker's
//! two-level weighted entitlements versus the Global (tmem-style) and
//! Strict (Morai-style) comparators, exercised through real workloads.

use ddc_core::prelude::*;

/// Builds a host with two webserver containers of different weights in
/// one VM and runs both against a contended cache.
fn run_two_containers(
    mode: PartitionMode,
    w1: u32,
    w2: u32,
    secs: u64,
) -> (ExperimentReportPair, u64) {
    let cache_pages = 512;
    let config = CacheConfig::mem_only(cache_pages).with_mode(mode);
    let mut host = Host::new(HostConfig::new(config));
    let vm = host.boot_vm(16, 100); // 16 MiB guest = 256 blocks
    let c1 = host.create_container(vm, "c1", 64, CachePolicy::mem(w1));
    let c2 = host.create_container(vm, "c2", 64, CachePolicy::mem(w2));
    let cfg = WebConfig {
        files: 600, // ~900 blocks each: heavy overflow
        mean_file_blocks: 2,
        zipf_theta: 0.0,
        think_time: SimDuration::from_micros(100),
        ..WebConfig::default()
    };
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    exp.add_thread(Box::new(Webserver::new("c1/t0", vm, c1, cfg, 1)));
    exp.add_thread(Box::new(Webserver::new("c2/t0", vm, c2, cfg, 2)));
    exp.run_until(SimTime::from_secs(secs));
    let s1 = exp.host().container_cache_stats(vm, c1).unwrap();
    let s2 = exp.host().container_cache_stats(vm, c2).unwrap();
    (
        ExperimentReportPair {
            c1_pages: s1.mem_pages,
            c2_pages: s2.mem_pages,
            c1_evictions: s1.evictions,
            c2_evictions: s2.evictions,
        },
        cache_pages,
    )
}

struct ExperimentReportPair {
    c1_pages: u64,
    c2_pages: u64,
    c1_evictions: u64,
    c2_evictions: u64,
}

#[test]
fn dd_mode_shares_follow_weights() {
    let (r, cache) = run_two_containers(PartitionMode::DoubleDecker, 75, 25, 30);
    let total = r.c1_pages + r.c2_pages;
    assert!(
        total >= cache * 9 / 10,
        "cache should be full ({total}/{cache})"
    );
    let share1 = r.c1_pages as f64 / total as f64;
    assert!(
        (share1 - 0.75).abs() < 0.12,
        "weight-75 container should hold ~75% of the cache, got {share1:.2}"
    );
}

#[test]
fn equal_weights_give_equal_shares() {
    let (r, _) = run_two_containers(PartitionMode::DoubleDecker, 50, 50, 30);
    let ratio = r.c1_pages as f64 / r.c2_pages.max(1) as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "equal weights must give near-equal shares, ratio {ratio:.2}"
    );
}

#[test]
fn global_mode_ignores_weights() {
    // Same 75/25 weights, global mode: shares are set by access rates
    // (identical here), not by weights.
    let (r, _) = run_two_containers(PartitionMode::Global, 75, 25, 30);
    let ratio = r.c1_pages as f64 / r.c2_pages.max(1) as f64;
    assert!(
        (0.6..1.6).contains(&ratio),
        "global mode must not enforce the 3:1 weights, ratio {ratio:.2}"
    );
}

#[test]
fn strict_mode_caps_both_at_partitions() {
    let (r, cache) = run_two_containers(PartitionMode::Strict, 50, 50, 30);
    assert!(
        r.c1_pages <= cache / 2 && r.c2_pages <= cache / 2,
        "strict partitions are hard caps ({} / {})",
        r.c1_pages,
        r.c2_pages
    );
    // Strict pools self-evict at their caps.
    assert!(r.c1_evictions > 0 && r.c2_evictions > 0);
}

#[test]
fn vm_weights_partition_across_vms() {
    let config = CacheConfig::mem_only(600);
    let mut host = Host::new(HostConfig::new(config));
    let vm1 = host.boot_vm(16, 67);
    let vm2 = host.boot_vm(16, 33);
    let c1 = host.create_container(vm1, "a", 64, CachePolicy::mem(100));
    let c2 = host.create_container(vm2, "b", 64, CachePolicy::mem(100));
    let cfg = WebConfig {
        files: 700,
        mean_file_blocks: 2,
        zipf_theta: 0.0,
        think_time: SimDuration::from_micros(100),
        ..WebConfig::default()
    };
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    exp.add_thread(Box::new(Webserver::new("a/t0", vm1, c1, cfg, 3)));
    exp.add_thread(Box::new(Webserver::new("b/t0", vm2, c2, cfg, 4)));
    exp.run_until(SimTime::from_secs(30));
    let u1 = exp.host().vm_cache_usage(vm1).mem_pages;
    let u2 = exp.host().vm_cache_usage(vm2).mem_pages;
    let share1 = u1 as f64 / (u1 + u2) as f64;
    assert!(
        (share1 - 0.67).abs() < 0.12,
        "VM weight 67 should yield ~2/3 of the store, got {share1:.2}"
    );
}

#[test]
fn underused_entitlement_is_lent_and_reclaimed() {
    // A light container (small fileset) donates slack to a heavy one;
    // the heavy container is the only eviction victim when pressure hits.
    let config = CacheConfig::mem_only(512);
    let mut host = Host::new(HostConfig::new(config));
    let vm = host.boot_vm(16, 100);
    let light = host.create_container(vm, "light", 64, CachePolicy::mem(50));
    let heavy = host.create_container(vm, "heavy", 64, CachePolicy::mem(50));
    let light_cfg = WebConfig {
        files: 100, // fits in its cgroup + small overflow
        mean_file_blocks: 2,
        zipf_theta: 0.0,
        think_time: SimDuration::from_micros(200),
        ..WebConfig::default()
    };
    let heavy_cfg = WebConfig {
        files: 800,
        mean_file_blocks: 2,
        zipf_theta: 0.0,
        think_time: SimDuration::from_micros(100),
        ..WebConfig::default()
    };
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    exp.add_thread(Box::new(Webserver::new(
        "light/t0", vm, light, light_cfg, 5,
    )));
    exp.add_thread(Box::new(Webserver::new(
        "heavy/t0", vm, heavy, heavy_cfg, 6,
    )));
    exp.run_until(SimTime::from_secs(30));
    let sl = exp.host().container_cache_stats(vm, light).unwrap();
    let sh = exp.host().container_cache_stats(vm, heavy).unwrap();
    assert!(
        sh.mem_pages > 256,
        "heavy container must borrow beyond its 50% share, got {}",
        sh.mem_pages
    );
    assert_eq!(sl.evictions, 0, "the light container is never victimized");
}

#[test]
fn disabled_container_stays_out_of_the_cache() {
    let config = CacheConfig::mem_only(512);
    let mut host = Host::new(HostConfig::new(config));
    let vm = host.boot_vm(16, 100);
    let on = host.create_container(vm, "on", 64, CachePolicy::mem(100));
    let off = host.create_container(vm, "off", 64, CachePolicy::disabled());
    let cfg = WebConfig {
        files: 400,
        mean_file_blocks: 2,
        zipf_theta: 0.0,
        think_time: SimDuration::from_micros(100),
        ..WebConfig::default()
    };
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    exp.add_thread(Box::new(Webserver::new("on/t0", vm, on, cfg, 7)));
    exp.add_thread(Box::new(Webserver::new("off/t0", vm, off, cfg, 8)));
    exp.run_until(SimTime::from_secs(20));
    let s_on = exp.host().container_cache_stats(vm, on).unwrap();
    let s_off = exp.host().container_cache_stats(vm, off).unwrap();
    assert!(s_on.mem_pages > 0);
    assert_eq!(s_off.mem_pages, 0);
    assert_eq!(s_off.puts, 0, "puts from a disabled container are rejected");
}
