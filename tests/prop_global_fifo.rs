//! Model-based property test for the Global-mode FIFO with tombstone
//! (lazy-deletion) compaction.
//!
//! The reference model keeps an **eagerly scrubbed** FIFO: every
//! removal (get hit, overwrite, flush, pool destruction) deletes the
//! queue entry immediately, so its front is always live and its
//! eviction order is the ground truth. The real cache instead leaves
//! tombstones behind and compacts lazily. The property: under random
//! insert / get / flush / destroy / eviction-pressure sequences, the two
//! are observably identical — same put/get outcomes, same occupancy
//! after every operation, and the same survivor set at the end (which
//! pins the eviction *order*, since which objects survive depends on
//! exactly which were evicted first).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use ddc_core::cleancache::SecondChanceCache;
use ddc_core::prelude::*;

type Key = (u32, u32, u64, u64); // (vm, pool, file, block)

/// Eager-retain reference model of a Global-mode exclusive cache.
struct EagerModel {
    capacity: u64,
    live: BTreeMap<Key, ()>,
    fifo: VecDeque<Key>,
    evictions: u64,
}

impl EagerModel {
    fn new(capacity: u64) -> EagerModel {
        EagerModel {
            capacity,
            live: BTreeMap::new(),
            fifo: VecDeque::new(),
            evictions: 0,
        }
    }

    fn remove(&mut self, key: Key) -> bool {
        if self.live.remove(&key).is_some() {
            // Eager scrub: the queue never holds a dead entry.
            self.fifo.retain(|k| *k != key);
            true
        } else {
            false
        }
    }

    fn evict_batch(&mut self) -> u64 {
        let mut freed = 0;
        while freed < EVICTION_BATCH_PAGES {
            let Some(key) = self.fifo.pop_front() else {
                break;
            };
            self.live.remove(&key).expect("eager fifo is always live");
            self.evictions += 1;
            freed += 1;
        }
        freed
    }

    /// Mirrors the real put path: overwrite-remove, evict on full,
    /// reject when nothing can be freed.
    fn put(&mut self, key: Key) -> bool {
        self.remove(key);
        if self.live.len() as u64 >= self.capacity && self.evict_batch() == 0 {
            return false;
        }
        self.live.insert(key, ());
        self.fifo.push_back(key);
        true
    }

    fn destroy_pool(&mut self, vm: u32, pool: u32) -> u64 {
        let keys: Vec<Key> = self
            .live
            .keys()
            .filter(|(v, p, _, _)| *v == vm && *p == pool)
            .copied()
            .collect();
        let dropped = keys.len() as u64;
        for k in keys {
            self.remove(k);
        }
        dropped
    }
}

struct Harness {
    cache: DoubleDeckerCache,
    model: EagerModel,
    /// Current pool id per (vm slot, pool slot); destroyed pools are
    /// re-created with fresh ids.
    pools: Vec<Vec<PoolId>>,
}

const VMS: u32 = 2;
const POOLS_PER_VM: u32 = 2;
const CAPACITY: u64 = 2 * EVICTION_BATCH_PAGES;

impl Harness {
    fn new() -> Harness {
        let mut cache = DoubleDeckerCache::new(CacheConfig {
            mem_capacity_pages: CAPACITY,
            ssd_capacity_pages: 0,
            mode: PartitionMode::Global,
            admission: AdmissionConfig::off(),
        });
        let pools = (0..VMS)
            .map(|v| {
                cache.add_vm(VmId(v), 100);
                (0..POOLS_PER_VM)
                    .map(|_| cache.create_pool(VmId(v), CachePolicy::mem(100)))
                    .collect()
            })
            .collect();
        Harness {
            cache,
            model: EagerModel::new(CAPACITY),
            pools,
        }
    }

    fn key(&self, v: u32, p: u32, file: u64, block: u64) -> (Key, VmId, PoolId, BlockAddr) {
        let pool = self.pools[v as usize][p as usize];
        (
            (v, pool.0, file, block),
            VmId(v),
            pool,
            BlockAddr::new(FileId(file), block),
        )
    }

    fn step(&mut self, r: &mut SimRng) {
        let v = r.range_u64(0, VMS as u64) as u32;
        let p = r.range_u64(0, POOLS_PER_VM as u64) as u32;
        let file = r.range_u64(0, 4);
        let block = r.range_u64(0, 700);
        let (key, vm, pool, addr) = self.key(v, p, file, block);
        match r.range_u64(0, 10) {
            // Put-heavy mix: the eviction path only fires under pressure.
            0..=5 => {
                let stored = self
                    .cache
                    .put(SimTime::from_secs(1), vm, pool, addr, PageVersion(1))
                    .is_stored();
                assert_eq!(stored, self.model.put(key), "put outcome diverged");
            }
            6..=7 => {
                let hit = self
                    .cache
                    .get(SimTime::from_secs(1), vm, pool, addr)
                    .is_hit();
                assert_eq!(hit, self.model.remove(key), "get outcome diverged");
            }
            8 => {
                self.cache.flush(vm, pool, addr);
                self.model.remove(key);
            }
            _ => {
                // Destroy one pool (its queue entries become tombstones
                // in the real cache) and re-create it under a fresh id.
                self.cache.destroy_pool(vm, pool);
                self.model.destroy_pool(v, pool.0);
                self.pools[v as usize][p as usize] =
                    self.cache.create_pool(vm, CachePolicy::mem(100));
            }
        }
        assert_eq!(
            self.cache.totals().mem_used_pages,
            self.model.live.len() as u64,
            "occupancy diverged"
        );
    }

    /// Drains both caches in a deterministic key order, comparing
    /// hit/miss per key: any eviction-order difference shows up as a
    /// survivor-set mismatch here.
    fn check_survivors(mut self) {
        assert_eq!(self.cache.totals().evictions, self.model.evictions);
        for v in 0..VMS {
            for p in 0..POOLS_PER_VM {
                for file in 0..4 {
                    for block in 0..700 {
                        let (key, vm, pool, addr) = self.key(v, p, file, block);
                        let hit = self
                            .cache
                            .get(SimTime::from_secs(1), vm, pool, addr)
                            .is_hit();
                        assert_eq!(
                            hit,
                            self.model.remove(key),
                            "survivor set diverged at {key:?}"
                        );
                    }
                }
            }
        }
        assert_eq!(self.cache.totals().mem_used_pages, 0);
        assert!(self.model.live.is_empty());
    }
}

fn run_sequence(seed: u64, steps: u64) {
    let mut h = Harness::new();
    let mut r = SimRng::new(seed);
    for _ in 0..steps {
        h.step(&mut r);
    }
    h.check_survivors();
}

#[test]
fn tombstone_fifo_matches_eager_retain_model() {
    for seed in [1, 7, 42, 1234, 0xDD01] {
        run_sequence(seed, 6_000);
    }
}

#[test]
fn long_churn_survives_many_compactions() {
    // One long run with a put-heavy prefix guarantees multiple
    // tombstone-driven compaction passes over the global queue.
    run_sequence(99, 25_000);
}
