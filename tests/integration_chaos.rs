//! End-to-end crash→recover→continue through the `Host` API: the
//! hypervisor cache dies at an arbitrary journal prefix, warm-restarts
//! from the surviving bytes, and the guests keep running against the
//! recovered cache — with zero stale second-chance hits, a clean
//! auditor, and working cache service afterwards.

use ddc_core::hypercache::audit;
use ddc_core::prelude::*;
use ddc_core::storage::Journal;

fn a(vm: VmId, inode: u64, block: u64) -> BlockAddr {
    BlockAddr::new(vm_file(vm, inode), block)
}

fn journaled_host(fallback: FallbackMode) -> (Host, VmId, CgroupId, VmId, CgroupId) {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(96, 96)));
    host.enable_cache_journal();
    host.set_ssd_fallback_mode(fallback);
    let vm1 = host.boot_vm(1, 100);
    let vm2 = host.boot_vm(1, 60);
    let cg1 = host.create_container(vm1, "a", 6, CachePolicy::mem(100));
    let cg2 = host.create_container(vm2, "b", 6, CachePolicy::ssd(100));
    (host, vm1, cg1, vm2, cg2)
}

fn churn(host: &mut Host, now: SimTime, vm: VmId, cg: CgroupId, rounds: u64) -> SimTime {
    let mut now = now;
    for r in 0..rounds {
        for b in 0..24 {
            now = host.write(now, vm, cg, a(vm, 1 + r % 2, b)).finish;
        }
        now = host.fsync(now, vm, cg, vm_file(vm, 1 + r % 2));
        for b in 0..24 {
            now = host.read(now, vm, cg, a(vm, 1 + r % 2, b)).finish;
        }
    }
    now
}

/// Crash at a mid-journal cut, recover, and keep serving: the guests
/// survive with their epochs, every recovered entry matches the disk,
/// and the cache warms back up for both the mem and SSD containers.
#[test]
fn crash_recover_continue_serves_fresh_data() {
    for fallback in [FallbackMode::ToMem, FallbackMode::Reject] {
        let (mut host, vm1, cg1, vm2, cg2) = journaled_host(fallback);
        let mut now = SimTime::ZERO;
        now = churn(&mut host, now, vm1, cg1, 4);
        now = churn(&mut host, now, vm2, cg2, 4);

        let image = host.cache_journal_image().expect("journaling on");
        let bounds = Journal::record_boundaries(&image);
        let cut = bounds[bounds.len() * 3 / 4];
        let report = host.crash_and_recover(&image[..cut]);
        assert!(!report.corrupt, "a clean prefix replays cleanly");
        assert!(
            report.new_epochs.len() >= 2,
            "checkpoint re-arms every guest's flush epoch"
        );
        let findings = audit(host.cache());
        assert!(
            findings.is_empty(),
            "post-recovery audit ({fallback:?}): {findings:?}"
        );

        // Every surviving entry matches the guests' on-disk truth.
        for (vm, _pool, addr, version) in host.cache().entries() {
            assert_eq!(version, host.guest(vm).disk_version(addr));
        }

        // Life goes on: more churn, still zero stale oracle trips, and
        // the cache actually serves hits again.
        now = churn(&mut host, now, vm1, cg1, 3);
        now = churn(&mut host, now, vm2, cg2, 3);
        let mut hits = 0;
        for b in 0..24 {
            let r = host.read(now, vm1, cg1, a(vm1, 1, b));
            now = r.finish;
            if r.level != HitLevel::Disk {
                hits += 1;
            }
        }
        assert!(hits > 0, "recovered cache serves second-chance hits again");
        for vm in host.vm_ids() {
            assert_eq!(
                host.guest(vm).counters().stale_cleancache_hits,
                0,
                "stale-read oracle stayed clean ({fallback:?})"
            );
        }
        let findings = audit(host.cache());
        assert!(findings.is_empty(), "post-continuation audit: {findings:?}");
    }
}

/// Back-to-back crashes: the post-recovery checkpoint journal is itself
/// a valid recovery source, so a second crash right after the first
/// (before any new durable records) still restarts cleanly.
#[test]
fn double_crash_recovers_from_checkpoint() {
    let (mut host, vm1, cg1, vm2, cg2) = journaled_host(FallbackMode::ToMem);
    let mut now = SimTime::ZERO;
    now = churn(&mut host, now, vm1, cg1, 3);
    now = churn(&mut host, now, vm2, cg2, 3);

    let image = host.cache_journal_image().unwrap();
    host.crash_and_recover(&image);
    let entries_after_first = host.cache().entries();

    // Second crash from the checkpoint the first recovery wrote.
    let checkpoint = host.cache_journal_image().unwrap();
    assert!(
        checkpoint.len() < image.len(),
        "checkpoint compacts the raw history"
    );
    let report = host.crash_and_recover(&checkpoint);
    assert_eq!(report.discarded_stale, 0, "checkpoint state is all fresh");
    assert_eq!(
        host.cache().entries(),
        entries_after_first,
        "second recovery reproduces the first exactly"
    );
    assert!(audit(host.cache()).is_empty());

    now = churn(&mut host, now, vm1, cg1, 2);
    let _ = now;
    for vm in host.vm_ids() {
        assert_eq!(host.guest(vm).counters().stale_cleancache_hits, 0);
    }
}

/// A bit-flipped journal (silent media corruption) truncates replay at
/// the damaged record; whatever survives is still sound.
#[test]
fn corrupt_journal_recovers_to_safe_prefix() {
    let (mut host, vm1, cg1, _vm2, _cg2) = journaled_host(FallbackMode::ToMem);
    let mut now = SimTime::ZERO;
    now = churn(&mut host, now, vm1, cg1, 4);

    let mut image = host.cache_journal_image().unwrap();
    let pos = image.len() / 2;
    image[pos] ^= 0x40;
    let report = host.crash_and_recover(&image);
    assert!(
        report.corrupt || report.torn_tail,
        "damage detected, replay stopped early"
    );
    for (vm, _pool, addr, version) in host.cache().entries() {
        assert_eq!(version, host.guest(vm).disk_version(addr));
    }
    assert!(audit(host.cache()).is_empty());

    now = churn(&mut host, now, vm1, cg1, 2);
    let _ = now;
    assert_eq!(host.guest(vm1).counters().stale_cleancache_hits, 0);
}
