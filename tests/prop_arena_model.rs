//! Property tests for the slab-arena pool index (DESIGN.md §13).
//!
//! The arena (`Vec<Option<...>>` + free-list + one hash probe) must be
//! observably identical to the naive model it replaced — a
//! `BTreeMap<BlockAddr, Slot>` — under arbitrary put/flush/evict/drain
//! sequences, and its free-list must never hand a live `SlotId` to a
//! second object. A third test churns a full `DoubleDeckerCache` in
//! Global mode (overwrite + flush heavy, working set over capacity) so
//! global-FIFO tombstone compaction runs repeatedly over recycled
//! `SlotId`s, with the serial auditor as the oracle. (Seeded SimRng
//! schedules — the in-tree replacement for proptest.)

use std::collections::{BTreeMap, BTreeSet};

use ddc_core::cleancache::SecondChanceCache;
use ddc_core::hypercache::index::{Placement, Pool, SlotId};
use ddc_core::hypercache::{audit, DoubleDeckerCache};
use ddc_core::prelude::*;

/// What the naive model remembers per resident block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ModelSlot {
    placement: Placement,
    version: u64,
    seq: u64,
}

type Model = BTreeMap<BlockAddr, ModelSlot>;

fn model_used(model: &Model, placement: Placement) -> u64 {
    model.values().filter(|s| s.placement == placement).count() as u64
}

/// The model's FIFO-eviction victim: the live block with the smallest
/// sequence stamp in the given store (each live slot has exactly one
/// live queue entry, stamped with its current seq).
fn model_oldest(model: &Model, placement: Placement) -> Option<(BlockAddr, ModelSlot)> {
    model
        .iter()
        .filter(|(_, s)| s.placement == placement)
        .min_by_key(|(_, s)| s.seq)
        .map(|(&a, &s)| (a, s))
}

fn placement_of(r: &mut SimRng) -> Placement {
    if r.chance(0.5) {
        Placement::Mem
    } else {
        Placement::Ssd
    }
}

fn random_addr(r: &mut SimRng) -> BlockAddr {
    BlockAddr::new(FileId(r.range_u64(1, 5)), r.range_u64(0, 48))
}

/// Arena/model agreement on everything a caller can observe, plus the
/// arena-shape invariants (free-list disjoint from the live set, no
/// duplicate free ids, live + free spans the slab).
fn check_against_model(pool: &Pool, model: &Model) {
    let visible: BTreeMap<BlockAddr, ModelSlot> = pool
        .iter()
        .map(|(addr, s)| {
            (
                addr,
                ModelSlot {
                    placement: s.placement,
                    version: s.version.0,
                    seq: s.seq,
                },
            )
        })
        .collect();
    assert_eq!(&visible, model, "arena visible state diverged from model");
    for placement in [Placement::Mem, Placement::Ssd] {
        assert_eq!(pool.used(placement), model_used(model, placement));
    }

    let live: BTreeSet<SlotId> = pool.iter_ids().map(|(id, _, _)| id).collect();
    let mut free: Vec<SlotId> = pool.free_ids().collect();
    let free_set: BTreeSet<SlotId> = free.iter().copied().collect();
    assert_eq!(free_set.len(), free.len(), "free-list holds a duplicate id");
    free.clear();
    assert!(
        live.is_disjoint(&free_set),
        "free-list intersects the live set"
    );
    assert_eq!(
        live.len() + free_set.len(),
        pool.arena_len() as usize,
        "live + free must span the slab exactly"
    );
    for (id, addr, _) in pool.iter_ids() {
        assert_eq!(pool.lookup(addr), Some(id), "map/slab disagreement");
    }
}

#[test]
fn arena_matches_naive_map_model_under_random_sequences() {
    let mut rng = SimRng::new(0xA12E);
    for case in 0..64 {
        let mut r = rng.fork(case);
        let mut pool = Pool::new(VmId(1), CachePolicy::hybrid(100));
        let mut model: Model = BTreeMap::new();
        let mut seq = 0u64;
        for _ in 0..r.range_u64(1, 300) {
            match r.range_u64(0, 10) {
                // Put (new key or overwrite-in-place).
                0..=4 => {
                    let addr = random_addr(&mut r);
                    let placement = placement_of(&mut r);
                    let version = r.range_u64(1, 8);
                    seq += 1;
                    // The free-list must never hand out an id that is
                    // currently live (double-assignment would alias two
                    // blocks onto one slab cell).
                    let live_before: BTreeSet<SlotId> =
                        pool.iter_ids().map(|(id, _, _)| id).collect();
                    let was_resident = model.contains_key(&addr);
                    let (sid, displaced) = pool.insert(addr, placement, PageVersion(version), seq);
                    if was_resident {
                        assert_eq!(
                            displaced.expect("overwrite displaces the old copy"),
                            model[&addr].placement
                        );
                        assert!(live_before.contains(&sid), "overwrite must keep the id");
                    } else {
                        assert_eq!(displaced, None);
                        assert!(
                            !live_before.contains(&sid),
                            "free-list double-assigned live {sid:?}"
                        );
                    }
                    model.insert(
                        addr,
                        ModelSlot {
                            placement,
                            version,
                            seq,
                        },
                    );
                }
                // Lookup (exclusive-get peek only; removal is the next arm).
                5 => {
                    let addr = random_addr(&mut r);
                    let got = pool.peek(addr).map(|s| ModelSlot {
                        placement: s.placement,
                        version: s.version.0,
                        seq: s.seq,
                    });
                    assert_eq!(got, model.get(&addr).copied());
                }
                // Flush: remove by key.
                6..=7 => {
                    let addr = random_addr(&mut r);
                    let got = pool.remove(addr).map(|s| s.placement);
                    assert_eq!(got, model.remove(&addr).map(|s| s.placement));
                }
                // Evict: FIFO pop of the oldest live entry.
                8 => {
                    let placement = placement_of(&mut r);
                    let got = pool.pop_oldest(placement);
                    let expected = model_oldest(&model, placement);
                    match (got, expected) {
                        (None, None) => {}
                        (Some((addr, slot)), Some((maddr, mslot))) => {
                            assert_eq!(addr, maddr, "eviction order diverged");
                            assert_eq!(slot.seq, mslot.seq);
                            model.remove(&maddr);
                        }
                        (got, expected) => {
                            panic!("pop_oldest: arena {got:?} vs model {expected:?}")
                        }
                    }
                }
                // Invalidate a whole file.
                9 => {
                    let file = FileId(r.range_u64(1, 5));
                    let (mem, ssd) = pool.remove_file(file);
                    let before = (
                        model_used(&model, Placement::Mem),
                        model_used(&model, Placement::Ssd),
                    );
                    model.retain(|a, _| a.file != file);
                    let after = (
                        model_used(&model, Placement::Mem),
                        model_used(&model, Placement::Ssd),
                    );
                    assert_eq!((mem, ssd), (before.0 - after.0, before.1 - after.1));
                }
                // Drain one store side.
                _ => {
                    let placement = placement_of(&mut r);
                    let freed = pool.drain_placement(placement);
                    assert_eq!(freed, model_used(&model, placement));
                    model.retain(|_, s| s.placement != placement);
                }
            }
            check_against_model(&pool, &model);
        }
    }
}

/// Heavy id recycling: fill, drain, refill many times over a small key
/// range so every slab cell is reused repeatedly, then verify the slab
/// never grew past the peak working set (the free-list actually
/// recycles instead of leaking indices).
#[test]
fn free_list_recycles_instead_of_growing_the_slab() {
    let mut pool = Pool::new(VmId(1), CachePolicy::mem(100));
    let mut seq = 0u64;
    for round in 0..32u64 {
        for b in 0..64u64 {
            seq += 1;
            pool.insert(
                BlockAddr::new(FileId(1), b),
                Placement::Mem,
                PageVersion(round + 1),
                seq,
            );
        }
        assert!(
            pool.arena_len() <= 64,
            "round {round}: slab grew to {} cells for a 64-block working set",
            pool.arena_len()
        );
        if round % 2 == 0 {
            assert_eq!(pool.drain_placement(Placement::Mem), 64);
        } else {
            for b in 0..64u64 {
                pool.remove(BlockAddr::new(FileId(1), b));
            }
        }
        assert!(pool.is_empty());
    }
}

/// Global-mode churn with a working set ~3x capacity: every overwrite
/// and flush strands a tombstone in the global FIFO, so the lazy
/// compaction sweep repeatedly walks recycled `SlotId`s. The serial
/// auditor (index coherence, FIFO coverage, arena shape, tombstone
/// bound) is the oracle after every burst.
#[test]
fn global_fifo_compaction_over_recycled_ids_stays_audit_clean() {
    let mut rng = SimRng::new(0xC03B);
    for case in 0..16 {
        let mut r = rng.fork(case);
        let mut cache = DoubleDeckerCache::new(CacheConfig {
            mem_capacity_pages: 128,
            ssd_capacity_pages: 0,
            mode: PartitionMode::Global,
            admission: AdmissionConfig::off(),
        });
        let mut pools = Vec::new();
        for v in 1..=3u32 {
            cache.add_vm(VmId(v), 100);
            pools.push((VmId(v), cache.create_pool(VmId(v), CachePolicy::mem(100))));
        }
        let now = SimTime::from_secs(1);
        for _ in 0..r.range_u64(4, 12) {
            for _ in 0..r.range_u64(50, 200) {
                let (vm, pool) = pools[r.next_below(3) as usize];
                let addr = BlockAddr::new(FileId(r.range_u64(1, 4)), r.next_below(384));
                match r.range_u64(0, 5) {
                    0..=2 => {
                        cache.put(now, vm, pool, addr, PageVersion(1));
                    }
                    3 => {
                        cache.get(now, vm, pool, addr);
                    }
                    _ => {
                        cache.flush(vm, pool, addr);
                    }
                }
            }
            let findings = audit(&cache);
            assert!(findings.is_empty(), "case {case}: {findings:?}");
        }
    }
}
