//! Fault-plane integration tests: VM teardown mid-workload reclaims
//! every pool page, reboots under recycled ids never observe stale
//! data, and seeded fault runs are reproducible byte-for-byte.

use ddc_core::prelude::*;

fn a(vm: VmId, inode: u64, block: u64) -> BlockAddr {
    BlockAddr::new(vm_file(vm, inode), block)
}

fn two_tier_host() -> Host {
    Host::new(HostConfig::new(CacheConfig::mem_and_ssd(1024, 4096)))
}

/// Shutting a VM down mid-workload reclaims every page it held in
/// every pool-backed store, with both tiers populated beforehand.
#[test]
fn shutdown_mid_workload_reclaims_every_pool_page() {
    let mut host = two_tier_host();
    let vm = host.boot_vm(8, 100);
    let mem_cg = host.create_container(vm, "mem", 8, CachePolicy::mem(50));
    let ssd_cg = host.create_container(vm, "ssd", 8, CachePolicy::ssd(50));
    let bystander = host.boot_vm(4, 100);
    let by_cg = host.create_container(bystander, "by", 8, CachePolicy::mem(100));

    let mut now = SimTime::ZERO;
    for b in 0..48 {
        now = host.read(now, vm, mem_cg, a(vm, 1, b)).finish;
        now = host.read(now, vm, ssd_cg, a(vm, 2, b)).finish;
        now = host.read(now, bystander, by_cg, a(bystander, 1, b)).finish;
    }
    let before = host.cache_totals();
    assert!(before.mem_used_pages > 0 && before.ssd_used_pages > 0);
    let by_pages = host
        .container_cache_stats(bystander, by_cg)
        .unwrap()
        .mem_pages;
    assert!(by_pages > 0);

    assert!(host.shutdown_vm(vm));
    let after = host.cache_totals();
    assert_eq!(
        after.mem_used_pages, by_pages,
        "only the bystander's pages remain in memory"
    );
    assert_eq!(after.ssd_used_pages, 0, "every SSD page was reclaimed");
    assert!(host.try_guest(vm).is_none());
    assert!(!host.shutdown_vm(vm), "double shutdown is a safe no-op");

    // The bystander's data still serves.
    let r = host.read(now, bystander, by_cg, a(bystander, 1, 0));
    assert_ne!(r.level, HitLevel::Disk);
}

/// A VM that crashes and reboots under the very same VM id (and
/// re-created containers with the same cgroup ids) must never hit
/// pre-crash cached data: the first read of every block comes from the
/// virtual disk, and the in-path version oracle would abort on any
/// stale second-chance hit.
#[test]
fn reboot_with_same_ids_never_hits_stale_data() {
    let mut host = two_tier_host();
    let vm = host.boot_vm(8, 100);
    let cg = host.create_container(vm, "c", 8, CachePolicy::mem(100));

    let mut now = SimTime::ZERO;
    for b in 0..16 {
        now = host.write(now, vm, cg, a(vm, 1, b)).finish;
    }
    now = host.fsync(now, vm, cg, vm_file(vm, 1));
    for b in 0..16 {
        // Evictions push the dirty-written versions into the cache.
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }

    assert!(host.crash_vm(vm));
    assert!(host.boot_vm_with_id(vm, 8, 100));
    let cg2 = host.create_container(vm, "c", 8, CachePolicy::mem(100));
    assert_eq!(cg, cg2, "the fresh guest recycles the same cgroup id");

    for b in 0..16 {
        let r = host.read(now, vm, cg2, a(vm, 1, b));
        now = r.finish;
        assert_eq!(
            r.level,
            HitLevel::Disk,
            "block {b}: nothing cached before the crash may survive it"
        );
    }
}

/// Builds the seeded brownout experiment used by the determinism and
/// acceptance checks below.
fn brownout_experiment(seed: u64) -> Experiment {
    let mut host = two_tier_host();
    let vm = host.boot_vm(8, 100);
    let cg = host.create_container(vm, "web", 1024, CachePolicy::ssd(100));
    host.set_ssd_fallback_mode(FallbackMode::ToMem);
    host.set_ssd_fault_schedule(Some(FaultSchedule::new(seed).with_window(
        SimTime::from_secs(15),
        Some(SimTime::from_secs(30)),
        FaultKind::Brownout {
            rate: 0.9,
            extra: SimDuration::from_millis(2),
        },
    )));
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    let cfg = WebConfig {
        files: 1500,
        mean_file_blocks: 2,
        zipf_theta: 0.0,
        ..WebConfig::default()
    };
    exp.add_thread(Box::new(Webserver::new("web", vm, cg, cfg, 1)));
    exp
}

/// An SSD brownout mid-run completes the workload, trips the full
/// degradation machinery (fail-open, quarantine, recovery), and the
/// report records it.
#[test]
fn brownout_mid_run_degrades_and_recovers() {
    let report = brownout_experiment(0xFA17).run_until(SimTime::from_secs(45));
    let f = &report.faults;
    assert!(f.ssd_quarantines > 0, "the brownout quarantined the tier");
    assert!(f.quarantine_invalidated_pages > 0);
    assert!(f.failed_gets + f.failed_puts > 0);
    assert!(f.channel_fail_opens > 0, "guest saw fail-open outcomes");
    assert!(f.ssd_recoveries > 0, "the tier came back");
    assert!(report.threads.iter().all(|t| t.ops > 0));
}

/// Two runs with the same fault seed produce byte-identical reports.
#[test]
fn same_seed_fault_runs_are_byte_identical() {
    let a = brownout_experiment(42).run_until(SimTime::from_secs(40));
    let b = brownout_experiment(42).run_until(SimTime::from_secs(40));
    assert_eq!(a.to_json(), b.to_json());
}
