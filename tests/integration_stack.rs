//! Cross-crate integration tests: the full application → guest OS →
//! cleancache → DoubleDecker cache → device stack.

use ddc_core::prelude::*;

fn a(vm: VmId, inode: u64, block: u64) -> BlockAddr {
    BlockAddr::new(vm_file(vm, inode), block)
}

/// A block evicted from the guest page cache must be readable from the
/// second-chance cache, and the caches must stay exclusive: after the
/// second-chance hit the block is in the page cache only.
#[test]
fn second_chance_cycle_is_exclusive() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(4, 100); // 4 MiB guest = 64 blocks
    let cg = host.create_container(vm, "c", 16, CachePolicy::mem(100));
    let mut now = SimTime::ZERO;
    // Work through 48 blocks with a 16-block cgroup: evictions guaranteed.
    for b in 0..48 {
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }
    let hc = host.container_cache_stats(vm, cg).unwrap();
    assert!(
        hc.mem_pages > 0,
        "overflow must land in the hypervisor cache"
    );
    // Re-read an early block: second-chance hit...
    let r = host.read(now, vm, cg, a(vm, 1, 0));
    assert_eq!(r.level, HitLevel::Cleancache);
    // ...and exclusivity: an immediate re-read is a first-chance hit.
    let r2 = host.read(r.finish, vm, cg, a(vm, 1, 0));
    assert_eq!(r2.level, HitLevel::PageCache);
    // Occupancy accounting is consistent between the pool and the store.
    let hc2 = host.container_cache_stats(vm, cg).unwrap();
    assert_eq!(host.cache_totals().mem_used_pages, hc2.mem_pages);
}

/// Writes invalidate stale second-chance copies: a block that was cached,
/// rewritten and fsynced never serves old content (the guest's version
/// check would panic in debug builds if it did).
#[test]
fn rewrite_invalidates_second_chance_copy() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(4, 100);
    let cg = host.create_container(vm, "c", 8, CachePolicy::mem(100));
    let file = vm_file(vm, 1);
    let mut now = SimTime::ZERO;
    for b in 0..24 {
        now = host.read(now, vm, cg, BlockAddr::new(file, b)).finish;
    }
    // Block 0 is now in the hypervisor cache. Rewrite and persist it.
    now = host.write(now, vm, cg, BlockAddr::new(file, 0)).finish;
    now = host.fsync(now, vm, cg, file);
    // Push it out of the page cache again.
    for b in 24..48 {
        now = host.read(now, vm, cg, BlockAddr::new(file, b)).finish;
    }
    // Reading block 0 must succeed coherently (from cache or disk).
    let r = host.read(now, vm, cg, BlockAddr::new(file, 0));
    assert_ne!(r.level, HitLevel::PageCache, "was evicted");
}

/// The physical disk is shared: heavy IO in one VM inflates another VM's
/// cold-read latency.
#[test]
fn cross_vm_disk_contention() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(0)));
    let busy_vm = host.boot_vm(4, 100);
    let victim_vm = host.boot_vm(4, 100);
    let busy = host.create_container(busy_vm, "busy", 8, CachePolicy::disabled());
    let victim = host.create_container(victim_vm, "victim", 8, CachePolicy::disabled());
    // Uncontended cold read.
    let solo = host.read(SimTime::ZERO, victim_vm, victim, a(victim_vm, 1, 0));
    let solo_latency = solo.finish.saturating_since(SimTime::ZERO);
    // Saturate the disk with random reads from the busy VM.
    let mut now = solo.finish;
    let t0 = now;
    for b in 0..64 {
        // Random pattern across files defeats sequential discounts.
        host.read(t0, busy_vm, busy, a(busy_vm, 100 + b, 0));
        now = now.max(t0);
    }
    let contended = host.read(t0, victim_vm, victim, a(victim_vm, 2, 0));
    let contended_latency = contended.finish.saturating_since(t0);
    assert!(
        contended_latency > solo_latency * 4,
        "queueing behind 64 random reads must hurt: {contended_latency} vs {solo_latency}"
    );
}

/// Guest-level statistics and hypervisor-level statistics agree on the
/// direction of traffic.
#[test]
fn stats_are_consistent_across_layers() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(4, 100);
    let cg = host.create_container(vm, "c", 8, CachePolicy::mem(100));
    let mut now = SimTime::ZERO;
    for b in 0..64 {
        now = host.read(now, vm, cg, a(vm, 1, b % 32)).finish;
    }
    let hc = host.container_cache_stats(vm, cg).unwrap();
    let guest = host.guest(vm);
    let ch = guest.channel().counters();
    assert_eq!(ch.gets, hc.gets, "channel and pool agree on lookups");
    assert_eq!(ch.get_hits, hc.hits);
    assert!(ch.put_stores <= ch.puts);
    assert_eq!(guest.counters().cleancache_puts, ch.put_stores);
    let lv = guest.cgroup(cg).reads_by_level;
    assert_eq!(lv[0] + lv[1] + lv[2], 64, "every read is attributed");
}

/// An SSD-backed container works end to end and is slower per hit than a
/// memory-backed one.
#[test]
fn ssd_container_end_to_end() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(1024, 1024)));
    let vm = host.boot_vm(4, 100);
    let mem_cg = host.create_container(vm, "m", 8, CachePolicy::mem(50));
    let ssd_cg = host.create_container(vm, "s", 8, CachePolicy::ssd(50));
    let mut now = SimTime::ZERO;
    for b in 0..24 {
        now = host.read(now, vm, mem_cg, a(vm, 1, b)).finish;
        now = host.read(now, vm, ssd_cg, a(vm, 2, b)).finish;
    }
    let m = host.read(now, vm, mem_cg, a(vm, 1, 0));
    assert_eq!(m.level, HitLevel::Cleancache);
    let s = host.read(m.finish, vm, ssd_cg, a(vm, 2, 0));
    assert_eq!(s.level, HitLevel::Cleancache);
    let m_lat = m.finish.saturating_since(now);
    let s_lat = s.finish.saturating_since(m.finish);
    assert!(
        s_lat > m_lat,
        "SSD hit ({s_lat}) slower than memory hit ({m_lat})"
    );
    let t = host.cache_totals();
    assert!(t.mem_used_pages > 0 && t.ssd_used_pages > 0);
}

/// Anonymous memory pressure swaps and recovers without corrupting
/// accounting, and the hypervisor cache never absorbs anonymous pages.
#[test]
fn anonymous_pressure_does_not_leak_into_cache() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(2, 100); // 32 blocks of guest RAM
    let cg = host.create_container(vm, "redis", 64, CachePolicy::mem(100));
    host.anon_reserve(vm, cg, 64);
    let mut now = SimTime::ZERO;
    for round in 0..3 {
        for p in 0..64 {
            now = host.anon_touch(now, vm, cg, (p + round) % 64);
        }
    }
    let mem = host.container_mem_stats(vm, cg);
    assert!(mem.swap_out_total > 0);
    assert!(mem.swap_in_total > 0);
    assert_eq!(
        mem.anon_resident_pages + mem.swapped_pages,
        mem.anon_allocated_pages
    );
    let hc = host.container_cache_stats(vm, cg).unwrap();
    assert_eq!(hc.mem_pages, 0, "anonymous pages never enter the cache");
}

/// Destroying containers and shutting down VMs releases every page.
#[test]
fn teardown_releases_everything() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(512, 512)));
    let vm1 = host.boot_vm(4, 60);
    let vm2 = host.boot_vm(4, 40);
    let c1 = host.create_container(vm1, "a", 8, CachePolicy::mem(100));
    let c2 = host.create_container(vm2, "b", 8, CachePolicy::ssd(100));
    let mut now = SimTime::ZERO;
    for b in 0..32 {
        now = host.read(now, vm1, c1, a(vm1, 1, b)).finish;
        now = host.read(now, vm2, c2, a(vm2, 1, b)).finish;
    }
    assert!(host.cache_totals().mem_used_pages > 0);
    assert!(host.cache_totals().ssd_used_pages > 0);
    host.destroy_container(vm1, c1);
    host.shutdown_vm(vm2);
    let t = host.cache_totals();
    assert_eq!(t.mem_used_pages, 0);
    assert_eq!(t.ssd_used_pages, 0);
    assert_eq!(
        host.guest(vm1).used_pages(),
        host.guest(vm1).config().kernel_reserved_pages
    );
}

/// The shipped example scenario stays parseable and runnable (guards the
/// JSON file against schema drift).
#[test]
fn shipped_scenario_json_runs() {
    let json = include_str!("../examples/scenarios/derivative_cloud.json");
    let mut spec = ddc_core::scenario::ScenarioSpec::from_json(json).expect("shipped JSON parses");
    // Shorten for test budgets; topology and schedule stay as shipped.
    spec.duration_secs = 5;
    spec.schedule.clear();
    let report = ddc_core::scenario::run(&spec).expect("runs");
    assert_eq!(report.threads.len(), 7);
    assert!(report.series("vm2-db (MB)").is_some());
}

/// Regression test (found by `prop_exclusive_cache`): a block written by
/// one container and then read by another must never yield stale
/// content, and the hypervisor cache must never resurrect the
/// pre-write version through the second container's evictions.
#[test]
fn shared_file_write_then_cross_container_read_is_coherent() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(256)));
    let vm = host.boot_vm(4, 100);
    let writer = host.create_container(vm, "writer", 12, CachePolicy::mem(50));
    let reader = host.create_container(vm, "reader", 12, CachePolicy::mem(50));
    let shared = vm_file(vm, 1);
    let block = BlockAddr::new(shared, 18);
    // Writer dirties the block (not yet written back).
    let mut now = host.write(SimTime::ZERO, vm, writer, block).finish;
    // Reader sees the dirty page via shared-page transfer, not the disk.
    let r = host.read(now, vm, reader, block);
    assert_eq!(r.level, HitLevel::PageCache, "dirty page is visible");
    now = r.finish;
    // Churn the reader so the (transferred, still-dirty-or-clean) page
    // cycles through reclaim and possibly the hypervisor cache...
    for b in 0..48 {
        now = host
            .read(now, vm, reader, BlockAddr::new(vm_file(vm, 2), b))
            .finish;
    }
    // ...then writer persists and rewrites; reader reads again. The
    // coherence assertion inside the guest read path verifies versions.
    now = host.fsync(now, vm, writer, shared);
    now = host.write(now, vm, writer, block).finish;
    now = host.fsync(now, vm, writer, shared);
    let r2 = host.read(now, vm, reader, block);
    assert!(r2.finish > now);
}

/// MIGRATE_OBJECT at work: a block cached under one container's pool is
/// claimed by another container's read instead of going to the disk.
#[test]
fn cross_pool_read_migrates_instead_of_disk() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(4, 100);
    let a = host.create_container(vm, "a", 8, CachePolicy::mem(50));
    let b = host.create_container(vm, "b", 8, CachePolicy::mem(50));
    let shared = vm_file(vm, 1);
    let mut now = SimTime::ZERO;
    // Container A reads the shared file; its overflow lands in pool A.
    for blk in 0..24 {
        now = host.read(now, vm, a, BlockAddr::new(shared, blk)).finish;
    }
    let stats_a = host.container_cache_stats(vm, a).unwrap();
    assert!(stats_a.mem_pages > 0);
    // Drop A's page-cache copies so only pool A holds the early blocks.
    host.drop_caches(now, vm, a);
    // Container B reads an early block: the object migrates from pool A
    // to pool B and is served as a second-chance hit, not a disk read.
    let r = host.read(now, vm, b, BlockAddr::new(shared, 0));
    assert_eq!(r.level, HitLevel::Cleancache, "migrated, not re-read");
}
