//! Property test for the crash-and-recovery plane: warm restart from
//! EVERY prefix of the hypervisor cache's journal — every record
//! boundary, torn variants of each, and periodic bit-flipped variants —
//! must uphold the clean-cache contract (paper §3): the recovered cache
//! may have lost entries, but every entry it does hold carries the
//! guest's current on-disk version (zero stale reads), and the
//! structural invariant auditor finds nothing.
//!
//! (Seeded SimRng schedules — the in-tree replacement for proptest,
//! which is unavailable offline.)

use ddc_core::hypercache::audit;
use ddc_core::prelude::*;
use ddc_core::storage::Journal;

/// Drives a seeded mixed workload over two containers of two VMs.
fn drive(host: &mut Host, rng: &mut SimRng, now: &mut SimTime, ops: u64) {
    let vms = host.vm_ids();
    for _ in 0..ops {
        let vm = vms[rng.range_usize(0, vms.len())];
        let cg = {
            let ids = host.guest(vm).cgroup_ids();
            ids[rng.range_usize(0, ids.len())]
        };
        let file = vm_file(vm, rng.range_u64(1, 4));
        let addr = BlockAddr::new(file, rng.range_u64(0, 32));
        match rng.range_u64(0, 20) {
            0..=10 => *now = host.read(*now, vm, cg, addr).finish,
            11..=16 => *now = host.write(*now, vm, cg, addr).finish,
            17..=18 => *now = host.fsync(*now, vm, cg, file),
            _ => host.delete_file(vm, cg, file),
        }
    }
}

fn build_host() -> Host {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(96, 96)));
    host.enable_cache_journal();
    host.set_ssd_fallback_mode(FallbackMode::ToMem);
    let vm1 = host.boot_vm(1, 100);
    let vm2 = host.boot_vm(1, 60);
    host.create_container(vm1, "a", 6, CachePolicy::mem(100));
    host.create_container(vm2, "b", 6, CachePolicy::ssd(100));
    host
}

/// Recovers from `prefix` and checks the stale-read oracle plus the
/// auditor against the live guests' ground truth.
fn check_prefix(host: &Host, prefix: &[u8], epochs: &[(VmId, u64)], label: &str) {
    let (recovered, _report) =
        DoubleDeckerCache::recover(host.cache().current_config(), prefix, epochs);
    for (vm, _pool, addr, version) in recovered.entries() {
        let truth = host.guest(vm).disk_version(addr);
        assert_eq!(
            version, truth,
            "stale entry {addr} (cached {version}, disk {truth}) after {label}"
        );
    }
    let findings = audit(&recovered);
    assert!(
        findings.is_empty(),
        "auditor findings after {label}: {findings:?}"
    );
}

#[test]
fn recovery_from_every_journal_prefix_is_never_stale() {
    let mut total_cuts = 0usize;
    for seed in [0xDDC0_0001u64, 0xDDC0_0002] {
        let mut host = build_host();
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        drive(&mut host, &mut rng, &mut now, 400);

        let image = host.cache_journal_image().expect("journaling on");
        let epochs: Vec<(VmId, u64)> = host
            .vm_ids()
            .into_iter()
            .map(|vm| (vm, host.guest(vm).flush_epoch()))
            .collect();
        assert!(epochs.iter().any(|&(_, e)| e > 0), "writes advanced epochs");

        let bounds = Journal::record_boundaries(&image);
        assert!(bounds.len() > 100, "enough records to sweep");
        let mut prev = 0usize;
        for (i, &cut) in bounds.iter().enumerate() {
            // Every clean boundary.
            check_prefix(&host, &image[..cut], &epochs, &format!("clean cut {cut}"));
            // A torn variant strictly inside the final record.
            let torn = prev + 1 + (cut - prev - 1) / 2;
            check_prefix(&host, &image[..torn], &epochs, &format!("torn cut {torn}"));
            // Periodically, a silently bit-flipped image (every byte of
            // a record is CRC-covered, so replay stops at the damage).
            if i % 5 == 0 && cut > 0 {
                let mut flipped = image[..cut].to_vec();
                let pos = (cut / 2 + i) % cut;
                flipped[pos] ^= 1 << (i % 8);
                check_prefix(
                    &host,
                    &flipped,
                    &epochs,
                    &format!("bitflip at {pos} cut {cut}"),
                );
            }
            prev = cut;
            total_cuts += 2;
        }
    }
    assert!(total_cuts >= 100, "swept {total_cuts} crash points");
}

#[test]
fn recovery_with_future_epochs_discards_rather_than_serves() {
    // Pin the epoch ABOVE anything in the journal: recovery must treat
    // every replayed entry as potentially invalidated and discard it —
    // losing everything is safe, serving anything stale is not.
    let mut host = build_host();
    let mut rng = SimRng::new(0xFEE1);
    let mut now = SimTime::ZERO;
    drive(&mut host, &mut rng, &mut now, 300);
    let image = host.cache_journal_image().unwrap();
    let epochs: Vec<(VmId, u64)> = host.vm_ids().into_iter().map(|vm| (vm, u64::MAX)).collect();
    let (recovered, report) =
        DoubleDeckerCache::recover(host.cache().current_config(), &image, &epochs);
    assert_eq!(
        recovered.entries().len(),
        0,
        "everything suspect, all dropped"
    );
    assert!(report.discarded_stale > 0 || report.recovered_entries == 0);
    assert!(audit(&recovered).is_empty());
}
