//! Property tests for the remote chunk-store tier's determinism
//! contract (DESIGN.md §16).
//!
//! Every stochastic choice on the fetch path — backoff jitter, edge
//! placement, hedge routing, fault decisions — is keyed off explicit
//! seeds, so the whole fault-tolerance stack must replay exactly:
//!
//! 1. **Timeline identity** — same seed, same lookup stream ⇒ the same
//!    attempt/retry/hedge/serve instants, event for event, and the
//!    same counters, even under a brownout that forces the retry loop.
//! 2. **Fan-out independence** — `DDC_THREADS` (the experiment worker
//!    width) schedules *cells*, never what happens inside one: the
//!    equivalence report's remote section is byte-identical whether
//!    cells run serially or across 8 workers, and across engines.
//! 3. **Single-thread replay** — `run_stress` at one thread is a
//!    deterministic interleaving: remote counters and op totals match
//!    across repeats; multi-thread runs keep the robust contract
//!    (clean audits, same op total, non-trivial service).

use std::sync::Arc;

use ddc_core::concurrent::{run_equivalence, run_stress, EngineKind, StressConfig};
use ddc_core::parallel::run_cells_with;
use ddc_core::prelude::*;
use ddc_core::storage::{
    ChunkStore, RemoteBinding, RemoteConfig, RemoteCounters, RemoteFetchConfig, RemoteId,
    RemoteLookup, RemoteTraceEvent,
};

/// A CDN-scale store browning out forever: ~40% of attempts stall and
/// fail, the rest are slowed — every fetch exercises deadline, retry
/// and hedge bookkeeping.
fn brownout_store(seed: u64) -> ChunkStore {
    let mut faults = FaultSchedule::new(seed ^ 0xB12);
    faults.add_window(
        SimTime::ZERO,
        None,
        FaultKind::RemoteBrownout {
            rate: 0.4,
            stall: SimDuration::from_millis(30),
        },
    );
    ChunkStore::new(RemoteId(9), RemoteConfig::cdn(seed)).with_faults(faults)
}

/// Drives one seeded lookup stream through a fresh binding, recording
/// the full fetch timeline. Pure function of `seed` by construction —
/// the properties below check the implementation agrees.
fn drive(seed: u64) -> (Vec<RemoteTraceEvent>, RemoteCounters) {
    let mut binding =
        RemoteBinding::new(Arc::new(brownout_store(seed)), RemoteFetchConfig::default());
    let mut trace = Vec::new();
    let mut rng = SimRng::new(seed ^ 0x7ACE);
    let mut now = SimTime::from_secs(1);
    for i in 0..400u64 {
        let addr = BlockAddr::new(FileId(rng.range_u64(1, 4)), rng.range_u64(0, 4096));
        match binding.lookup_traced(now, addr, Some(&mut trace)) {
            RemoteLookup::Served { finish } => {
                // Periodically wait a fetch out so the in-flight window
                // drains and the stream isn't all shed.
                if i.is_multiple_of(3) && finish > now {
                    now = finish;
                }
            }
            RemoteLookup::Miss => {}
        }
        now += SimDuration::from_millis(2);
        if i.is_multiple_of(16) {
            binding.localize(addr);
        }
    }
    (trace, binding.counters())
}

#[test]
fn fetch_timelines_replay_exactly_under_brownout() {
    for seed in [1, 0xCD4, 0xDDC0] {
        let (trace_a, counters_a) = drive(seed);
        let (trace_b, counters_b) = drive(seed);
        assert_eq!(
            trace_a, trace_b,
            "seed {seed}: fetch timeline diverged between identical runs"
        );
        assert_eq!(
            counters_a, counters_b,
            "seed {seed}: counters diverged between identical runs"
        );
        // The property is only worth anything if the timeline actually
        // contains the stochastic events it pins down.
        let count = |kind: &str| trace_a.iter().filter(|e| e.kind == kind).count();
        assert!(count("served") > 0, "seed {seed}: nothing served");
        assert!(
            count("retry") > 0,
            "seed {seed}: brownout never forced a retry"
        );
        assert!(
            count("hedge") > 0,
            "seed {seed}: no fetch crossed the hedge threshold"
        );
        assert!(
            count("failed") > 0,
            "seed {seed}: brownout never exhausted a fetch"
        );
    }
}

#[test]
fn distinct_seeds_take_distinct_timelines() {
    // The seeds must actually steer the jitter/hedge/fault decisions:
    // if two different seeds replay the same timeline, the "seeded"
    // stack is ignoring its seeds and the identity property above is
    // vacuous.
    let (trace_a, _) = drive(7);
    let (trace_b, _) = drive(8);
    assert_ne!(
        trace_a, trace_b,
        "seeds 7 and 8 produced identical fetch timelines"
    );
}

#[test]
fn remote_report_bytes_survive_worker_fanout_and_engines() {
    let mut cfg = StressConfig::remote_smoke(0xDE7);
    let reference = run_equivalence(&cfg, EngineKind::Serial);
    assert_eq!(reference.stale_reads, 0, "serial oracle violated");
    assert!(
        reference.json.contains("\"remote_report\""),
        "report must expose the remote section"
    );
    // The same cell batch at worker widths 1/2/8 (the mechanism behind
    // DDC_THREADS) must reproduce the report byte for byte.
    for width in [1usize, 2, 8] {
        let reports = run_cells_with(width, vec![(); 4], |()| {
            run_equivalence(&StressConfig::remote_smoke(0xDE7), EngineKind::Serial)
        });
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(
                r.json, reference.json,
                "cell {i} at width {width} diverged from the serial reference"
            );
        }
    }
    // Sharding is a locking strategy, not a semantic change: the remote
    // section agrees across engines too.
    for shards in [1, 4, 16] {
        cfg.shards = shards;
        let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards });
        assert_eq!(sharded.stale_reads, 0, "{shards} shards: stale reads");
        assert_eq!(
            sharded.json, reference.json,
            "remote report diverged at {shards} shards"
        );
    }
}

#[test]
fn single_thread_stress_replays_remote_counters_exactly() {
    let mut cfg = StressConfig::remote_smoke(0x5EED);
    // Brown the store out at driver scale so the replayed counters
    // cover the retry/timeout/breaker paths, not just happy fetches.
    if let Some(setup) = cfg.remote.as_mut() {
        let mut faults = FaultSchedule::new(0xFA11);
        faults.add_window(
            SimTime::ZERO,
            None,
            FaultKind::RemoteBrownout {
                rate: 0.3,
                stall: SimDuration::from_nanos(11_000),
            },
        );
        setup.faults = Some(faults);
    }
    let reference = run_stress(&cfg, 1);
    assert!(
        reference.clean(),
        "reference run dirty: {} stale reads, {:?}",
        reference.stale_reads,
        reference.findings
    );
    assert!(reference.remote.served > 0, "nothing served under brownout");
    assert!(
        reference.remote.retries > 0 && reference.remote.timeouts > 0,
        "brownout exercised no retries/timeouts: {:?}",
        reference.remote
    );
    for round in 0..2 {
        let again = run_stress(&cfg, 1);
        assert_eq!(
            again.remote, reference.remote,
            "round {round}: single-thread remote counters diverged"
        );
        assert_eq!(
            again.total_ops, reference.total_ops,
            "round {round}: op total diverged"
        );
        assert_eq!(again.stale_reads, 0, "round {round}: stale reads");
    }
    // Threaded interleavings reorder fetches, so the exact counters are
    // theirs to choose — but the robust contract is not.
    for threads in [2, 8] {
        let out = run_stress(&cfg, threads);
        assert!(
            out.clean(),
            "{threads} threads: {} stale reads, {:?}",
            out.stale_reads,
            out.findings
        );
        assert_eq!(
            out.total_ops, reference.total_ops,
            "{threads} threads: op total drifted"
        );
        assert!(out.remote.served > 0, "{threads} threads: nothing served");
    }
}
