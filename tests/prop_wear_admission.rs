//! Property tests for the SSD endurance plane (DESIGN.md §17): ghost
//! admission decisions and wear totals are part of the determinism
//! contract, and the replayed half of the wear ledger survives every
//! crash/recover prefix cut exactly.
//!
//! * **Engine identity** — with the admission plane on (ghost window +
//!   TTL), the serial engine and the sharded engine at 1/2/4/8 shards
//!   produce byte-identical equivalence reports, including the
//!   `wear_report` and per-pool `ssd_writes` rows. The shard cells fan
//!   out through the `DDC_THREADS` worker pool and are compared against
//!   a reference computed serially, so the verdict cannot depend on the
//!   fan-out width.
//! * **Replay exactness** — `ssd_pages_written` and `pages_admitted`
//!   accrue 1:1 with journaled `Put` records (checkpoints carry the
//!   totals forward in a `WearTotals` record), so recovery from any
//!   journal prefix yields totals that grow monotonically with the
//!   prefix, never exceed the live cache's, and match them exactly on
//!   the full image — on both the serial journal and the sharded
//!   per-shard segments. Advisory counters (ghost decisions, TTL
//!   demotions) are diagnostics and restart at zero.
//!
//! (Seeded SimRng schedules — the in-tree replacement for proptest,
//! which is unavailable offline.)

use ddc_core::concurrent::{run_equivalence, CrashHarness, EngineKind, ShardedCache, StressConfig};
use ddc_core::prelude::*;
use ddc_core::storage::{Journal, WearCounters};
use ddc_json::Json;

/// A stress config that keeps the admission plane hot: the memory tier
/// is far smaller than the working set, so hybrid pools spill every
/// tick, and a short TTL keeps the demotion sweep busy.
fn admission_cfg(seed: u64) -> StressConfig {
    let mut cfg = StressConfig::smoke(seed);
    cfg.cache = CacheConfig::mem_and_ssd(192, 384).with_admission(AdmissionConfig {
        ghost_window: 128,
        ssd_ttl: 64,
    });
    cfg
}

/// Pulls a named wear counter out of a report's `wear_report` object.
fn wear_field(report_json: &str, field: &str) -> f64 {
    let doc = Json::parse(report_json).expect("report parses");
    doc.get("wear_report")
        .and_then(|w| w.get(field))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("report has no wear_report.{field}"))
}

#[test]
fn ghost_decisions_and_wear_identical_serial_vs_sharded() {
    for seed in [0x3EA1u64, 0x3EA2] {
        let cfg = admission_cfg(seed);
        let reference = run_equivalence(&cfg, EngineKind::Serial);
        assert_eq!(reference.stale_reads, 0, "serial oracle violated");

        // The filter must actually be engaging, or the identity claim
        // is vacuous.
        assert!(
            wear_field(&reference.json, "spill_attempts") > 0.0,
            "workload never exercised the ghost filter"
        );
        assert!(
            wear_field(&reference.json, "spill_rejects") > 0.0,
            "ghost filter never rejected a spill"
        );
        assert!(
            wear_field(&reference.json, "ttl_demotions") > 0.0,
            "TTL sweep never demoted"
        );
        assert!(
            wear_field(&reference.json, "ssd_pages_written") > 0.0,
            "workload never wrote the SSD tier"
        );

        // Shard cells fan out across the DDC_THREADS worker pool; every
        // one must reproduce the serial reference byte for byte.
        let cells = ddc_core::parallel::run_cells(vec![1usize, 2, 4, 8], {
            let cfg = cfg.clone();
            move |shards| run_equivalence(&cfg, EngineKind::Sharded { shards })
        });
        for (shards, cell) in [1usize, 2, 4, 8].into_iter().zip(cells) {
            assert_eq!(cell.stale_reads, 0, "{shards}-shard oracle violated");
            assert_eq!(
                cell.json, reference.json,
                "{shards}-shard report diverged from serial (seed {seed:#x})"
            );
        }
    }
}

/// Component-wise check of the replayed (journaled) half of the ledger.
fn assert_replayed_le(a: &WearCounters, b: &WearCounters, what: &str) {
    assert!(
        a.ssd_pages_written <= b.ssd_pages_written && a.pages_admitted <= b.pages_admitted,
        "{what}: wear went backwards ({a:?} vs {b:?})"
    );
}

#[test]
fn serial_wear_replays_exactly_across_every_prefix_cut() {
    let mut host = Host::new(HostConfig::new(
        CacheConfig::mem_and_ssd(96, 96).with_admission(AdmissionConfig::ghost(64)),
    ));
    host.enable_cache_journal();
    let vm1 = host.boot_vm(1, 100);
    let vm2 = host.boot_vm(1, 60);
    host.create_container(vm1, "a", 6, CachePolicy::hybrid(100));
    host.create_container(vm2, "b", 6, CachePolicy::hybrid(100));

    let mut rng = SimRng::new(0x3EA3);
    let mut now = SimTime::ZERO;
    for _ in 0..1500 {
        let vm = if rng.chance(0.5) { vm1 } else { vm2 };
        let cg = host.guest(vm).cgroup_ids()[0];
        let file = vm_file(vm, rng.range_u64(1, 3));
        let addr = BlockAddr::new(file, rng.range_u64(0, 48));
        if rng.chance(0.4) {
            now = host.write(now, vm, cg, addr).finish;
        } else {
            now = host.read(now, vm, cg, addr).finish;
        }
    }

    let live = host.cache().wear_totals();
    assert!(live.spill_rejects > 0, "filter never engaged");
    assert!(live.ssd_pages_written > 0, "SSD tier never written");
    assert!(
        host.cache().journal_compactions() > 0,
        "journal never compacted: the WearTotals checkpoint path went untested"
    );

    let image = host.cache_journal_image().expect("journaling on");
    let epochs: Vec<(VmId, u64)> = host
        .vm_ids()
        .into_iter()
        .map(|vm| (vm, host.guest(vm).flush_epoch()))
        .collect();
    let config = host.cache().current_config();

    let mut prev = WearCounters::default();
    for &cut in Journal::record_boundaries(&image).iter() {
        let (recovered, _) = DoubleDeckerCache::recover(config, &image[..cut], &epochs);
        let w = recovered.wear_totals();
        assert_replayed_le(&prev, &w, "prefix grew");
        assert_replayed_le(&w, &live, "prefix exceeded live");
        assert_eq!(
            w.spill_attempts + w.spill_admits + w.spill_rejects + w.ttl_demotions,
            0,
            "advisory counters must restart at zero after recovery"
        );
        prev = w;
    }
    assert_eq!(
        (prev.ssd_pages_written, prev.pages_admitted),
        (live.ssd_pages_written, live.pages_admitted),
        "full-image replay must reproduce the live wear totals exactly"
    );
}

#[test]
fn sharded_wear_replays_exactly_across_segment_cuts() {
    let mut cfg = StressConfig::smoke(0x3EA4);
    cfg.cache = CacheConfig::mem_and_ssd(96, 128).with_admission(AdmissionConfig::ghost(64));
    cfg.working_set = 64;
    cfg.shards = 4;
    let mut h = CrashHarness::new(&cfg);
    h.drive(0, 24);

    let live = h.cache().wear_totals();
    assert!(live.spill_rejects > 0, "filter never engaged");
    assert!(live.ssd_pages_written > 0, "SSD tier never written");

    let segments = h.segment_images();
    let epochs = h.guest_epochs();

    // Full images: exact replay.
    let (recovered, _) = ShardedCache::recover(cfg.cache, &segments, &epochs);
    let w = recovered.wear_totals();
    assert_eq!(
        (w.ssd_pages_written, w.pages_admitted),
        (live.ssd_pages_written, live.pages_admitted),
        "full-image replay must reproduce the live wear totals exactly"
    );

    // Single-segment prefix cuts: monotone within the cut shard, never
    // above the live totals.
    for shard in 0..segments.len() {
        let mut prev = WearCounters::default();
        for &cut in Journal::record_boundaries(&segments[shard]).iter() {
            let mut segs = segments.clone();
            segs[shard].truncate(cut);
            let (recovered, _) = ShardedCache::recover(cfg.cache, &segs, &epochs);
            let w = recovered.wear_totals();
            assert_replayed_le(&prev, &w, &format!("shard {shard} cut {cut}"));
            assert_replayed_le(&w, &live, &format!("shard {shard} cut {cut} vs live"));
            prev = w;
        }
    }
}
