//! Property tests for the batched write plane (DESIGN.md §18).
//!
//! 1. **Batch-split identity** — a `*_many` group applied through the
//!    batched entry points must leave the cache in a state
//!    byte-identical to applying the same operations one at a time, no
//!    matter where the group is split into sub-batches: same outcome
//!    vectors, same resident entries (in internal order, not just as a
//!    set), same per-pool stats, and — with journaling on — the same
//!    journal record count and byte-identical per-shard segment
//!    images. Batching is a locking/amortization strategy, not a
//!    semantic change; this is checked at *every* split boundary of
//!    the batch, across 1/2/4/8 shards.
//! 2. **Reservation convergence** — the eviction hook (which fires in
//!    the reservation path's unlocked phase, between the placement
//!    hint and its locked re-validation) is used to flip a hybrid
//!    pool's entitlement on every firing, so every hint the path
//!    computes is stale by the time it validates. The path must
//!    detect the mismatch, retry within its bound or fall back to the
//!    lock-all put, keep storing every page, and reconcile every
//!    speculative capacity reservation back into the ledger (zero
//!    auditor findings after every burst).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ddc_core::cleancache::SecondChanceCache;
use ddc_core::concurrent::{audit, ShardedCache};
use ddc_core::prelude::*;

/// Operations per `*_many` group in the split test. Every split index
/// `0..=GROUP` is exercised, so every boundary inside a group is hit.
const GROUP: u64 = 8;

/// Rounds of the split-test op stream. Small enough that the journal
/// never crosses its compaction threshold (compaction fires at batch
/// boundaries on the batched path but has no per-op twin to mirror, so
/// the byte-identity claim is over the uncompacted log).
const ROUNDS: u64 = 6;

fn build(shards: usize) -> (ShardedCache, Vec<(VmId, PoolId)>) {
    let cache = ShardedCache::new(
        CacheConfig {
            mem_capacity_pages: 96,
            ssd_capacity_pages: 192,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        },
        shards,
    );
    cache.enable_journal();
    cache.add_vm(VmId(1), 100);
    cache.add_vm(VmId(2), 150);
    let mut h = cache.clone();
    let pools = vec![
        (VmId(1), h.create_pool(VmId(1), CachePolicy::mem(100))),
        (VmId(1), h.create_pool(VmId(1), CachePolicy::hybrid(80))),
        (VmId(2), h.create_pool(VmId(2), CachePolicy::ssd(60))),
        (VmId(2), h.create_pool(VmId(2), CachePolicy::hybrid(120))),
    ];
    (cache, pools)
}

/// One round of the deterministic op stream for one pool: a put group,
/// a trailing-window get group, and (every other round) a flush group.
/// Working sets are sized well past the mem shares, so put groups
/// routinely evict — the drain-before-evict journal ordering is on the
/// tested path, not just the happy path.
fn round_ops(
    round: u64,
    pi: u64,
) -> (
    Vec<(BlockAddr, PageVersion)>,
    Vec<BlockAddr>,
    Vec<BlockAddr>,
) {
    let file = FileId(pi + 1);
    let puts: Vec<(BlockAddr, PageVersion)> = (0..GROUP)
        .map(|k| {
            (
                BlockAddr::new(file, (round * GROUP + k * 3 + pi) % 40),
                PageVersion(1 + (round + k) % 3),
            )
        })
        .collect();
    let back = round.saturating_sub(2);
    let gets: Vec<BlockAddr> = (0..GROUP)
        .map(|k| BlockAddr::new(file, (back * GROUP + k * 5 + pi) % 40))
        .collect();
    let flushes: Vec<BlockAddr> = if round.is_multiple_of(2) {
        (0..GROUP / 2)
            .map(|k| BlockAddr::new(file, (round * 4 + k * 7 + pi) % 40))
            .collect()
    } else {
        Vec::new()
    };
    (puts, gets, flushes)
}

/// Drives the full stream. `split: None` applies every operation
/// through the scalar entry points in exact order (the serial
/// reference); `split: Some(k)` applies each group as two `*_many`
/// calls cut at index `k`. Returns a transcript of every outcome, so
/// the comparison covers what callers *observed*, not just where the
/// cache ended up.
fn drive(h: &mut ShardedCache, pools: &[(VmId, PoolId)], split: Option<usize>) -> String {
    let now = SimTime::from_secs(1);
    let mut transcript = String::new();
    for round in 0..ROUNDS {
        for (pi, &(vm, pool)) in pools.iter().enumerate() {
            let (puts, gets, flushes) = round_ops(round, pi as u64);
            match split {
                None => {
                    let outs: Vec<PutOutcome> = puts
                        .iter()
                        .map(|&(a, v)| h.put(now, vm, pool, a, v))
                        .collect();
                    transcript.push_str(&format!("{outs:?}\n"));
                    let outs: Vec<GetOutcome> =
                        gets.iter().map(|&a| h.get(now, vm, pool, a)).collect();
                    transcript.push_str(&format!("{outs:?}\n"));
                    // Per-op flushes return individual epochs; the
                    // group-level observable is their max, which is
                    // what flush_many reports.
                    let epoch = flushes
                        .iter()
                        .map(|&a| h.flush(vm, pool, a))
                        .max()
                        .unwrap_or(0);
                    transcript.push_str(&format!("epoch={epoch}\n"));
                }
                Some(k) => {
                    let cut = k.min(puts.len());
                    let mut outs = h.put_many(now, vm, pool, &puts[..cut]);
                    outs.extend(h.put_many(now, vm, pool, &puts[cut..]));
                    transcript.push_str(&format!("{outs:?}\n"));
                    let cut = k.min(gets.len());
                    let mut outs = h.get_many(now, vm, pool, &gets[..cut]);
                    outs.extend(h.get_many(now, vm, pool, &gets[cut..]));
                    transcript.push_str(&format!("{outs:?}\n"));
                    let cut = k.min(flushes.len());
                    let epoch = h.flush_many(vm, pool, &flushes[..cut]).max(h.flush_many(
                        vm,
                        pool,
                        &flushes[cut..],
                    ));
                    transcript.push_str(&format!("epoch={epoch}\n"));
                }
            }
        }
    }
    transcript
}

/// Everything observable about where the cache ended up: resident
/// entries in internal order, per-pool stats, journal record count and
/// raw per-shard segment bytes.
fn observe(cache: &ShardedCache, pools: &[(VmId, PoolId)]) -> String {
    let mut s = String::new();
    s.push_str(&format!("entries={:?}\n", cache.entries()));
    for &(vm, pool) in pools {
        s.push_str(&format!(
            "{vm:?}/{pool:?}={:?}\n",
            cache.pool_stats(vm, pool)
        ));
    }
    s.push_str(&format!("records={:?}\n", cache.journal_records()));
    s.push_str(&format!("images={:?}\n", cache.journal_images()));
    s
}

#[test]
fn batched_application_is_byte_identical_at_every_split_boundary() {
    for shards in [1usize, 2, 4, 8] {
        let (ref_cache, ref_pools) = build(shards);
        let mut h = ref_cache.clone();
        let ref_transcript = drive(&mut h, &ref_pools, None);
        let ref_state = observe(&ref_cache, &ref_pools);
        assert!(
            audit(&ref_cache).is_empty(),
            "reference run broke invariants at {shards} shards"
        );

        for k in 0..=GROUP as usize {
            let (cache, pools) = build(shards);
            let mut h = cache.clone();
            let transcript = drive(&mut h, &pools, Some(k));
            assert_eq!(
                ref_transcript, transcript,
                "outcomes diverged from per-op order: {shards} shards, split {k}"
            );
            assert_eq!(
                ref_state,
                observe(&cache, &pools),
                "state diverged from per-op order: {shards} shards, split {k}"
            );
            assert!(
                audit(&cache).is_empty(),
                "batched run broke invariants: {shards} shards, split {k}"
            );
            assert!(
                cache.batched_ops() > 0 && cache.batch_lock_acquisitions() > 0,
                "split run never exercised the batch plane: {shards} shards, split {k}"
            );
        }
    }
}

/// Forces every reservation hint stale: the hook (which the reserved
/// put runs in its unlocked phase, after computing the placement hint
/// and before re-validating it under the home shard lock) swings the
/// ballast VM's weight between extremes, so the hybrid pool's memory
/// entitlement — and with it the mem-vs-SSD placement decision —
/// flips on every firing. Each retry recomputes the hint and gets
/// invalidated again, so the path must exhaust its retry budget and
/// take the lock-all fallback, all while keeping the capacity ledger
/// exact (every speculative reservation freed or consumed — the
/// auditor checks the ledger against actual residency after every
/// burst).
#[test]
fn reservation_path_converges_under_forced_entitlement_flips() {
    let cache = ShardedCache::new(
        CacheConfig {
            mem_capacity_pages: 64,
            ssd_capacity_pages: 128,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        },
        8,
    );
    cache.add_vm(VmId(1), 100);
    cache.add_vm(VmId(2), 100);
    let mut backend = cache.clone();
    let hybrid = backend.create_pool(VmId(1), CachePolicy::hybrid(100));
    let ballast = backend.create_pool(VmId(2), CachePolicy::mem(100));
    let now = SimTime::from_secs(1);

    // Ballast residency keeps VM 2's weight relevant to the share
    // table, so swinging it really moves VM 1's entitlement.
    for b in 0..24u64 {
        backend.put(
            now,
            VmId(2),
            ballast,
            BlockAddr::new(FileId(9), b),
            PageVersion(1),
        );
    }

    let hook_fires = Arc::new(AtomicU64::new(0));
    {
        let hook_cache = cache.clone();
        let hook_fires = hook_fires.clone();
        cache.set_eviction_hook(Some(Arc::new(move || {
            // Alternate the ballast VM between a trivial and a dominant
            // weight: VM 1's memory entitlement jumps between ~60 and
            // ~3 pages, crossing the hybrid pool's resident count, so
            // the placement computed before this ran no longer matches
            // the one the locked validation recomputes.
            let n = hook_fires.fetch_add(1, Ordering::Relaxed);
            hook_cache.set_vm_weight(VmId(2), if n.is_multiple_of(2) { 2_000 } else { 5 });
        })));
    }

    let mut stored = 0u64;
    for burst in 0..12u64 {
        for b in 0..16u64 {
            let a = BlockAddr::new(FileId(1), (burst * 16 + b) % 48);
            if matches!(
                backend.put(now, VmId(1), hybrid, a, PageVersion(1)),
                PutOutcome::Stored { .. }
            ) {
                stored += 1;
            }
        }
        let findings = audit(&cache);
        assert!(
            findings.is_empty(),
            "burst {burst}: reservation left the ledger unreconciled: {findings:?}"
        );
    }

    assert!(
        hook_fires.load(Ordering::Relaxed) > 0,
        "the entitlement-flip hook never fired — the reservation path was not exercised"
    );
    assert!(stored > 0, "every hybrid put wedged under forced staleness");
    assert!(
        cache.reservation_retries() > 0,
        "no hint was ever re-tried (staleness detection is dead)"
    );
    assert!(
        cache.reservation_fallbacks() > 0,
        "no put exhausted its retries — the flip hook should defeat every re-validation"
    );
}
