//! Property tests for the concurrent serving plane's determinism
//! contract (DESIGN.md §12).
//!
//! 1. **Serial equivalence** — the sharded engine driven on a single
//!    thread must be observably *byte-identical* to the serial
//!    reference engine: same per-VM channel counters, same per-pool
//!    stats, same resident-entry digest, for every partition mode,
//!    shard count and seed. Sharding is a locking strategy, not a
//!    semantic change.
//! 2. **Interleaving stability** — under real OS-thread interleavings
//!    the cross-shard eviction path must keep the global-pressure
//!    ledger and every per-pool invariant intact: repeated runs of the
//!    same seed at several thread counts always finish with zero
//!    auditor findings and zero stale-read-oracle violations, and
//!    always issue the same total operation count.

use ddc_core::concurrent::{run_equivalence, run_stress, EngineKind, StressConfig};
use ddc_core::prelude::*;

fn config(seed: u64, mode: PartitionMode) -> StressConfig {
    let mut cfg = StressConfig::smoke(seed);
    cfg.cache = cfg.cache.with_mode(mode);
    cfg
}

#[test]
fn sharded_engine_is_byte_identical_to_serial_across_modes_and_seeds() {
    let modes = [
        PartitionMode::DoubleDecker,
        PartitionMode::Global,
        PartitionMode::Strict,
    ];
    for seed in [1, 42, 0xDD04] {
        for mode in modes {
            let mut cfg = config(seed, mode);
            let serial = run_equivalence(&cfg, EngineKind::Serial);
            assert_eq!(serial.stale_reads, 0, "serial oracle: {mode:?} seed {seed}");
            for shards in [1, 4, 16] {
                cfg.shards = shards;
                let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards });
                assert_eq!(sharded.stale_reads, 0, "{mode:?}/{shards} seed {seed}");
                assert_eq!(
                    serial.json, sharded.json,
                    "report diverged: {mode:?}, {shards} shards, seed {seed}"
                );
            }
        }
    }
}

#[test]
fn cross_shard_eviction_survives_repeated_interleavings() {
    // Tight capacity relative to the working set keeps the eviction
    // path hot, so every interleaving exercises lock-all cross-shard
    // eviction while other threads race the fast path.
    for seed in [3, 0xACE5] {
        let mut expected_ops = None;
        for threads in [2, 4, 8] {
            for round in 0..3 {
                let cfg = StressConfig::smoke(seed);
                let out = run_stress(&cfg, threads);
                assert_eq!(
                    out.stale_reads, 0,
                    "stale reads: seed {seed}, {threads} threads, round {round}"
                );
                assert!(
                    out.findings.is_empty(),
                    "auditor findings: seed {seed}, {threads} threads, round {round}: {:?}",
                    out.findings
                );
                let ops = expected_ops.get_or_insert(out.total_ops);
                assert_eq!(
                    *ops, out.total_ops,
                    "op count drifted across interleavings (seed {seed})"
                );
            }
        }
    }
}
