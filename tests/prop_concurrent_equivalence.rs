//! Property tests for the concurrent serving plane's determinism
//! contract (DESIGN.md §12).
//!
//! 1. **Serial equivalence** — the sharded engine driven on a single
//!    thread must be observably *byte-identical* to the serial
//!    reference engine: same per-VM channel counters, same per-pool
//!    stats, same resident-entry digest, for every partition mode,
//!    shard count and seed. Sharding is a locking strategy, not a
//!    semantic change.
//! 2. **Interleaving stability** — under real OS-thread interleavings
//!    the cross-shard eviction path must keep the global-pressure
//!    ledger and every per-pool invariant intact: repeated runs of the
//!    same seed at several thread counts always finish with zero
//!    auditor findings and zero stale-read-oracle violations, and
//!    always issue the same total operation count.
//! 3. **Two-phase staleness** — the eviction hook (which fires between
//!    the lock-free victim snapshot and the single-shard locked
//!    re-validation) is used to force every snapshot stale; the path
//!    must detect it, retry within its bound or fall back to lock-all,
//!    and never oversubscribe the ledger or wedge a put.
//! 4. **Lock-free read plane** (DESIGN.md §15) — the 95/5 read-heavy
//!    mix routes misses through the seqlock membership tables and hot
//!    replicas instead of the shard locks; that path must preserve the
//!    same byte-identity and interleaving-stability contracts, while
//!    demonstrably carrying load (the lock-free counters are non-zero).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ddc_core::cleancache::SecondChanceCache;
use ddc_core::concurrent::{
    audit, run_equivalence, run_stress, EngineKind, ShardedCache, StressConfig,
};
use ddc_core::prelude::*;

fn config(seed: u64, mode: PartitionMode) -> StressConfig {
    let mut cfg = StressConfig::smoke(seed);
    cfg.cache = cfg.cache.with_mode(mode);
    cfg
}

#[test]
fn sharded_engine_is_byte_identical_to_serial_across_modes_and_seeds() {
    let modes = [
        PartitionMode::DoubleDecker,
        PartitionMode::Global,
        PartitionMode::Strict,
    ];
    for seed in [1, 42, 0xDD04] {
        for mode in modes {
            let mut cfg = config(seed, mode);
            let serial = run_equivalence(&cfg, EngineKind::Serial);
            assert_eq!(serial.stale_reads, 0, "serial oracle: {mode:?} seed {seed}");
            for shards in [1, 4, 16] {
                cfg.shards = shards;
                let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards });
                assert_eq!(sharded.stale_reads, 0, "{mode:?}/{shards} seed {seed}");
                assert_eq!(
                    serial.json, sharded.json,
                    "report diverged: {mode:?}, {shards} shards, seed {seed}"
                );
            }
        }
    }
}

/// With journaling on, the contract grows: `flush`/`flush_many` return
/// real durability epochs, the per-VM `flush_epoch` watermark in the
/// report must be non-zero, and it must still match the serial engine
/// byte-for-byte — the sharded plane's per-shard segments with group
/// commit allocate the *same* dense record generations the serial WAL
/// does, so the epochs agree gen-for-gen, not just "both non-zero".
#[test]
fn journaled_planes_agree_on_flush_epoch_watermarks() {
    let modes = [
        PartitionMode::DoubleDecker,
        PartitionMode::Global,
        PartitionMode::Strict,
    ];
    for seed in [5, 0xDD06] {
        for mode in modes {
            let mut cfg = config(seed, mode);
            cfg.journal = true;
            let serial = run_equivalence(&cfg, EngineKind::Serial);
            assert_eq!(serial.stale_reads, 0, "serial oracle: {mode:?} seed {seed}");
            assert!(
                serial.json.contains("\"flush_epoch\""),
                "report must expose the per-VM flush-epoch watermark"
            );
            for shards in [1, 4, 16] {
                cfg.shards = shards;
                let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards });
                assert_eq!(sharded.stale_reads, 0, "{mode:?}/{shards} seed {seed}");
                assert_eq!(
                    serial.json, sharded.json,
                    "journaled report diverged: {mode:?}, {shards} shards, seed {seed}"
                );
                let root = ddc_json::Json::parse(&sharded.json).expect("report parses");
                for row in root
                    .get("vms_report")
                    .and_then(ddc_json::Json::as_array)
                    .expect("vm rows")
                {
                    let epoch = row
                        .get("flush_epoch")
                        .and_then(ddc_json::Json::as_u64)
                        .expect("epoch field");
                    assert!(
                        epoch > 0,
                        "{mode:?}/{shards} seed {seed}: journaled flush acked epoch 0"
                    );
                }
            }
        }
    }
}

/// Forces every two-phase snapshot stale: the eviction hook flushes
/// pages out of the phase-1 victim's pool between the phases, so the
/// locked re-validation sees different usage than the snapshot did.
/// The path must take the retry/fallback route (observable via the
/// diagnostic counters), keep serving every put, and leave the ledger
/// and mirrors exact (zero auditor findings after every burst).
#[test]
fn two_phase_eviction_converges_under_forced_snapshot_staleness() {
    let cache = ShardedCache::new(
        CacheConfig {
            mem_capacity_pages: 64,
            ssd_capacity_pages: 0,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        },
        8,
    );
    cache.add_vm(VmId(0), 100);
    cache.add_vm(VmId(1), 100);
    let mut backend = cache.clone();
    let heavy = backend.create_pool(VmId(0), CachePolicy::mem(100));
    let light = backend.create_pool(VmId(1), CachePolicy::mem(100));
    let now = SimTime::from_secs(1);

    // Blocks known resident in the heavy pool, shared with the hook.
    let resident: Arc<Mutex<Vec<BlockAddr>>> = Arc::new(Mutex::new(Vec::new()));
    let hook_flushes = Arc::new(AtomicU64::new(0));
    {
        let hook_cache = cache.clone();
        let resident = resident.clone();
        let hook_flushes = hook_flushes.clone();
        cache.set_eviction_hook(Some(Arc::new(move || {
            // Yank a batch of the victim's pages between the phases.
            // `flush` frees pages without allocating, so the hook can
            // never recurse into eviction.
            let batch: Vec<BlockAddr> = {
                let mut r = resident.lock().expect("resident lock");
                let at = r.len() - r.len().min(16);
                r.split_off(at)
            };
            let mut backend = hook_cache.clone();
            for addr in batch {
                hook_flushes.fetch_add(1, Ordering::Relaxed);
                backend.flush(VmId(0), heavy, addr);
            }
        })));
    }

    let mut r = SimRng::new(0x57A1E);
    for burst in 0..24u64 {
        // Refill the heavy pool past its entitlement so Algorithm 1
        // would pick it as the victim...
        for b in 0..40u64 {
            let addr = BlockAddr::new(FileId(1), burst * 40 + b);
            if matches!(
                backend.put(now, VmId(0), heavy, addr, PageVersion(1)),
                PutOutcome::Stored { .. }
            ) {
                resident.lock().expect("resident lock").push(addr);
            }
        }
        // ...then drive puts into the light pool until eviction fires;
        // each firing runs the hook, which invalidates the snapshot.
        for b in 0..r.range_u64(24, 48) {
            let addr = BlockAddr::new(FileId(2), burst * 64 + b);
            assert!(
                matches!(
                    backend.put(now, VmId(1), light, addr, PageVersion(1)),
                    PutOutcome::Stored { .. }
                ),
                "burst {burst}: put wedged under forced staleness"
            );
        }
        let findings = audit(&cache);
        assert!(
            findings.is_empty(),
            "burst {burst}: ledger/mirror invariants broke under staleness: {findings:?}"
        );
    }

    assert!(
        hook_flushes.load(Ordering::Relaxed) > 0,
        "the staleness hook never fired — the two-phase path was not exercised"
    );
    let detected = cache.two_phase_retries() + cache.two_phase_fallbacks();
    assert!(
        detected > 0,
        "every forced-stale snapshot re-validated clean (staleness detection is dead)"
    );
}

/// The read-heavy mix (the lock-free read plane's target workload) must
/// uphold the same byte-identity contract as the standard mix: routing
/// misses through the seqlock tables and hot replicas instead of the
/// shard locks is a locking strategy, not a semantic change. Checked
/// across every partition mode and shard count, journaled and not.
#[test]
fn read_heavy_mix_is_byte_identical_to_serial_across_modes() {
    let modes = [
        PartitionMode::DoubleDecker,
        PartitionMode::Global,
        PartitionMode::Strict,
    ];
    for journal in [false, true] {
        for mode in modes {
            let mut cfg = StressConfig::read_heavy(0x9EAD);
            cfg.ticks = 300;
            cfg.journal = journal;
            cfg.cache = cfg.cache.with_mode(mode);
            let serial = run_equivalence(&cfg, EngineKind::Serial);
            assert_eq!(serial.stale_reads, 0, "serial oracle: {mode:?}");
            for shards in [1, 4, 16] {
                cfg.shards = shards;
                let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards });
                assert_eq!(sharded.stale_reads, 0, "{mode:?}/{shards}");
                assert_eq!(
                    serial.json, sharded.json,
                    "read-heavy report diverged: {mode:?}, {shards} shards, journal {journal}"
                );
            }
        }
    }
}

/// Interleaving stability on the read plane's target mix: repeated
/// multi-threaded runs stay clean (no stale reads, no auditor findings,
/// stable op counts) while the lock-free path demonstrably carries load
/// and the hot replicas demonstrably short-circuit repeat misses.
#[test]
fn read_heavy_interleavings_stay_clean_and_serve_lock_free() {
    for seed in [9, 0x9EAD] {
        let mut expected_ops = None;
        for threads in [2, 4, 8] {
            let cfg = StressConfig::hot_blocks(seed);
            let out = run_stress(&cfg, threads);
            assert_eq!(out.stale_reads, 0, "stale reads: seed {seed}, {threads}t");
            assert!(
                out.findings.is_empty(),
                "auditor findings: seed {seed}, {threads} threads: {:?}",
                out.findings
            );
            let ops = expected_ops.get_or_insert(out.total_ops);
            assert_eq!(
                *ops, out.total_ops,
                "op count drifted across interleavings (seed {seed})"
            );
            assert!(
                out.lockfree_misses > 0,
                "read plane idle on its target mix (seed {seed}, {threads} threads)"
            );
            assert!(
                out.replica_hits <= out.lockfree_misses,
                "replica hits are a subset of lock-free lookups"
            );
        }
    }
}

#[test]
fn cross_shard_eviction_survives_repeated_interleavings() {
    // Tight capacity relative to the working set keeps the eviction
    // path hot, so every interleaving exercises lock-all cross-shard
    // eviction while other threads race the fast path.
    for seed in [3, 0xACE5] {
        let mut expected_ops = None;
        for threads in [2, 4, 8] {
            for round in 0..3 {
                let cfg = StressConfig::smoke(seed);
                let out = run_stress(&cfg, threads);
                assert_eq!(
                    out.stale_reads, 0,
                    "stale reads: seed {seed}, {threads} threads, round {round}"
                );
                assert!(
                    out.findings.is_empty(),
                    "auditor findings: seed {seed}, {threads} threads, round {round}: {:?}",
                    out.findings
                );
                let ops = expected_ops.get_or_insert(out.total_ops);
                assert_eq!(
                    *ops, out.total_ops,
                    "op count drifted across interleavings (seed {seed})"
                );
            }
        }
    }
}
