//! Degraded-mode integration tests: the stack must stay correct (never
//! stale, never leaking, never stuck) when the second-chance path is
//! disabled, rejected, or yanked away mid-run.

use ddc_core::prelude::*;

fn a(vm: VmId, inode: u64, block: u64) -> BlockAddr {
    BlockAddr::new(vm_file(vm, inode), block)
}

/// Disabling cleancache mid-run degrades to disk gracefully: no stale
/// reads, no stuck threads — just slower IO.
#[test]
fn cleancache_disabled_mid_run() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(4, 100);
    let cg = host.create_container(vm, "c", 8, CachePolicy::mem(100));
    let mut now = SimTime::ZERO;
    for b in 0..32 {
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }
    assert!(host.container_cache_stats(vm, cg).unwrap().mem_pages > 0);
    // Pull the plug on the data path (as if the DD patch were unloaded).
    host.guest_mut(vm).set_cleancache_enabled(false);
    for b in 0..32 {
        let r = host.read(now, vm, cg, a(vm, 1, b));
        now = r.finish;
        assert_ne!(
            r.level,
            HitLevel::Cleancache,
            "disabled channel must never hit"
        );
    }
    // Reads still complete and are coherent; residual cache objects are
    // simply stranded until re-enabled.
    host.guest_mut(vm).set_cleancache_enabled(true);
    let r = host.read(now, vm, cg, a(vm, 1, 0));
    assert!(r.finish > now);
}

/// A cache shrunk to zero capacity rejects all puts; the guest keeps
/// running on page cache + disk only.
#[test]
fn cache_capacity_zeroed_mid_run() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(4, 100);
    let cg = host.create_container(vm, "c", 8, CachePolicy::mem(100));
    let mut now = SimTime::ZERO;
    for b in 0..32 {
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }
    host.set_mem_cache_capacity(now, 0);
    assert_eq!(host.cache_totals().mem_used_pages, 0, "shrink evicted all");
    let puts_before = host.guest(vm).channel().counters().put_stores;
    for b in 32..64 {
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }
    let puts_after = host.guest(vm).channel().counters().put_stores;
    assert_eq!(puts_before, puts_after, "no put can land in a 0-page cache");
    // The workload still progresses.
    let r = host.read(now, vm, cg, a(vm, 1, 0));
    assert_eq!(r.level, HitLevel::Disk);
}

/// A container whose policy is disabled mid-run loses its cache objects'
/// usefulness but never its correctness; re-enabling resumes caching.
#[test]
fn policy_disabled_and_reenabled() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(4, 100);
    let cg = host.create_container(vm, "c", 8, CachePolicy::mem(100));
    let mut now = SimTime::ZERO;
    for b in 0..24 {
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }
    host.set_container_policy(vm, cg, CachePolicy::disabled());
    // New puts are rejected...
    let stores_before = host.guest(vm).channel().counters().put_stores;
    for b in 24..48 {
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }
    assert_eq!(
        host.guest(vm).channel().counters().put_stores,
        stores_before
    );
    // ...then caching resumes after re-enabling.
    host.set_container_policy(vm, cg, CachePolicy::mem(100));
    for b in 48..80 {
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }
    assert!(host.guest(vm).channel().counters().put_stores > stores_before);
    let _ = now;
}

/// Destroying a sibling container mid-run never disturbs a survivor's
/// data or statistics.
#[test]
fn sibling_destruction_is_isolated() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(8, 100);
    let keep = host.create_container(vm, "keep", 8, CachePolicy::mem(50));
    let doomed = host.create_container(vm, "doomed", 8, CachePolicy::mem(50));
    let mut now = SimTime::ZERO;
    for b in 0..24 {
        now = host.read(now, vm, keep, a(vm, 1, b)).finish;
        now = host.read(now, vm, doomed, a(vm, 2, b)).finish;
    }
    let keep_stats = host.container_cache_stats(vm, keep).unwrap();
    host.destroy_container(vm, doomed);
    let keep_after = host.container_cache_stats(vm, keep).unwrap();
    assert_eq!(keep_stats.mem_pages, keep_after.mem_pages);
    assert_eq!(keep_stats.hits, keep_after.hits);
    // The survivor's cached data still serves.
    let r = host.read(now, vm, keep, a(vm, 1, 0));
    assert_ne!(r.level, HitLevel::Disk);
}

/// An SSD-policy container on a host without an SSD store keeps working
/// (all puts rejected — cleancache is best-effort by contract).
#[test]
fn ssd_policy_without_ssd_store() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
    let vm = host.boot_vm(4, 100);
    let cg = host.create_container(vm, "c", 8, CachePolicy::ssd(100));
    let mut now = SimTime::ZERO;
    for b in 0..32 {
        now = host.read(now, vm, cg, a(vm, 1, b)).finish;
    }
    let s = host.container_cache_stats(vm, cg).unwrap();
    assert_eq!(s.mem_pages + s.ssd_pages, 0);
    let r = host.read(now, vm, cg, a(vm, 1, 31));
    assert!(r.finish > now, "guest unaffected beyond the lost cache");
}

/// Swap storms do not deadlock the guest: heavy anonymous overcommit
/// plus file IO completes and the accounting stays exact.
#[test]
fn swap_storm_completes() {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(256)));
    let vm = host.boot_vm(2, 100); // 32 blocks of guest RAM
    let cg = host.create_container(vm, "c", 64, CachePolicy::mem(100));
    host.anon_reserve(vm, cg, 96); // 3x RAM
    let mut now = SimTime::ZERO;
    for round in 0..4u64 {
        for p in 0..96 {
            now = host.anon_touch(now, vm, cg, (p * 7 + round) % 96);
        }
        now = host.read(now, vm, cg, a(vm, 1, round)).finish;
    }
    let m = host.container_mem_stats(vm, cg);
    assert!(m.swap_in_total > 0 && m.swap_out_total > 0);
    assert_eq!(
        m.anon_resident_pages + m.swapped_pages,
        m.anon_allocated_pages
    );
    assert!(host.guest(vm).used_pages() <= host.guest(vm).config().total_mem_pages);
}
