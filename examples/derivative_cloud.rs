//! The paper's running architecture example (its Fig. 4): two VMs with
//! weights 33/67; VM1 hosts two containers (`<SSD, 100>` and
//! `<Mem, 100>`), VM2 hosts three (`<Mem, 25>`, `<Mem, 75>`,
//! `<SSD, 100>`). The memory store ends up shared by three containers and
//! the SSD store by two, each partitioned at two levels.
//!
//! Run with:
//! ```sh
//! cargo run --release --example derivative_cloud
//! ```

use ddc_core::prelude::*;

fn main() {
    let mem = CacheConfig::pages_from_mb(96);
    let ssd = CacheConfig::pages_from_gb(4);
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(mem, ssd)));

    // Hypervisor-level policy controller: VM weights 33 and 67.
    let vm1 = host.boot_vm(48, 33);
    let vm2 = host.boot_vm(48, 67);

    // VM-level policy controllers: container <T, W> tuples.
    let limit = CacheConfig::pages_from_mb(16);
    let v1c1 = host.create_container(vm1, "vm1/c1", limit, CachePolicy::ssd(100));
    let v1c2 = host.create_container(vm1, "vm1/c2", limit, CachePolicy::mem(100));
    let v2c1 = host.create_container(vm2, "vm2/c1", limit, CachePolicy::mem(25));
    let v2c2 = host.create_container(vm2, "vm2/c2", limit, CachePolicy::mem(75));
    let v2c3 = host.create_container(vm2, "vm2/c3", limit, CachePolicy::ssd(100));

    let containers = [
        (vm1, v1c1, "vm1/c1 <SSD,100>"),
        (vm1, v1c2, "vm1/c2 <Mem,100>"),
        (vm2, v2c1, "vm2/c1 <Mem,25>"),
        (vm2, v2c2, "vm2/c2 <Mem,75>"),
        (vm2, v2c3, "vm2/c3 <SSD,100>"),
    ];

    // Every container runs the same webserver profile, so occupancy
    // differences are pure policy.
    let config = WebConfig {
        files: 1200,
        mean_file_blocks: 2,
        ..WebConfig::default()
    };
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    for (i, (vm, cg, label)) in containers.iter().enumerate() {
        exp.add_thread(Box::new(Webserver::new(
            format!("{label}/t0"),
            *vm,
            *cg,
            config,
            1000 + i as u64,
        )));
    }

    println!("running 90 virtual seconds across both VMs...");
    exp.run_until(SimTime::from_secs(90));

    let mut table = TextTable::new(vec![
        "container",
        "mem store (MB)",
        "ssd store (MB)",
        "entitlement (MB)",
        "hit rate (%)",
    ]);
    let to_mb = |pages: u64| pages as f64 * PAGE_SIZE as f64 / 1e6;
    for (vm, cg, label) in containers {
        let s = exp.host().container_cache_stats(vm, cg).expect("exists");
        table.row(vec![
            label.to_owned(),
            format!("{:.1}", to_mb(s.mem_pages)),
            format!("{:.1}", to_mb(s.ssd_pages)),
            format!("{:.1}", to_mb(s.entitlement_pages)),
            format!("{:.1}", s.hit_rate()),
        ]);
    }
    println!("{}", table.render());

    let u1 = exp.host().vm_cache_usage(vm1);
    let u2 = exp.host().vm_cache_usage(vm2);
    println!(
        "memory store by VM:  vm1 {:.1} MB | vm2 {:.1} MB (weights 33/67)",
        to_mb(u1.mem_pages),
        to_mb(u2.mem_pages)
    );
    println!(
        "ssd store by VM:     vm1 {:.1} MB | vm2 {:.1} MB",
        to_mb(u1.ssd_pages),
        to_mb(u2.ssd_pages)
    );
    let t = exp.host().cache_totals();
    println!(
        "totals: mem {:.1}/{:.1} MB, ssd {:.1} MB used, {} evictions",
        to_mb(t.mem_used_pages),
        to_mb(t.mem_capacity_pages),
        to_mb(t.ssd_used_pages),
        t.evictions
    );
}
