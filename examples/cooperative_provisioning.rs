//! Cooperative two-level provisioning (the paper's §2.3.1 motivation):
//! split a fixed memory budget between in-VM container memory and the
//! hypervisor cache, and watch how differently a file-backed store
//! (MongoDB-like) and an anonymous-memory store (Redis-like) respond.
//!
//! The file-backed store barely notices the split — its pages just move
//! to the second-chance cache. The anonymous store collapses once its
//! working set no longer fits in the cgroup limit, because anonymous
//! memory cannot be offloaded to a disk cache.
//!
//! Run with:
//! ```sh
//! cargo run --release --example cooperative_provisioning
//! ```

use ddc_core::prelude::*;

/// Total memory budget to split, in MiB.
const BUDGET_MB: u64 = 64;
/// Dataset size per store, in blocks (~2/3 of the budget).
const DATASET_BLOCKS: u64 = 40 * 1024 * 1024 / PAGE_SIZE;

fn run_split(store: StoreModel, container_mb: u64) -> (f64, u64, u64) {
    let cache_mb = BUDGET_MB - container_mb;
    let cache_pages = CacheConfig::pages_from_mb(cache_mb.max(1));
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(cache_pages)));
    // Guest RAM sized to the container share (plus a small reserve).
    let vm = host.boot_vm(container_mb + 8, 100);
    let cg = host.create_container(
        vm,
        "db",
        CacheConfig::pages_from_mb(container_mb),
        CachePolicy::mem(100),
    );
    let config = YcsbConfig::read_mostly(store, DATASET_BLOCKS);
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    exp.add_thread(Box::new(YcsbClient::new("db/t0", vm, cg, config, 7)));
    let report = exp.run_until(SimTime::from_secs(30));
    let mem = exp.host().container_mem_stats(vm, cg);
    let hc = exp.host().container_cache_stats(vm, cg).unwrap();
    (report.throughput_of("db"), mem.swap_out_total, hc.mem_pages)
}

fn main() {
    println!("splitting a {BUDGET_MB} MiB budget between container memory and hypervisor cache\n");
    let mut table = TextTable::new(vec![
        "split (VM:cache MiB)",
        "mongodb ops/s",
        "mongo hcache MB",
        "redis ops/s",
        "redis swap-outs",
    ]);
    for container_mb in [56, 48, 32, 16, 8] {
        let (mongo_tput, _, mongo_cache) = run_split(StoreModel::MongoLike, container_mb);
        let (redis_tput, redis_swap, _) = run_split(StoreModel::RedisLike, container_mb);
        table.row(vec![
            format!("{container_mb}:{}", BUDGET_MB - container_mb),
            format!("{mongo_tput:.0}"),
            format!("{:.1}", mongo_cache as f64 * PAGE_SIZE as f64 / 1e6),
            format!("{redis_tput:.0}"),
            redis_swap.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "note how MongoDB throughput stays flat while its pages migrate to the\n\
         hypervisor cache, whereas Redis throughput collapses as soon as its\n\
         anonymous working set exceeds the container share — the hypervisor\n\
         cache cannot absorb anonymous memory (paper Table 1)."
    );
}
