//! Quickstart: a single VM, one webserver container, a DoubleDecker
//! memory cache — watch the second-chance cache absorb the container's
//! overflow working set.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ddc_core::prelude::*;

fn main() {
    // A host with a 128 MiB memory-backed DoubleDecker cache.
    let cache_pages = CacheConfig::pages_from_mb(128);
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(cache_pages)));

    // One VM with 64 MiB of RAM, full cache weight.
    let vm = host.boot_vm(64, 100);

    // One webserver container limited (via its cgroup) to 32 MiB, with a
    // <Mem, 100> DoubleDecker policy.
    let cg_limit = CacheConfig::pages_from_mb(32);
    let web_cg = host.create_container(vm, "web", cg_limit, CachePolicy::mem(100));

    // A webserver whose fileset (~250 MiB) exceeds the cgroup limit: the
    // overflow must live in the hypervisor cache.
    let config = WebConfig {
        files: 2000,
        mean_file_blocks: 2,
        ..WebConfig::default()
    };

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    for t in 0..2 {
        exp.add_thread(Box::new(Webserver::new(
            format!("web/t{t}"),
            vm,
            web_cg,
            config,
            42 + t as u64,
        )));
    }
    exp.add_probe("hypervisor-cache-used-mb", move |h| {
        h.container_cache_stats(vm, web_cg)
            .map(|s| s.mem_pages as f64 * PAGE_SIZE as f64 / 1e6)
            .unwrap_or(0.0)
    });

    println!("running 60 virtual seconds of webserver traffic...");
    let report = exp.run_until(SimTime::from_secs(60));

    println!("\n== per-thread results ==");
    let mut table = TextTable::new(vec!["thread", "ops", "ops/s", "MB/s", "mean lat (ms)"]);
    for t in &report.threads {
        table.row(vec![
            t.label.clone(),
            t.ops.to_string(),
            format!("{:.1}", t.ops_per_sec),
            format!("{:.1}", t.mb_per_sec),
            format!("{:.3}", t.mean_latency_ms),
        ]);
    }
    println!("{}", table.render());

    let stats = exp
        .host()
        .container_cache_stats(vm, web_cg)
        .expect("container exists");
    println!("== hypervisor cache (container pool) ==");
    println!(
        "resident: {:.1} MB of {:.1} MB entitlement",
        stats.mem_pages as f64 * PAGE_SIZE as f64 / 1e6,
        stats.entitlement_pages as f64 * PAGE_SIZE as f64 / 1e6,
    );
    println!(
        "gets: {}  hits: {} ({:.1}% hit rate)  puts: {}  evictions: {}",
        stats.gets,
        stats.hits,
        stats.hit_rate(),
        stats.puts,
        stats.evictions
    );

    if let Some(series) = exp.series("hypervisor-cache-used-mb") {
        println!("\n== cache occupancy over time ==");
        print!(
            "{}",
            ddc_core::metrics::render_ascii_chart(&[series], 60, 8)
        );
    }
}
