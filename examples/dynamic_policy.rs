//! Dynamic cache management (a miniature of the paper's Fig. 12): two
//! containers share the memory store 60/40; a videoserver container boots
//! mid-run and the weights are re-split 50/30/20; later the videoserver
//! is moved to the SSD store and the memory split returns to 60/40.
//!
//! Run with:
//! ```sh
//! cargo run --release --example dynamic_policy
//! ```

use ddc_core::prelude::*;

fn main() {
    let mem = CacheConfig::pages_from_mb(64);
    let ssd = CacheConfig::pages_from_gb(4);
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(mem, ssd)));
    let vm = host.boot_vm(64, 100);
    let limit = CacheConfig::pages_from_mb(24);

    let c1 = host.create_container(vm, "web", limit, CachePolicy::mem(60));
    let c2 = host.create_container(vm, "proxy", limit, CachePolicy::mem(40));

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    let web_cfg = WebConfig {
        files: 1500,
        ..WebConfig::default()
    };
    let proxy_cfg = ProxyConfig {
        files: 1200,
        ..ProxyConfig::default()
    };
    exp.add_thread(Box::new(Webserver::new("web/t0", vm, c1, web_cfg, 1)));
    exp.add_thread(Box::new(Proxycache::new("proxy/t0", vm, c2, proxy_cfg, 2)));

    let to_mb = |pages: u64| pages as f64 * PAGE_SIZE as f64 / 1e6;
    exp.add_probe("web mem-store MB", move |h| {
        to_mb(h.container_cache_stats(vm, c1).map_or(0, |s| s.mem_pages))
    });
    exp.add_probe("proxy mem-store MB", move |h| {
        to_mb(h.container_cache_stats(vm, c2).map_or(0, |s| s.mem_pages))
    });

    // Phase 2 at t=60 s: boot the videoserver, re-weight to 50/30/20.
    exp.schedule(SimTime::from_secs(60), move |host, pool, at| {
        println!("[{at}] booting videoserver container; weights -> 50/30/20");
        let c3 = host.create_container(vm, "video", limit, CachePolicy::mem(20));
        host.set_container_policy(vm, c1, CachePolicy::mem(50));
        host.set_container_policy(vm, c2, CachePolicy::mem(30));
        let cfg = VideoConfig {
            active_videos: 16,
            mean_video_blocks: 64,
            ..VideoConfig::default()
        };
        pool.spawn_at(at, Box::new(VideoServer::new("video/t0", vm, c3, cfg, 3)));
    });

    // Phase 3 at t=120 s: move the videoserver to the SSD store; memory
    // split back to 60/40. (The videoserver container is cgroup id 3 —
    // the third created in this VM.)
    exp.schedule(SimTime::from_secs(120), move |host, _pool, at| {
        println!("[{at}] videoserver -> <SSD, 100>; memory weights -> 60/40");
        let c3 = *host.guest(vm).cgroup_ids().last().expect("video exists");
        host.set_container_policy(vm, c3, CachePolicy::ssd(100));
        host.set_container_policy(vm, c1, CachePolicy::mem(60));
        host.set_container_policy(vm, c2, CachePolicy::mem(40));
    });

    // Track the videoserver's memory-store footprint once it exists.
    exp.add_probe("video mem-store MB", move |h| {
        h.guest(vm)
            .cgroup_ids()
            .get(2)
            .and_then(|cg| h.container_cache_stats(vm, *cg))
            .map_or(0.0, |s| to_mb(s.mem_pages))
    });

    println!("running 180 virtual seconds with two policy changes...");
    exp.run_until(SimTime::from_secs(180));

    for name in [
        "web mem-store MB",
        "proxy mem-store MB",
        "video mem-store MB",
    ] {
        if let Some(series) = exp.series(name) {
            print!(
                "{}",
                ddc_core::metrics::render_ascii_chart(&[series], 72, 6)
            );
        }
    }

    // Phase means demonstrate the redistribution.
    for name in ["web mem-store MB", "proxy mem-store MB"] {
        let s = exp.series(name).expect("probed");
        let p1 = s
            .mean_in(SimTime::from_secs(30), SimTime::from_secs(60))
            .unwrap_or(0.0);
        let p2 = s
            .mean_in(SimTime::from_secs(90), SimTime::from_secs(120))
            .unwrap_or(0.0);
        let p3 = s
            .mean_in(SimTime::from_secs(150), SimTime::from_secs(180))
            .unwrap_or(0.0);
        println!("{name}: phase means {p1:.1} -> {p2:.1} -> {p3:.1} MB");
    }
}
