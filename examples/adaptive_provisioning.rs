//! Adaptive provisioning: an MRC-driven controller (the policy layer the
//! paper sketches in §5.2.1) re-weights the DoubleDecker cache between
//! an OLTP database and a fileserver as their demands differ.
//!
//! Run with:
//! ```sh
//! cargo run --release --example adaptive_provisioning
//! ```

use ddc_core::adaptive::{self, AdaptiveConfig};
use ddc_core::prelude::*;

fn build(enable_adaptive: bool) -> (Experiment, VmId, CgroupId, CgroupId) {
    let cache_pages = CacheConfig::pages_from_mb(96);
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(cache_pages)));
    let vm = host.boot_vm(128, 100);
    let limit = CacheConfig::pages_from_mb(32);
    // A hot OLTP database with a working set well beyond its cgroup...
    let oltp_cg = host.create_container(vm, "oltp", limit, CachePolicy::mem(50));
    // ...and a fileserver share with lower request rates.
    let fs_cg = host.create_container(vm, "fileserver", limit, CachePolicy::mem(50));
    if enable_adaptive {
        adaptive::enable_estimation(&mut host, vm, 8);
    }

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    let oltp_cfg = OltpConfig {
        data_blocks: 2600,
        zipf_theta: 0.6,
        think_time: SimDuration::from_micros(100),
        ..OltpConfig::default()
    };
    for t in 0..2 {
        exp.add_thread(Box::new(Oltp::new(
            format!("oltp/t{t}"),
            vm,
            oltp_cg,
            oltp_cfg,
            10 + t as u64,
        )));
    }
    let fs_cfg = FileServerConfig {
        files: 1200,
        mean_file_blocks: 2,
        think_time: SimDuration::from_millis(25),
    };
    exp.add_thread(Box::new(FileServer::new(
        "fileserver/t0",
        vm,
        fs_cg,
        fs_cfg,
        20,
    )));
    if enable_adaptive {
        adaptive::schedule(
            &mut exp,
            AdaptiveConfig::new(vm),
            SimDuration::from_secs(15),
            SimTime::from_secs(240),
        );
    }
    exp.mark_steady_state_at(SimTime::from_secs(120));
    (exp, vm, oltp_cg, fs_cg)
}

fn main() {
    println!("running 240 virtual seconds, static 50/50 weights vs adaptive...");
    let mut rows = Vec::new();
    for adaptive_on in [false, true] {
        let (mut exp, vm, oltp_cg, fs_cg) = build(adaptive_on);
        let report = exp.run_until(SimTime::from_secs(240));
        let w_oltp = exp.host().guest(vm).cgroup(oltp_cg).policy().weight;
        let w_fs = exp.host().guest(vm).cgroup(fs_cg).policy().weight;
        rows.push((
            if adaptive_on {
                "adaptive"
            } else {
                "static 50/50"
            },
            report.throughput_of("oltp"),
            report.throughput_of("fileserver"),
            format!("{w_oltp}/{w_fs}"),
        ));
    }

    let mut table = TextTable::new(vec![
        "policy",
        "oltp (txn/s)",
        "fileserver (ops/s)",
        "final weights",
    ]);
    for (name, oltp, fs, weights) in &rows {
        table.row(vec![
            name.to_string(),
            format!("{oltp:.0}"),
            format!("{fs:.1}"),
            weights.clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the controller reads each container's miss-ratio curve (SHARDS-style\n\
         sampling inside the guest) and shifts <T, W> weight toward the container\n\
         with the larger marginal benefit — the policy loop the paper points to\n\
         on top of the DoubleDecker mechanism."
    );
}
