#!/bin/sh
# Repository CI gate: formatting, lints, then the tier-1 build + tests.
# Run from the workspace root; any failure aborts the script.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "CI green."
