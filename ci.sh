#!/bin/sh
# Repository CI gate: formatting, lints, then the tier-1 build + tests.
# Run from the workspace root; any failure aborts the script.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> perf smoke (1.3x regression gate against BENCH_cache_ops.json)"
if [ -f BENCH_cache_ops.json ]; then
    cargo run --release -q -p ddc-bench --bin repro -- perf --smoke --check BENCH_cache_ops.json
else
    echo "no baseline found; recording one (commit BENCH_cache_ops.json)"
    cargo run --release -q -p ddc-bench --bin repro -- perf --smoke --out BENCH_cache_ops.json
fi

echo "==> chaos smoke (seeded crash/recovery sweep)"
cargo run --release -q -p ddc-bench --bin repro -- chaos --smoke
echo "==> chaos smoke again with 8 experiment workers (threaded kill/recover sweep)"
DDC_THREADS=8 cargo run --release -q -p ddc-bench --bin repro -- chaos --smoke
cargo test -q -p ddc-core --test prop_sharded_recovery

echo "==> stress smoke (serial-vs-sharded equivalence + threaded stress)"
cargo run --release -q -p ddc-bench --bin repro -- stress --smoke
echo "==> stress smoke again with 8 experiment workers (cross-cell contention)"
DDC_THREADS=8 cargo run --release -q -p ddc-bench --bin repro -- stress --smoke
cargo test -q -p ddc-core --test prop_concurrent_equivalence

echo "CI green."
