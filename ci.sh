#!/bin/sh
# Repository CI gate: formatting, lints, then the tier-1 build + tests.
# Run from the workspace root; any failure aborts the script.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> perf smoke (1.3x regression gate against BENCH_cache_ops.json)"
if [ -f BENCH_cache_ops.json ]; then
    cargo run --release -q -p ddc-bench --bin repro -- perf --smoke --check BENCH_cache_ops.json
else
    echo "no baseline found; recording one (commit BENCH_cache_ops.json)"
    cargo run --release -q -p ddc-bench --bin repro -- perf --smoke --out BENCH_cache_ops.json
fi

echo "==> chaos smoke (seeded crash/recovery sweep)"
cargo run --release -q -p ddc-bench --bin repro -- chaos --smoke
echo "==> chaos smoke again with 8 experiment workers (kill/recover sweep incl. remote partition/hedge/breaker axes)"
DDC_THREADS=8 cargo run --release -q -p ddc-bench --bin repro -- chaos --smoke
cargo test -q -p ddc-core --test prop_sharded_recovery

echo "==> remote-tier smoke (fault-axis matrix, degradation ladder, cold-boot storm)"
DDC_THREADS=8 cargo run --release -q -p ddc-bench --bin repro -- remote --smoke
cargo test -q -p ddc-core --test prop_remote_determinism

echo "==> stress smoke (serial-vs-sharded equivalence + threaded stress)"
cargo run --release -q -p ddc-bench --bin repro -- stress --smoke
echo "==> stress smoke again with 8 experiment workers (cross-cell contention)"
DDC_THREADS=8 cargo run --release -q -p ddc-bench --bin repro -- stress --smoke
echo "==> stress smoke, 95/5 read-heavy mix through the lock-free read plane"
DDC_THREADS=8 cargo run --release -q -p ddc-bench --bin repro -- stress --smoke --read-heavy
echo "==> stress smoke, put-dominant write-heavy mix through the batched write plane"
DDC_THREADS=8 cargo run --release -q -p ddc-bench --bin repro -- stress --smoke --write-heavy
cargo test -q -p ddc-core --test prop_concurrent_equivalence
cargo test -q -p ddc-core --test prop_batched_writes

echo "==> wear smoke (ghost admission + TTL demotion; write-amp gate against BENCH_wear.json)"
if [ -f BENCH_wear.json ]; then
    cargo run --release -q -p ddc-bench --bin repro -- wear --smoke --check BENCH_wear.json
else
    echo "no wear baseline found; recording one (commit BENCH_wear.json)"
    cargo run --release -q -p ddc-bench --bin repro -- wear --smoke --out BENCH_wear.json
fi
echo "==> wear smoke again with 8 experiment workers"
DDC_THREADS=8 cargo run --release -q -p ddc-bench --bin repro -- wear --smoke --check BENCH_wear.json
cargo test -q -p ddc-core --test prop_wear_admission

# Optional race-detector smoke: opt in with DDC_TSAN=1. Needs a nightly
# toolchain (-Zsanitizer); tier-1 above never depends on it, so CI stays
# green on stable-only machines. Runs the seqlock/replica/tournament race
# tests of ddc-concurrent under ThreadSanitizer.
if [ "${DDC_TSAN:-0}" = "1" ]; then
    if rustup run nightly rustc --version >/dev/null 2>&1; then
        echo "==> TSan smoke (nightly, ddc-concurrent race tests)"
        RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
            rustup run nightly cargo test -q -p ddc-concurrent \
            -Z build-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
            --target-dir target/tsan \
            -- seqlock racing read_heavy 2>/dev/null \
            || echo "TSan smoke unavailable (missing rust-src or build-std); skipping"
    else
        echo "DDC_TSAN=1 set but no nightly toolchain; skipping TSan smoke"
    fi
fi

echo "CI green."
